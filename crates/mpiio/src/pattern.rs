//! Application access patterns.
//!
//! The paper's IOR-derived benchmark controls each application's pattern:
//! *contiguous* (each process writes one large block) or *strided* (each
//! process writes `block_count` blocks of `block_size` bytes interleaved
//! with the other processes' blocks). A strided collective write triggers
//! ROMIO's collective-buffering (two-phase I/O) optimization, which is what
//! Fig. 8 decomposes into communication and write phases.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Per-process file access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Each process writes a single contiguous block of `bytes_per_proc`.
    Contiguous {
        /// Bytes written by each process.
        bytes_per_proc: f64,
    },
    /// Each process writes `block_count` blocks of `block_size` bytes at a
    /// stride, interleaved with other processes (e.g. "16 MB per process as
    /// 8 strides of 2 MB" in Fig. 6).
    Strided {
        /// Size of one block in bytes.
        block_size: f64,
        /// Number of blocks written by each process.
        block_count: u32,
    },
}

impl AccessPattern {
    /// Convenience constructor for a contiguous pattern.
    pub fn contiguous(bytes_per_proc: f64) -> Self {
        AccessPattern::Contiguous { bytes_per_proc }
    }

    /// Convenience constructor for a strided pattern.
    pub fn strided(block_size: f64, block_count: u32) -> Self {
        AccessPattern::Strided {
            block_size,
            block_count,
        }
    }

    /// Bytes written by one process in one file.
    pub fn bytes_per_proc(&self) -> f64 {
        match *self {
            AccessPattern::Contiguous { bytes_per_proc } => bytes_per_proc,
            AccessPattern::Strided {
                block_size,
                block_count,
            } => block_size * block_count as f64,
        }
    }

    /// Total bytes written by `procs` processes in one file.
    pub fn total_bytes(&self, procs: u32) -> f64 {
        self.bytes_per_proc() * procs as f64
    }

    /// Whether this pattern is non-contiguous in the file and therefore
    /// triggers the collective-buffering (two-phase I/O) optimization with
    /// a data-shuffle communication step per round.
    pub fn needs_aggregation(&self) -> bool {
        matches!(self, AccessPattern::Strided { .. })
    }

    /// Validates the pattern parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            AccessPattern::Contiguous { bytes_per_proc } => {
                if bytes_per_proc < 0.0 {
                    return Err(ConfigError::NegativeBytesPerProc);
                }
            }
            AccessPattern::Strided {
                block_size,
                block_count,
            } => {
                if block_size < 0.0 {
                    return Err(ConfigError::NegativeBlockSize);
                }
                if block_count == 0 {
                    return Err(ConfigError::ZeroBlockCount);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    #[test]
    fn contiguous_sizes() {
        let p = AccessPattern::contiguous(16.0 * MB);
        assert_eq!(p.bytes_per_proc(), 16.0 * MB);
        assert_eq!(p.total_bytes(336), 336.0 * 16.0 * MB);
        assert!(!p.needs_aggregation());
        p.validate().unwrap();
    }

    #[test]
    fn strided_sizes() {
        // Fig. 6: 16 MB per process as 8 strides of 2 MB.
        let p = AccessPattern::strided(2.0 * MB, 8);
        assert_eq!(p.bytes_per_proc(), 16.0 * MB);
        assert_eq!(p.total_bytes(24), 24.0 * 16.0 * MB);
        assert!(p.needs_aggregation());
        p.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(AccessPattern::contiguous(-1.0).validate().is_err());
        assert!(AccessPattern::strided(-1.0, 4).validate().is_err());
        assert!(AccessPattern::strided(MB, 0).validate().is_err());
        assert!(AccessPattern::contiguous(0.0).validate().is_ok());
    }
}
