//! Collective-buffering (two-phase I/O) model.
//!
//! ROMIO's collective write of a strided pattern proceeds in *rounds*: in
//! each round the processes first shuffle their data to a subset of
//! aggregator processes over the compute interconnect (the *communication
//! phase*), then the aggregators issue one large contiguous write per round
//! to the file system (the *write phase*). Only the write phase contends
//! for the parallel file system; the communication phase is almost immune
//! to cross-application I/O interference — this asymmetry is exactly what
//! Fig. 8(b) of the paper shows.

use crate::error::ConfigError;
use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};

/// Configuration of the collective-buffering algorithm for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveConfig {
    /// Number of aggregator processes (ROMIO `cb_nodes`). 0 means "one
    /// aggregator per 64 processes, at least 1".
    pub aggregators: u32,
    /// Collective buffer size per aggregator in bytes (ROMIO
    /// `cb_buffer_size`, typically 4–16 MB).
    pub buffer_bytes: f64,
    /// Aggregate bandwidth of the data-shuffle phase over the compute
    /// interconnect, in bytes/s (per application; not contended by the
    /// file system traffic).
    pub shuffle_bw: f64,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            aggregators: 0,
            buffer_bytes: 16.0e6,
            shuffle_bw: 8.0e9,
        }
    }
}

impl CollectiveConfig {
    /// Effective number of aggregators for an application with `procs`
    /// processes.
    pub fn effective_aggregators(&self, procs: u32) -> u32 {
        if self.aggregators > 0 {
            self.aggregators.min(procs.max(1))
        } else {
            (procs / 64).max(1)
        }
    }

    /// Bytes written to the file system in one collective-buffering round.
    pub fn round_bytes(&self, procs: u32) -> f64 {
        self.effective_aggregators(procs) as f64 * self.buffer_bytes
    }

    /// Number of rounds needed to drain one file's worth of data for the
    /// given pattern. Contiguous patterns that do not need aggregation are
    /// written in a single round (ROMIO bypasses the buffering).
    pub fn rounds_for(&self, pattern: &AccessPattern, procs: u32) -> u32 {
        let total = pattern.total_bytes(procs);
        if total <= 0.0 {
            return 0;
        }
        if !pattern.needs_aggregation() {
            return 1;
        }
        let per_round = self.round_bytes(procs).max(1.0);
        (total / per_round).ceil() as u32
    }

    /// Duration in seconds of the communication (shuffle) phase of one
    /// round moving `round_bytes` bytes. Zero for patterns that need no
    /// aggregation.
    pub fn comm_seconds(&self, pattern: &AccessPattern, round_bytes: f64) -> f64 {
        if !pattern.needs_aggregation() || round_bytes <= 0.0 {
            return 0.0;
        }
        round_bytes / self.shuffle_bw.max(1.0)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.buffer_bytes <= 0.0 {
            return Err(ConfigError::NonPositiveBufferBytes);
        }
        if self.shuffle_bw <= 0.0 {
            return Err(ConfigError::NonPositiveShuffleBw);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    #[test]
    fn default_aggregator_heuristic() {
        let cfg = CollectiveConfig::default();
        assert_eq!(cfg.effective_aggregators(2048), 32);
        assert_eq!(cfg.effective_aggregators(64), 1);
        assert_eq!(cfg.effective_aggregators(8), 1);
        assert_eq!(cfg.effective_aggregators(0), 1);
    }

    #[test]
    fn explicit_aggregators_clamped_to_procs() {
        let cfg = CollectiveConfig {
            aggregators: 128,
            ..Default::default()
        };
        assert_eq!(cfg.effective_aggregators(64), 64);
        assert_eq!(cfg.effective_aggregators(2048), 128);
    }

    #[test]
    fn strided_pattern_needs_multiple_rounds() {
        // Fig. 8 workload: 2048 processes, 16 MB each as 16 × 1 MB blocks.
        let cfg = CollectiveConfig::default();
        let pattern = AccessPattern::strided(1.0 * MB, 16);
        let total = pattern.total_bytes(2048); // 32.768 GB
        let per_round = cfg.round_bytes(2048); // 32 aggr × 16 MB = 512 MB
        let rounds = cfg.rounds_for(&pattern, 2048);
        assert_eq!(rounds, (total / per_round).ceil() as u32);
        assert!(rounds >= 2, "expected multiple rounds, got {rounds}");
    }

    #[test]
    fn contiguous_pattern_is_single_round_with_no_comm() {
        let cfg = CollectiveConfig::default();
        let pattern = AccessPattern::contiguous(32.0 * MB);
        assert_eq!(cfg.rounds_for(&pattern, 2048), 1);
        assert_eq!(cfg.comm_seconds(&pattern, 512.0 * MB), 0.0);
    }

    #[test]
    fn zero_data_means_zero_rounds() {
        let cfg = CollectiveConfig::default();
        let pattern = AccessPattern::contiguous(0.0);
        assert_eq!(cfg.rounds_for(&pattern, 128), 0);
    }

    #[test]
    fn comm_seconds_scale_with_round_size() {
        let cfg = CollectiveConfig {
            shuffle_bw: 1.0e9,
            ..Default::default()
        };
        let pattern = AccessPattern::strided(1.0 * MB, 16);
        let t = cfg.comm_seconds(&pattern, 512.0 * MB);
        assert!((t - 0.512).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        CollectiveConfig::default().validate().unwrap();
        assert!(CollectiveConfig {
            buffer_bytes: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CollectiveConfig {
            shuffle_bw: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
