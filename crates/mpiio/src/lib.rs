//! # mpiio — simulated MPI-IO layer
//!
//! This crate models the parts of the MPI-IO stack that matter for
//! cross-application interference, as used by the CALCioM paper:
//!
//! * [`pattern`] — per-process access patterns (contiguous / strided), the
//!   knobs of the paper's IOR-derived benchmark.
//! * [`collective`] — the collective-buffering (two-phase I/O) algorithm:
//!   how a strided collective write is decomposed into rounds of data
//!   shuffling plus aggregated writes.
//! * [`plan`] — the expanded sequence of steps ([`IoPlan`]) one I/O phase
//!   executes, and its *yield points*.
//! * [`adio`] — the hook points where CALCioM coordination calls are
//!   placed and the interruption [`Granularity`] they provide.
//! * [`app`] — the [`AppConfig`] description of one application (size,
//!   pattern, files, start date, periodicity).
//!
//! The crate deliberately contains no scheduling policy: it only describes
//! *what* an application would do. The `calciom` crate decides *when* each
//! step is allowed to run.
//!
//! ## Example
//!
//! ```
//! use mpiio::{AccessPattern, AppConfig, Granularity};
//! use pfs::AppId;
//!
//! // Fig. 10's application A: 2048 processes, 4 files of 4 MB per process.
//! let app = AppConfig::new(AppId(0), "App A", 2048, AccessPattern::contiguous(4.0e6))
//!     .with_files(4);
//! let plan = app.plan();
//! assert_eq!(plan.len(), 4); // one atomic write per file
//! assert_eq!(plan.yield_points(Granularity::File).len(), 4);
//! ```

#![warn(missing_docs)]

pub mod adio;
pub mod app;
pub mod collective;
pub mod error;
pub mod pattern;
pub mod plan;

pub use adio::{Granularity, HookPoint};
pub use app::AppConfig;
pub use collective::CollectiveConfig;
pub use error::ConfigError;
pub use pattern::AccessPattern;
pub use plan::{IoPlan, IoStep, StepKind};
