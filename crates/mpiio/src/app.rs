//! Application model.
//!
//! An [`AppConfig`] describes one job as the paper's IOR-derived benchmark
//! does: how many processes it runs on, its per-process access pattern, how
//! many files it writes per I/O phase, when its first I/O phase starts
//! (the Δ-graph `dt` offset) and, for periodic workloads (Fig. 3), how many
//! phases it executes and at which period.

use crate::collective::CollectiveConfig;
use crate::error::ConfigError;
use crate::pattern::AccessPattern;
use crate::plan::IoPlan;
use pfs::{AppId, PfsConfig};
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Static description of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppConfig {
    /// Application identity (shared with the PFS and CALCioM layers).
    pub id: AppId,
    /// Human-readable name used in experiment output ("App A", "App B").
    pub name: String,
    /// Number of processes (cores) the application runs on.
    pub procs: u32,
    /// Per-process, per-file access pattern.
    pub pattern: AccessPattern,
    /// Number of files written in each I/O phase.
    pub files: u32,
    /// Collective-buffering configuration.
    pub collective: CollectiveConfig,
    /// Start time of the first I/O phase.
    pub start: SimTime,
    /// Number of I/O phases (1 for the Δ-graph experiments, >1 for the
    /// periodic writers of Fig. 3).
    pub phases: u32,
    /// Period between the *starts* of consecutive I/O phases. If a phase
    /// takes longer than the period, the next phase starts immediately
    /// after it.
    pub phase_interval: SimDuration,
}

impl AppConfig {
    /// Creates an application with sensible defaults: one phase, one file,
    /// default collective-buffering settings, starting at t = 0.
    pub fn new(id: AppId, name: impl Into<String>, procs: u32, pattern: AccessPattern) -> Self {
        AppConfig {
            id,
            name: name.into(),
            procs,
            pattern,
            files: 1,
            collective: CollectiveConfig::default(),
            start: SimTime::ZERO,
            phases: 1,
            phase_interval: SimDuration::ZERO,
        }
    }

    /// Sets the number of files per phase.
    pub fn with_files(mut self, files: u32) -> Self {
        self.files = files;
        self
    }

    /// Sets the start time of the first phase.
    pub fn with_start(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Sets the start time in seconds (Δ-graph `dt` offsets; negative values
    /// clamp to zero — the convention used throughout the experiments is to
    /// shift the *other* application instead).
    pub fn starting_at_secs(mut self, secs: f64) -> Self {
        self.start = SimTime::from_secs(secs);
        self
    }

    /// Sets the collective-buffering configuration.
    pub fn with_collective(mut self, collective: CollectiveConfig) -> Self {
        self.collective = collective;
        self
    }

    /// Configures a periodic workload: `phases` I/O phases, one every
    /// `interval`.
    pub fn with_periodic_phases(mut self, phases: u32, interval: SimDuration) -> Self {
        self.phases = phases;
        self.phase_interval = interval;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.procs == 0 {
            return Err(ConfigError::ZeroProcs {
                app: self.name.clone(),
            });
        }
        if self.phases == 0 {
            return Err(ConfigError::ZeroPhases {
                app: self.name.clone(),
            });
        }
        self.pattern.validate()?;
        self.collective.validate()?;
        Ok(())
    }

    /// Builds the step plan for one I/O phase.
    pub fn plan(&self) -> IoPlan {
        IoPlan::build(&self.pattern, self.files, self.procs, &self.collective)
    }

    /// Total bytes written to the file system per I/O phase.
    pub fn bytes_per_phase(&self) -> f64 {
        self.pattern.total_bytes(self.procs) * self.files as f64
    }

    /// The write bandwidth this application can reach when running alone on
    /// the given file system: limited by its own client links and by the
    /// aggregate server bandwidth (cache absorb speed if a cache is
    /// present).
    pub fn alone_bandwidth(&self, pfs_cfg: &PfsConfig) -> f64 {
        let client = self.procs as f64 * pfs_cfg.process_link_bw;
        let servers = match &pfs_cfg.cache {
            Some(c) => c.absorb_bw * pfs_cfg.num_servers as f64,
            None => pfs_cfg.aggregate_server_bw(),
        };
        client.min(servers).min(pfs_cfg.interconnect_bw)
    }

    /// Fraction of the file system's aggregate bandwidth this application
    /// can drive on its own (its client-side demand), in `[0, 1]`. Two
    /// applications whose fractions sum to at most 1 barely interfere.
    pub fn pfs_demand_fraction(&self, pfs_cfg: &PfsConfig) -> f64 {
        let servers = match &pfs_cfg.cache {
            Some(c) => c.absorb_bw * pfs_cfg.num_servers as f64,
            None => pfs_cfg.aggregate_server_bw(),
        };
        if servers <= 0.0 {
            return 1.0;
        }
        (self.alone_bandwidth(pfs_cfg) / servers).clamp(0.0, 1.0)
    }

    /// Analytic estimate of the duration of one I/O phase when the
    /// application runs alone (used for "expected" curves and by the
    /// dynamic policy as `T_alone`).
    pub fn estimate_alone_seconds(&self, pfs_cfg: &PfsConfig) -> f64 {
        let bw = self.alone_bandwidth(pfs_cfg);
        let plan = self.plan();
        let mut total = 0.0;
        for step in plan.steps() {
            total += match step.kind {
                crate::plan::StepKind::Comm { seconds } => seconds,
                crate::plan::StepKind::Write { bytes } => {
                    if bw > 0.0 {
                        bytes / bw
                    } else {
                        0.0
                    }
                }
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    fn rennes() -> PfsConfig {
        PfsConfig::grid5000_rennes()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let app = AppConfig::new(AppId(0), "App A", 336, AccessPattern::contiguous(16.0 * MB))
            .with_files(4)
            .starting_at_secs(5.0)
            .with_periodic_phases(10, SimDuration::from_secs(10.0));
        assert_eq!(app.files, 4);
        assert_eq!(app.start, SimTime::from_secs(5.0));
        assert_eq!(app.phases, 10);
        assert_eq!(app.phase_interval, SimDuration::from_secs(10.0));
        app.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_procs_or_phases() {
        let app = AppConfig::new(AppId(0), "x", 0, AccessPattern::contiguous(MB));
        assert!(app.validate().is_err());
        let mut app = AppConfig::new(AppId(0), "x", 4, AccessPattern::contiguous(MB));
        app.phases = 0;
        assert!(app.validate().is_err());
    }

    #[test]
    fn bytes_per_phase_counts_files() {
        let app =
            AppConfig::new(AppId(0), "A", 2048, AccessPattern::contiguous(4.0 * MB)).with_files(4);
        assert_eq!(app.bytes_per_phase(), 2048.0 * 4.0 * MB * 4.0);
    }

    #[test]
    fn alone_bandwidth_is_min_of_client_and_servers() {
        let cfg = rennes(); // 12 × 70 MB/s = 840 MB/s servers; 12 MB/s per-proc links
        let small = AppConfig::new(AppId(0), "small", 24, AccessPattern::contiguous(16.0 * MB));
        assert!((small.alone_bandwidth(&cfg) - 24.0 * 12.0e6).abs() < 1.0);
        let big = AppConfig::new(AppId(1), "big", 744, AccessPattern::contiguous(16.0 * MB));
        assert!((big.alone_bandwidth(&cfg) - 840.0e6).abs() < 1.0);
    }

    #[test]
    fn estimate_alone_seconds_matches_hand_computation() {
        let cfg = rennes();
        let app = AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0 * MB));
        // 336 × 16 MB = 5.376 GB at 840 MB/s (server-limited: client would be
        // 4.03 GB/s) → 6.4 s.
        let t = app.estimate_alone_seconds(&cfg);
        assert!((t - 5376.0e6 / 840.0e6).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn estimate_includes_comm_time_for_strided_patterns() {
        let cfg = rennes();
        let contiguous = AppConfig::new(AppId(0), "c", 512, AccessPattern::contiguous(16.0 * MB));
        let strided = AppConfig::new(AppId(0), "s", 512, AccessPattern::strided(2.0 * MB, 8));
        assert!(strided.estimate_alone_seconds(&cfg) > contiguous.estimate_alone_seconds(&cfg));
    }
}
