//! Typed configuration errors for the MPI-IO layer.
//!
//! Application, pattern and collective-buffering validation all report
//! through [`ConfigError`] so that the `calciom` session layer can wrap
//! the failure without losing which field of which application was wrong.

/// A problem found while validating an application description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// An application was configured with zero processes.
    ZeroProcs {
        /// Name of the offending application.
        app: String,
    },
    /// An application was configured with zero I/O phases.
    ZeroPhases {
        /// Name of the offending application.
        app: String,
    },
    /// A contiguous pattern had a negative per-process size.
    NegativeBytesPerProc,
    /// A strided pattern had a negative block size.
    NegativeBlockSize,
    /// A strided pattern had zero blocks per process.
    ZeroBlockCount,
    /// The collective buffer size was not positive.
    NonPositiveBufferBytes,
    /// The collective shuffle bandwidth was not positive.
    NonPositiveShuffleBw,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroProcs { app } => write!(f, "{app}: procs must be at least 1"),
            ConfigError::ZeroPhases { app } => write!(f, "{app}: phases must be at least 1"),
            ConfigError::NegativeBytesPerProc => {
                write!(f, "bytes_per_proc must be non-negative")
            }
            ConfigError::NegativeBlockSize => write!(f, "block_size must be non-negative"),
            ConfigError::ZeroBlockCount => write!(f, "block_count must be at least 1"),
            ConfigError::NonPositiveBufferBytes => {
                write!(f, "collective buffer_bytes must be positive")
            }
            ConfigError::NonPositiveShuffleBw => {
                write!(f, "collective shuffle_bw must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}
