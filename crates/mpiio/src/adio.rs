//! ADIO-level coordination hooks.
//!
//! The paper implements CALCioM calls in a custom ADIO layer for ROMIO so
//! that `Inform`/`Release` can be issued "before and after each atomic call
//! to independent contiguous writes" (Section IV-C). How often these calls
//! are made determines how quickly an application can react to another
//! application's request — the difference between the smooth
//! "round-level interruption" curve and the "saw"-shaped "file-level
//! interruption" curve of Fig. 10.

use serde::{Deserialize, Serialize};

/// How often an application issues coordination calls during an I/O phase,
/// i.e. the granularity at which it can be interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Coordination only at the start of the whole I/O phase: once the
    /// phase has started it runs to completion.
    Phase,
    /// Coordination between files: the application can be paused after
    /// finishing the file it is currently writing (the "saw" pattern of
    /// Fig. 10).
    File,
    /// Coordination between collective-buffering rounds / atomic writes in
    /// the ADIO layer: the application can be paused within a file, after
    /// the current round completes.
    Round,
}

impl Granularity {
    /// All granularities, coarsest first.
    pub const ALL: [Granularity; 3] = [Granularity::Phase, Granularity::File, Granularity::Round];

    /// Human-readable label used by the experiment harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            Granularity::Phase => "phase",
            Granularity::File => "file",
            Granularity::Round => "round",
        }
    }

    /// Parses a label produced by [`Granularity::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Granularity::ALL
            .iter()
            .copied()
            .find(|g| g.label() == label)
    }
}

/// The hook positions exposed by the (simulated) ADIO layer. These mirror
/// where the CALCioM API calls are placed in the paper's prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HookPoint {
    /// Before the first operation of an I/O phase (application level).
    PhaseBegin,
    /// After the last operation of an I/O phase.
    PhaseEnd,
    /// Before opening/writing the next file.
    FileBegin,
    /// After closing the current file.
    FileEnd,
    /// Before the next collective-buffering round (ADIO level).
    RoundBegin,
    /// After the current collective-buffering round.
    RoundEnd,
}

impl HookPoint {
    /// Whether a coordination call at this hook is enabled for the given
    /// granularity.
    pub fn enabled_at(&self, granularity: Granularity) -> bool {
        match self {
            HookPoint::PhaseBegin | HookPoint::PhaseEnd => true,
            HookPoint::FileBegin | HookPoint::FileEnd => {
                matches!(granularity, Granularity::File | Granularity::Round)
            }
            HookPoint::RoundBegin | HookPoint::RoundEnd => {
                matches!(granularity, Granularity::Round)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = Granularity::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["phase", "file", "round"]);
    }

    #[test]
    fn phase_hooks_always_enabled() {
        for g in Granularity::ALL {
            assert!(HookPoint::PhaseBegin.enabled_at(g));
            assert!(HookPoint::PhaseEnd.enabled_at(g));
        }
    }

    #[test]
    fn file_hooks_enabled_at_file_and_round() {
        assert!(!HookPoint::FileBegin.enabled_at(Granularity::Phase));
        assert!(HookPoint::FileBegin.enabled_at(Granularity::File));
        assert!(HookPoint::FileEnd.enabled_at(Granularity::Round));
    }

    #[test]
    fn round_hooks_only_at_round() {
        assert!(!HookPoint::RoundBegin.enabled_at(Granularity::Phase));
        assert!(!HookPoint::RoundBegin.enabled_at(Granularity::File));
        assert!(HookPoint::RoundBegin.enabled_at(Granularity::Round));
        assert!(HookPoint::RoundEnd.enabled_at(Granularity::Round));
    }
}
