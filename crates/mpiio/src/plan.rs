//! I/O phase plans.
//!
//! An [`IoPlan`] is the fully expanded sequence of steps that one I/O phase
//! of one application will execute: for every file, for every
//! collective-buffering round, a communication (shuffle) step followed by a
//! write step. The CALCioM session walks this plan step by step; the
//! positions where coordination calls (`Inform`/`Check`/`Release`) are
//! issued — and therefore where the application can be interrupted — are
//! the plan's *yield points*, whose density depends on the chosen
//! granularity (Fig. 10 compares file-level and round-level interruption).

use crate::adio::Granularity;
use crate::collective::CollectiveConfig;
use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};

/// What a single step does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepKind {
    /// Data shuffle to the aggregators over the compute interconnect; does
    /// not touch the file system.
    Comm {
        /// Duration of the shuffle in seconds.
        seconds: f64,
    },
    /// One atomic collective write of `bytes` to the file system.
    Write {
        /// Bytes written to the PFS in this step.
        bytes: f64,
    },
}

/// One step of an I/O phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoStep {
    /// File index within the phase (0-based).
    pub file: u32,
    /// Collective-buffering round within the file (0-based).
    pub round: u32,
    /// The action performed.
    pub kind: StepKind,
}

/// The expanded sequence of steps for one I/O phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoPlan {
    steps: Vec<IoStep>,
    total_write_bytes: f64,
    files: u32,
}

impl IoPlan {
    /// Builds the plan for one I/O phase of an application writing `files`
    /// files with the given per-file pattern, using collective buffering
    /// configured by `collective`.
    pub fn build(
        pattern: &AccessPattern,
        files: u32,
        procs: u32,
        collective: &CollectiveConfig,
    ) -> IoPlan {
        let mut steps = Vec::new();
        let mut total_write_bytes = 0.0;
        let per_file_bytes = pattern.total_bytes(procs);
        let rounds = collective.rounds_for(pattern, procs);
        let round_bytes = collective.round_bytes(procs);

        for file in 0..files {
            let mut remaining = per_file_bytes;
            for round in 0..rounds {
                let write_bytes = if pattern.needs_aggregation() {
                    remaining.min(round_bytes)
                } else {
                    // Contiguous collective writes go out in one piece.
                    remaining
                };
                let comm_seconds = collective.comm_seconds(pattern, write_bytes);
                if comm_seconds > 0.0 {
                    steps.push(IoStep {
                        file,
                        round,
                        kind: StepKind::Comm {
                            seconds: comm_seconds,
                        },
                    });
                }
                steps.push(IoStep {
                    file,
                    round,
                    kind: StepKind::Write { bytes: write_bytes },
                });
                total_write_bytes += write_bytes;
                remaining -= write_bytes;
                if remaining <= 0.0 {
                    break;
                }
            }
        }
        IoPlan {
            steps,
            total_write_bytes,
            files,
        }
    }

    /// All steps in execution order.
    pub fn steps(&self) -> &[IoStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the phase does nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Step at the given index.
    pub fn step(&self, idx: usize) -> Option<&IoStep> {
        self.steps.get(idx)
    }

    /// Total bytes this phase writes to the file system.
    pub fn total_write_bytes(&self) -> f64 {
        self.total_write_bytes
    }

    /// Number of files the phase writes.
    pub fn files(&self) -> u32 {
        self.files
    }

    /// Bytes still to be written when the application is about to execute
    /// step `idx` (i.e. excluding everything before `idx`).
    pub fn remaining_write_bytes_from(&self, idx: usize) -> f64 {
        self.steps[idx.min(self.steps.len())..]
            .iter()
            .map(|s| match s.kind {
                StepKind::Write { bytes } => bytes,
                StepKind::Comm { .. } => 0.0,
            })
            .sum()
    }

    /// Whether index `idx` is a *yield point* for the given coordination
    /// granularity: a place where the application issues coordination calls
    /// and can be asked to wait before proceeding.
    ///
    /// Index 0 (the start of the phase) is always a yield point; the end of
    /// the plan is never one.
    pub fn is_yield_point(&self, idx: usize, granularity: Granularity) -> bool {
        if idx >= self.steps.len() {
            return false;
        }
        if idx == 0 {
            return true;
        }
        let cur = &self.steps[idx];
        let prev = &self.steps[idx - 1];
        match granularity {
            Granularity::Phase => false,
            Granularity::File => cur.file != prev.file,
            Granularity::Round => cur.file != prev.file || cur.round != prev.round,
        }
    }

    /// Indices of all yield points for the given granularity.
    pub fn yield_points(&self, granularity: Granularity) -> Vec<usize> {
        (0..self.steps.len())
            .filter(|&i| self.is_yield_point(i, granularity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    fn collective() -> CollectiveConfig {
        CollectiveConfig {
            aggregators: 32,
            buffer_bytes: 16.0 * MB,
            shuffle_bw: 8.0e9,
        }
    }

    #[test]
    fn contiguous_single_file_is_one_write() {
        let pattern = AccessPattern::contiguous(32.0 * MB);
        let plan = IoPlan::build(&pattern, 1, 2048, &collective());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.files(), 1);
        match plan.step(0).unwrap().kind {
            StepKind::Write { bytes } => assert_eq!(bytes, 2048.0 * 32.0 * MB),
            _ => panic!("expected a write step"),
        }
        assert_eq!(plan.total_write_bytes(), 2048.0 * 32.0 * MB);
    }

    #[test]
    fn contiguous_multi_file_has_one_write_per_file() {
        // Fig. 10: application A writes 4 files of 4 MB per process.
        let pattern = AccessPattern::contiguous(4.0 * MB);
        let plan = IoPlan::build(&pattern, 4, 2048, &collective());
        assert_eq!(plan.len(), 4);
        let files: Vec<u32> = plan.steps().iter().map(|s| s.file).collect();
        assert_eq!(files, vec![0, 1, 2, 3]);
    }

    #[test]
    fn strided_pattern_alternates_comm_and_write() {
        // 2048 procs × 16 MB strided; 32 aggregators × 16 MB = 512 MB/round
        // → 64 rounds of (comm, write).
        let pattern = AccessPattern::strided(1.0 * MB, 16);
        let plan = IoPlan::build(&pattern, 1, 2048, &collective());
        assert_eq!(plan.len(), 2 * 64);
        assert!(matches!(plan.step(0).unwrap().kind, StepKind::Comm { .. }));
        assert!(matches!(plan.step(1).unwrap().kind, StepKind::Write { .. }));
        let total: f64 = plan.total_write_bytes();
        assert!((total - 2048.0 * 16.0 * MB).abs() < 1.0);
    }

    #[test]
    fn last_round_carries_the_remainder() {
        // 3 procs × 10 MB with 1 aggregator × 16 MB rounds → rounds of
        // 16, 14 MB.
        let cfg = CollectiveConfig {
            aggregators: 1,
            buffer_bytes: 16.0 * MB,
            shuffle_bw: 8.0e9,
        };
        let pattern = AccessPattern::strided(1.0 * MB, 10);
        let plan = IoPlan::build(&pattern, 1, 3, &cfg);
        let writes: Vec<f64> = plan
            .steps()
            .iter()
            .filter_map(|s| match s.kind {
                StepKind::Write { bytes } => Some(bytes),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len(), 2);
        assert!((writes[0] - 16.0 * MB).abs() < 1.0);
        assert!((writes[1] - 14.0 * MB).abs() < 1.0);
        assert!((plan.total_write_bytes() - 30.0 * MB).abs() < 1.0);
    }

    #[test]
    fn yield_points_by_granularity() {
        let pattern = AccessPattern::contiguous(4.0 * MB);
        let plan = IoPlan::build(&pattern, 4, 2048, &collective());
        assert_eq!(plan.yield_points(Granularity::Phase), vec![0]);
        assert_eq!(plan.yield_points(Granularity::File), vec![0, 1, 2, 3]);
        assert_eq!(plan.yield_points(Granularity::Round), vec![0, 1, 2, 3]);

        let strided = AccessPattern::strided(1.0 * MB, 16);
        let plan = IoPlan::build(&strided, 1, 2048, &collective());
        assert_eq!(plan.yield_points(Granularity::Phase), vec![0]);
        assert_eq!(plan.yield_points(Granularity::File), vec![0]);
        // One yield point per round = every other step (before each Comm).
        let rounds = plan.yield_points(Granularity::Round);
        assert_eq!(rounds.len(), 64);
        assert!(rounds.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn remaining_bytes_from_counts_only_writes() {
        let pattern = AccessPattern::contiguous(4.0 * MB);
        let plan = IoPlan::build(&pattern, 4, 1024, &collective());
        let per_file = 1024.0 * 4.0 * MB;
        assert!((plan.remaining_write_bytes_from(0) - 4.0 * per_file).abs() < 1.0);
        assert!((plan.remaining_write_bytes_from(2) - 2.0 * per_file).abs() < 1.0);
        assert_eq!(plan.remaining_write_bytes_from(99), 0.0);
    }

    #[test]
    fn empty_plan_for_zero_files() {
        let pattern = AccessPattern::contiguous(4.0 * MB);
        let plan = IoPlan::build(&pattern, 0, 1024, &collective());
        assert!(plan.is_empty());
        assert_eq!(plan.total_write_bytes(), 0.0);
        assert!(!plan.is_yield_point(0, Granularity::Round));
    }
}
