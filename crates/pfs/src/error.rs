//! Typed configuration errors for the file system model.
//!
//! Every public constructor and validator in this crate reports problems
//! through [`ConfigError`] instead of bare strings, so that callers (the
//! `calciom` session layer, the `iobench` harness) can match on the exact
//! failure and wrap it into their own error types without parsing text.

/// A problem found while validating a [`PfsConfig`](crate::PfsConfig).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `num_servers` was zero; a file system needs at least one server.
    NoServers,
    /// A bandwidth or capacity field was NaN, zero, or negative.
    NonPositive {
        /// Name of the offending field (e.g. `"server_bw"`).
        field: &'static str,
    },
    /// The locality-breakage penalty γ was outside `(0, 1]`.
    GammaOutOfRange {
        /// The rejected value.
        gamma: f64,
    },
    /// The cache's drain bandwidth exceeded its absorb bandwidth, which
    /// would make the cache slower than the disks it fronts.
    CacheDrainExceedsAbsorb {
        /// Configured background drain bandwidth (bytes/s).
        drain_bw: f64,
        /// Configured ingest bandwidth (bytes/s).
        absorb_bw: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoServers => write!(f, "num_servers must be at least 1"),
            ConfigError::NonPositive { field } => write!(f, "{field} must be positive"),
            ConfigError::GammaOutOfRange { gamma } => {
                write!(f, "interference_gamma must be in (0, 1], got {gamma}")
            }
            ConfigError::CacheDrainExceedsAbsorb {
                drain_bw,
                absorb_bw,
            } => write!(
                f,
                "cache drain_bw ({drain_bw}) must not exceed absorb_bw ({absorb_bw})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}
