//! Write-back (kernel page) cache model for a storage server.
//!
//! The paper's Fig. 3 shows two periodic writers on a PVFS deployment with
//! kernel caching enabled in the storage backend: as long as bursts are
//! absorbed by the cache the applications observe network-speed throughput,
//! but when two bursts coincide the cache fills and both collapse to disk
//! speed. This module reproduces that mechanism with a fluid dirty-bytes
//! model and a saturation flag with hysteresis (once thrashing, a server
//! stays at disk speed until the backlog has drained to half capacity).

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Numerical tolerance on byte counts.
const EPS: f64 = 1e-6;

/// Dynamic state of one server's write-back cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteBackCache {
    cfg: CacheConfig,
    dirty: f64,
    saturated: bool,
}

impl WriteBackCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        WriteBackCache {
            cfg,
            dirty: 0.0,
            saturated: false,
        }
    }

    /// Current dirty bytes waiting to be drained to disk.
    pub fn dirty(&self) -> f64 {
        self.dirty
    }

    /// Whether the cache is currently saturated (ingest limited to disk
    /// speed).
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Bandwidth at which the server can currently accept writes.
    pub fn ingest_bw(&self) -> f64 {
        if self.saturated {
            self.cfg.drain_bw
        } else {
            self.cfg.absorb_bw
        }
    }

    /// Advances the cache state by `dt_secs` seconds with the given ingest
    /// rate (bytes/s actually written into the server over that interval).
    ///
    /// The caller must pick `dt_secs` small enough that the ingest rate is
    /// constant over the interval and that at most one threshold crossing
    /// occurs (see [`WriteBackCache::time_to_transition`]); crossings inside
    /// the interval are still handled correctly because the dirty level is
    /// clamped, only the exact crossing instant would be smeared otherwise.
    pub fn advance(&mut self, dt_secs: f64, ingest_rate: f64) {
        if dt_secs <= 0.0 {
            return;
        }
        let drain = if self.dirty > EPS || ingest_rate > 0.0 {
            self.cfg.drain_bw
        } else {
            0.0
        };
        let net = ingest_rate - drain;
        self.dirty = (self.dirty + net * dt_secs).clamp(0.0, self.cfg.capacity_bytes);
        if self.dirty >= self.cfg.capacity_bytes - EPS {
            self.saturated = true;
        } else if self.saturated && self.dirty <= 0.5 * self.cfg.capacity_bytes {
            self.saturated = false;
        }
    }

    /// Time in seconds until the ingest bandwidth would change (cache fills
    /// up, or drains below the hysteresis threshold), assuming the given
    /// constant ingest rate. `None` if no transition is ahead.
    pub fn time_to_transition(&self, ingest_rate: f64) -> Option<f64> {
        if !self.saturated {
            let net = ingest_rate - self.cfg.drain_bw;
            if net > EPS {
                let room = (self.cfg.capacity_bytes - self.dirty).max(0.0);
                return Some(room / net);
            }
            None
        } else {
            let net = self.cfg.drain_bw - ingest_rate;
            if net > EPS {
                let target = 0.5 * self.cfg.capacity_bytes;
                let excess = (self.dirty - target).max(0.0);
                return Some(excess / net);
            }
            None
        }
    }

    /// Empties the cache (used between independent experiment repetitions).
    pub fn reset(&mut self) {
        self.dirty = 0.0;
        self.saturated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 1000.0,
            absorb_bw: 100.0,
            drain_bw: 10.0,
        }
    }

    #[test]
    fn starts_empty_and_fast() {
        let c = WriteBackCache::new(cfg());
        assert_eq!(c.dirty(), 0.0);
        assert!(!c.is_saturated());
        assert_eq!(c.ingest_bw(), 100.0);
    }

    #[test]
    fn fills_up_and_saturates() {
        let mut c = WriteBackCache::new(cfg());
        // Ingesting at 100 B/s while draining at 10 B/s: net +90 B/s.
        let t = c.time_to_transition(100.0).unwrap();
        assert!((t - 1000.0 / 90.0).abs() < 1e-9);
        c.advance(t, 100.0);
        assert!(c.is_saturated());
        assert_eq!(c.ingest_bw(), 10.0);
    }

    #[test]
    fn hysteresis_releases_at_half_capacity() {
        let mut c = WriteBackCache::new(cfg());
        c.advance(1000.0, 100.0); // overshoot: clamped at capacity, saturated
        assert!(c.is_saturated());
        // Stop writing: drains at 10 B/s; must drop from 1000 to 500 bytes.
        let t = c.time_to_transition(0.0).unwrap();
        assert!((t - 50.0).abs() < 1e-9);
        c.advance(t, 0.0);
        assert!(!c.is_saturated());
        assert_eq!(c.ingest_bw(), 100.0);
    }

    #[test]
    fn no_transition_when_ingest_below_drain() {
        let c = WriteBackCache::new(cfg());
        assert!(c.time_to_transition(5.0).is_none());
    }

    #[test]
    fn saturated_and_still_ingesting_at_disk_speed_never_releases() {
        let mut c = WriteBackCache::new(cfg());
        c.advance(1000.0, 100.0);
        assert!(c.is_saturated());
        // Ingest exactly at drain speed: dirty stays at capacity.
        assert!(c.time_to_transition(10.0).is_none());
        c.advance(100.0, 10.0);
        assert!(c.is_saturated());
    }

    #[test]
    fn dirty_never_goes_negative_or_above_capacity() {
        let mut c = WriteBackCache::new(cfg());
        c.advance(1e6, 100.0);
        assert!(c.dirty() <= 1000.0 + 1e-9);
        c.advance(1e6, 0.0);
        assert!(c.dirty() >= 0.0);
        assert_eq!(c.dirty(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = WriteBackCache::new(cfg());
        c.advance(1000.0, 100.0);
        c.reset();
        assert_eq!(c.dirty(), 0.0);
        assert!(!c.is_saturated());
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut c = WriteBackCache::new(cfg());
        c.advance(0.0, 100.0);
        assert_eq!(c.dirty(), 0.0);
        c.advance(-5.0, 100.0);
        assert_eq!(c.dirty(), 0.0);
    }
}
