//! Per-server state: active request streams, cache, effective bandwidth.

use crate::cache::WriteBackCache;
use crate::config::{PfsConfig, SharePolicy};
use crate::AppId;
use simcore::fluid::ConstraintId;
use std::collections::BTreeMap;

/// Dynamic state of one storage server.
#[derive(Debug, Clone)]
pub struct ServerState {
    /// The fluid-network constraint representing this server's ingest
    /// bandwidth.
    pub constraint: ConstraintId,
    /// Optional write-back cache.
    pub cache: Option<WriteBackCache>,
    /// Number of active (unpaused, incomplete) request streams per
    /// application.
    active_streams: BTreeMap<AppId, usize>,
}

impl ServerState {
    /// Creates a server bound to the given fluid-network constraint.
    pub fn new(constraint: ConstraintId, cache: Option<WriteBackCache>) -> Self {
        ServerState {
            constraint,
            cache,
            active_streams: BTreeMap::new(),
        }
    }

    /// Registers one more active stream for `app`.
    pub fn add_stream(&mut self, app: AppId) {
        *self.active_streams.entry(app).or_insert(0) += 1;
    }

    /// Removes one active stream for `app` (no-op if none registered).
    pub fn remove_stream(&mut self, app: AppId) {
        if let Some(n) = self.active_streams.get_mut(&app) {
            *n -= 1;
            if *n == 0 {
                self.active_streams.remove(&app);
            }
        }
    }

    /// Number of distinct applications with at least one active stream.
    pub fn active_app_count(&self) -> usize {
        self.active_streams.len()
    }

    /// Applications with at least one active stream, in id order.
    pub fn active_apps(&self) -> Vec<AppId> {
        self.active_streams.keys().copied().collect()
    }

    /// Locality-breakage multiplier γ^(k−1) for the current number of
    /// concurrently active applications.
    pub fn locality_factor(&self, gamma: f64) -> f64 {
        let k = self.active_app_count();
        if k <= 1 {
            1.0
        } else {
            gamma.powi(k as i32 - 1)
        }
    }

    /// Effective ingest bandwidth of this server given the PFS
    /// configuration and the current cache / contention state.
    ///
    /// * No cache: disk speed × locality factor.
    /// * Cache with room: absorb (network) speed — the cache hides the disk,
    ///   so interleaving does not (yet) hurt.
    /// * Saturated cache: drain (disk) speed × locality factor.
    pub fn effective_bandwidth(&self, cfg: &PfsConfig) -> f64 {
        let locality = self.locality_factor(cfg.interference_gamma);
        match &self.cache {
            None => cfg.server_bw * locality,
            Some(c) => {
                if c.is_saturated() {
                    c.config().drain_bw * locality
                } else {
                    c.config().absorb_bw
                }
            }
        }
    }

    /// The fair-share weight a transfer with `procs` processes gets on this
    /// server under the configured share policy.
    pub fn share_weight(policy: SharePolicy, procs: u32) -> f64 {
        match policy {
            SharePolicy::ProportionalToProcesses => procs.max(1) as f64,
            SharePolicy::EqualPerApplication => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn server(cache: bool) -> ServerState {
        let cache = cache.then(|| {
            WriteBackCache::new(CacheConfig {
                capacity_bytes: 1000.0,
                absorb_bw: 100.0,
                drain_bw: 10.0,
            })
        });
        ServerState::new(ConstraintId(0), cache)
    }

    fn cfg() -> PfsConfig {
        PfsConfig {
            num_servers: 1,
            server_bw: 50.0,
            cache: None,
            interference_gamma: 0.8,
            process_link_bw: 1.0,
            interconnect_bw: f64::INFINITY,
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }

    #[test]
    fn stream_tracking() {
        let mut s = server(false);
        assert_eq!(s.active_app_count(), 0);
        s.add_stream(AppId(0));
        s.add_stream(AppId(0));
        s.add_stream(AppId(1));
        assert_eq!(s.active_app_count(), 2);
        assert_eq!(s.active_apps(), vec![AppId(0), AppId(1)]);
        s.remove_stream(AppId(0));
        assert_eq!(s.active_app_count(), 2, "still one stream left for app 0");
        s.remove_stream(AppId(0));
        assert_eq!(s.active_app_count(), 1);
        // Removing a stream that does not exist is a no-op.
        s.remove_stream(AppId(7));
        assert_eq!(s.active_app_count(), 1);
    }

    #[test]
    fn locality_factor_kicks_in_at_two_apps() {
        let mut s = server(false);
        s.add_stream(AppId(0));
        assert_eq!(s.locality_factor(0.8), 1.0);
        s.add_stream(AppId(1));
        assert!((s.locality_factor(0.8) - 0.8).abs() < 1e-12);
        s.add_stream(AppId(2));
        assert!((s.locality_factor(0.8) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_without_cache_is_penalized_disk() {
        let mut s = server(false);
        s.add_stream(AppId(0));
        assert!((s.effective_bandwidth(&cfg()) - 50.0).abs() < 1e-9);
        s.add_stream(AppId(1));
        assert!((s.effective_bandwidth(&cfg()) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth_with_cache_uses_absorb_until_saturated() {
        let mut s = server(true);
        s.add_stream(AppId(0));
        s.add_stream(AppId(1));
        assert!((s.effective_bandwidth(&cfg()) - 100.0).abs() < 1e-9);
        s.cache.as_mut().unwrap().advance(1e6, 100.0);
        assert!(s.cache.as_ref().unwrap().is_saturated());
        // Saturated: drain speed times locality (two apps → ×0.8).
        assert!((s.effective_bandwidth(&cfg()) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn share_weight_follows_policy() {
        assert_eq!(
            ServerState::share_weight(SharePolicy::ProportionalToProcesses, 336),
            336.0
        );
        assert_eq!(
            ServerState::share_weight(SharePolicy::ProportionalToProcesses, 0),
            1.0
        );
        assert_eq!(
            ServerState::share_weight(SharePolicy::EqualPerApplication, 336),
            1.0
        );
    }
}
