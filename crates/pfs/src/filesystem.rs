//! The parallel file system front-end.
//!
//! [`Pfs`] owns the fluid network, the storage servers and the set of
//! in-flight transfers. Client layers (the `mpiio` crate, or a raw
//! benchmark) submit *atomic writes* — the unit the paper calls an
//! "independent contiguous write" issued by the ADIO layer — and drive the
//! simulation clock through [`Pfs::advance_to`]. All interference effects
//! (request-stream-proportional sharing, locality breakage, cache
//! thrashing) happen inside this type.

use crate::config::PfsConfig;
use crate::error::ConfigError;
use crate::server::ServerState;
use crate::{AppId, WriteBackCache};
use serde::{Deserialize, Serialize};
use simcore::fluid::{ConstraintId, FlowId, FlowSpec, FluidNetwork};
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Handle to a submitted transfer (one atomic write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransferId(pub u64);

/// Progress snapshot for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProgress {
    /// Bytes written so far.
    pub transferred: f64,
    /// Bytes still to write.
    pub remaining: f64,
    /// Current aggregate rate across all servers (bytes/s).
    pub rate: f64,
    /// Submission time.
    pub started: SimTime,
    /// Completion time, if finished.
    pub completed: Option<SimTime>,
    /// Whether the transfer is currently paused.
    pub paused: bool,
}

#[derive(Debug, Clone)]
struct FlowSlot {
    flow: FlowId,
    done: bool,
}

#[derive(Debug, Clone)]
struct Transfer {
    app: AppId,
    procs: u32,
    bytes: f64,
    per_server_bytes: f64,
    flows: Vec<FlowSlot>,
    started: SimTime,
    completed: Option<SimTime>,
    paused: bool,
    reported: bool,
    done_bytes: f64,
}

/// The simulated parallel file system.
#[derive(Debug, Clone)]
pub struct Pfs {
    cfg: PfsConfig,
    net: FluidNetwork,
    servers: Vec<ServerState>,
    #[allow(dead_code)]
    interconnect: ConstraintId,
    transfers: BTreeMap<TransferId, Transfer>,
    next_id: u64,
    now: SimTime,
    bytes_completed: BTreeMap<AppId, f64>,
}

impl Pfs {
    /// Builds a file system from a validated configuration.
    pub fn new(cfg: PfsConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut net = FluidNetwork::new();
        let interconnect = net.add_constraint(cfg.interconnect_bw);
        let mut servers = Vec::with_capacity(cfg.num_servers);
        for _ in 0..cfg.num_servers {
            let cache = cfg.cache.map(WriteBackCache::new);
            // Initial capacity: single-application, cache empty.
            let constraint = net.add_constraint(match &cfg.cache {
                Some(c) => c.absorb_bw,
                None => cfg.server_bw,
            });
            servers.push(ServerState::new(constraint, cache));
        }
        Ok(Pfs {
            cfg,
            net,
            servers,
            interconnect,
            transfers: BTreeMap::new(),
            next_id: 0,
            now: SimTime::ZERO,
            bytes_completed: BTreeMap::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of storage servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Submits an atomic collective write of `bytes` bytes issued by
    /// application `app` from `procs` processes. The data is striped over
    /// all servers. Returns a handle used to track or pause the transfer.
    pub fn submit_write(&mut self, app: AppId, bytes: f64, procs: u32) -> TransferId {
        assert!(bytes >= 0.0, "write size must be non-negative");
        let id = TransferId(self.next_id);
        self.next_id += 1;

        let n = self.servers.len() as f64;
        let per_server_bytes = bytes / n;
        let client_cap_per_server = (procs.max(1) as f64 * self.cfg.process_link_bw / n).max(1.0);
        let weight = ServerState::share_weight(self.cfg.share_policy, procs);

        let mut flows = Vec::with_capacity(self.servers.len());
        for server in &mut self.servers {
            let flow = self.net.add_flow(FlowSpec::new(
                per_server_bytes,
                weight,
                client_cap_per_server,
                vec![server.constraint, self.interconnect],
            ));
            server.add_stream(app);
            flows.push(FlowSlot { flow, done: false });
        }

        self.transfers.insert(
            id,
            Transfer {
                app,
                procs,
                bytes,
                per_server_bytes,
                flows,
                started: self.now,
                completed: None,
                paused: false,
                reported: false,
                done_bytes: 0.0,
            },
        );
        self.refresh_capacities();
        // A zero-byte write completes immediately.
        self.collect_completions();
        id
    }

    /// Pauses an in-flight transfer (its flows stop consuming bandwidth and
    /// it no longer counts as an active application on the servers). Used
    /// by CALCioM's interruption strategy.
    pub fn pause(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.get_mut(&id) else {
            return;
        };
        if tr.paused || tr.completed.is_some() {
            return;
        }
        tr.paused = true;
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.pause_flow(slot.flow);
                self.servers[idx].remove_stream(tr.app);
            }
        }
        self.refresh_capacities();
    }

    /// Resumes a paused transfer.
    pub fn resume(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.get_mut(&id) else {
            return;
        };
        if !tr.paused || tr.completed.is_some() {
            return;
        }
        tr.paused = false;
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.resume_flow(slot.flow);
                self.servers[idx].add_stream(tr.app);
            }
        }
        self.refresh_capacities();
    }

    /// Cancels a transfer, discarding any unfinished bytes.
    pub fn cancel(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.remove(&id) else {
            return;
        };
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.remove_flow(slot.flow);
                if !tr.paused {
                    self.servers[idx].remove_stream(tr.app);
                }
            }
        }
        self.refresh_capacities();
    }

    /// Number of processes backing a transfer (as declared at submission).
    pub fn transfer_procs(&self, id: TransferId) -> Option<u32> {
        self.transfers.get(&id).map(|t| t.procs)
    }

    /// True once every byte of the transfer has been written.
    pub fn is_complete(&self, id: TransferId) -> bool {
        self.transfers
            .get(&id)
            .map(|t| t.completed.is_some())
            .unwrap_or(false)
    }

    /// Whether the given application currently has an unpaused, incomplete
    /// transfer in flight.
    pub fn app_is_active(&self, app: AppId) -> bool {
        self.transfers
            .values()
            .any(|t| t.app == app && t.completed.is_none() && !t.paused)
    }

    /// Progress snapshot for a transfer.
    pub fn progress(&mut self, id: TransferId) -> Option<TransferProgress> {
        let tr = self.transfers.get(&id)?;
        let mut transferred = tr.done_bytes;
        let mut rate = 0.0;
        for slot in &tr.flows {
            if !slot.done {
                if let Some(p) = self.net.progress(slot.flow) {
                    transferred += p.transferred;
                    rate += p.rate;
                }
            }
        }
        let tr = self.transfers.get(&id)?;
        Some(TransferProgress {
            transferred,
            remaining: (tr.bytes - transferred).max(0.0),
            rate,
            started: tr.started,
            completed: tr.completed,
            paused: tr.paused,
        })
    }

    /// Aggregate write rate across all applications (bytes/s).
    pub fn aggregate_rate(&mut self) -> f64 {
        self.net.aggregate_rate()
    }

    /// Current write rate of one application (bytes/s).
    pub fn app_rate(&mut self, app: AppId) -> f64 {
        let flows: Vec<FlowId> = self
            .transfers
            .values()
            .filter(|t| t.app == app)
            .flat_map(|t| t.flows.iter().filter(|s| !s.done).map(|s| s.flow))
            .collect();
        flows.into_iter().map(|f| self.net.rate(f)).sum()
    }

    /// Total bytes written by an application across completed transfers.
    pub fn bytes_completed(&self, app: AppId) -> f64 {
        self.bytes_completed.get(&app).copied().unwrap_or(0.0)
    }

    /// Applications with at least one active stream on at least one server.
    pub fn active_apps(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self.servers.iter().flat_map(|s| s.active_apps()).collect();
        apps.sort_unstable();
        apps.dedup();
        apps
    }

    /// Next instant at which something internal changes (a flow completes
    /// or a cache crosses a threshold), or `None` if nothing is in flight.
    /// The returned time is always strictly after [`Pfs::now`] so that a
    /// driver looping on it always makes progress.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        if let Some(ttc) = self.net.time_to_next_completion() {
            best = Some(self.now + ttc);
        }
        if self.cfg.cache.is_some() {
            let ingest = self.per_server_ingest();
            for (idx, server) in self.servers.iter().enumerate() {
                if let Some(cache) = &server.cache {
                    if let Some(t) = cache.time_to_transition(ingest[idx]) {
                        let at = self.now + SimDuration::from_secs(t);
                        best = Some(match best {
                            Some(b) => b.min(at),
                            None => at,
                        });
                    }
                }
            }
        }
        // Guard against sub-microsecond remainders rounding to "now": the
        // caller would otherwise spin without advancing the clock.
        best.map(|t| t.max(self.now + SimDuration::from_ticks(1)))
    }

    /// Advances the simulation to `target`, handling flow completions and
    /// cache transitions internally (subdividing the interval so that rates
    /// are piecewise constant).
    pub fn advance_to(&mut self, target: SimTime) {
        let mut guard = 0u64;
        while self.now < target {
            guard += 1;
            assert!(
                guard < 10_000_000,
                "Pfs::advance_to failed to converge (simulation bug)"
            );

            // Cache bookkeeping needs the per-server ingest rates; on a
            // cache-less file system (the common sweep configuration) the
            // O(flows × servers) scan is skipped entirely.
            let ingest = if self.cfg.cache.is_some() {
                self.per_server_ingest()
            } else {
                Vec::new()
            };

            // Next internal change point.
            let mut step_end = target;
            if let Some(ttc) = self.net.time_to_next_completion() {
                step_end = step_end.min(self.now + ttc);
            }
            for (idx, server) in self.servers.iter().enumerate() {
                if let Some(cache) = &server.cache {
                    if let Some(t) = cache.time_to_transition(ingest[idx]) {
                        step_end = step_end.min(self.now + SimDuration::from_secs(t));
                    }
                }
            }
            // Guarantee forward progress despite microsecond rounding.
            if step_end <= self.now {
                step_end = self.now + SimDuration::from_ticks(1);
            }
            let step_end = step_end.min(target.max(self.now + SimDuration::from_ticks(1)));
            let dt = step_end.saturating_since(self.now);

            self.net.advance(dt);
            for (idx, server) in self.servers.iter_mut().enumerate() {
                if let Some(cache) = &mut server.cache {
                    cache.advance(dt.as_secs(), ingest[idx]);
                }
            }
            self.now = step_end;
            self.collect_completions();
            self.refresh_capacities();
        }
    }

    /// Transfers that completed since the last call, in completion order.
    pub fn poll_completed(&mut self) -> Vec<TransferId> {
        let mut done: Vec<(SimTime, TransferId)> = Vec::new();
        for (id, tr) in self.transfers.iter_mut() {
            if let Some(t) = tr.completed {
                if !tr.reported {
                    tr.reported = true;
                    done.push((t, *id));
                }
            }
        }
        done.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        done.into_iter().map(|(_, id)| id).collect()
    }

    /// Resets all cache state (between independent experiment repetitions).
    pub fn reset_caches(&mut self) {
        for server in &mut self.servers {
            if let Some(cache) = &mut server.cache {
                cache.reset();
            }
        }
        self.refresh_capacities();
    }

    fn per_server_ingest(&mut self) -> Vec<f64> {
        let mut ingest = vec![0.0; self.servers.len()];
        let flows: Vec<(usize, FlowId)> = self
            .transfers
            .values()
            .flat_map(|t| {
                t.flows
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done)
                    .map(|(idx, s)| (idx, s.flow))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (idx, flow) in flows {
            ingest[idx] += self.net.rate(flow);
        }
        ingest
    }

    fn collect_completions(&mut self) {
        let now = self.now;
        let mut capacity_dirty = false;
        for tr in self.transfers.values_mut() {
            if tr.completed.is_some() {
                continue;
            }
            let mut all_done = true;
            for (idx, slot) in tr.flows.iter_mut().enumerate() {
                if slot.done {
                    continue;
                }
                if self.net.is_complete(slot.flow) {
                    slot.done = true;
                    tr.done_bytes += tr.per_server_bytes;
                    self.net.remove_flow(slot.flow);
                    if !tr.paused {
                        self.servers[idx].remove_stream(tr.app);
                    }
                    capacity_dirty = true;
                } else {
                    all_done = false;
                }
            }
            if all_done {
                tr.completed = Some(now);
                tr.done_bytes = tr.bytes;
                *self.bytes_completed.entry(tr.app).or_insert(0.0) += tr.bytes;
            }
        }
        if capacity_dirty {
            self.refresh_capacities();
        }
    }

    fn refresh_capacities(&mut self) {
        for server in &self.servers {
            self.net
                .set_capacity(server.constraint, server.effective_bandwidth(&self.cfg));
        }
    }
}

/// The file system is the *continuous* half of a coupled simulation: a
/// [`simcore::Kernel`] owns the clock and drives the in-flight transfers
/// (and cache state) through this impl, interleaved with its discrete
/// events. The kernel's clock and [`Pfs::now`] advance in lockstep — both
/// are integer-tick, so no drift is possible.
impl simcore::kernel::Medium for Pfs {
    fn time_to_next(&mut self) -> Option<SimDuration> {
        let now = self.now;
        self.next_event_time().map(|t| t.saturating_since(now))
    }

    fn advance(&mut self, dt: SimDuration) {
        let target = self.now + dt;
        self.advance_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, SharePolicy};

    fn simple_cfg() -> PfsConfig {
        PfsConfig {
            num_servers: 4,
            server_bw: 100.0e6, // 100 MB/s per server → 400 MB/s aggregate
            cache: None,
            interference_gamma: 1.0,
            process_link_bw: 10.0e6,
            interconnect_bw: f64::INFINITY,
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_write_takes_bytes_over_bandwidth() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // 400 MB from 128 procs: client cap = 1.28 GB/s, server cap = 400 MB/s
        // → bottleneck 400 MB/s → 1 second.
        let tr = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.5));
        assert!(!pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        assert!((p.transferred - 200.0e6).abs() < 1.0e6);
        pfs.advance_to(t(1.01));
        assert!(pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        assert!(p.completed.unwrap() <= t(1.01));
        assert!(p.completed.unwrap() >= t(0.99));
        assert_eq!(pfs.poll_completed(), vec![tr]);
        assert!(pfs.poll_completed().is_empty(), "reported only once");
    }

    #[test]
    fn small_app_is_limited_by_its_client_links() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // 8 procs × 10 MB/s = 80 MB/s client-side cap, well below the
        // 400 MB/s the file system could deliver.
        let tr = pfs.submit_write(AppId(0), 80.0e6, 8);
        pfs.advance_to(t(1.05));
        assert!(pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!((dur - 1.0).abs() < 0.05, "duration was {dur}");
    }

    #[test]
    fn two_equal_apps_share_and_both_slow_down() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.advance_to(t(2.1));
        assert!(pfs.is_complete(a) && pfs.is_complete(b));
        let ta = pfs.progress(a).unwrap().completed.unwrap().as_secs();
        let tb = pfs.progress(b).unwrap().completed.unwrap().as_secs();
        // Each would take 1 s alone; sharing makes both take ~2 s.
        assert!((ta - 2.0).abs() < 0.05, "ta = {ta}");
        assert!((tb - 2.0).abs() < 0.05, "tb = {tb}");
    }

    #[test]
    fn big_app_crowds_out_small_app() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // Big app: 360 procs; small app: 40 procs. Server bandwidth is
        // shared 9:1, so the small app's 40 MB write that would take 0.1 s
        // alone (client-limited at 400MB/s? no: 40procs*10MB/s=400MB/s,
        // server 400MB/s → 0.1 s) now gets only ~40 MB/s.
        let big = pfs.submit_write(AppId(0), 3600.0e6, 360);
        let small = pfs.submit_write(AppId(1), 40.0e6, 40);
        pfs.advance_to(t(30.0));
        assert!(pfs.is_complete(small));
        let p = pfs.progress(small).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!(
            dur > 0.5,
            "small app should be heavily slowed down, got {dur}"
        );
        assert!(pfs.is_complete(big));
    }

    #[test]
    fn locality_penalty_makes_interference_worse_than_serial() {
        let mut cfg = simple_cfg();
        cfg.interference_gamma = 0.7;
        let mut pfs = Pfs::new(cfg).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.advance_to(t(10.0));
        let ta = pfs.progress(a).unwrap().completed.unwrap().as_secs();
        let tb = pfs.progress(b).unwrap().completed.unwrap().as_secs();
        // Serialized, the pair would need 2 s. With γ=0.7 both finish
        // later than that.
        assert!(ta > 2.2 && tb > 2.2, "ta={ta} tb={tb}");
    }

    #[test]
    fn pause_and_resume_freeze_progress() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.5));
        pfs.pause(a);
        let before = pfs.progress(a).unwrap().transferred;
        pfs.advance_to(t(5.0));
        let after = pfs.progress(a).unwrap().transferred;
        assert!((before - after).abs() < 1.0);
        assert!(!pfs.app_is_active(AppId(0)));
        pfs.resume(a);
        assert!(pfs.app_is_active(AppId(0)));
        pfs.advance_to(t(5.6));
        assert!(pfs.is_complete(a));
    }

    #[test]
    fn paused_app_frees_bandwidth_for_the_other() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.pause(a);
        pfs.advance_to(t(1.05));
        assert!(pfs.is_complete(b), "b should finish in ~1 s with a paused");
        assert!(!pfs.is_complete(a));
        let _ = a;
    }

    #[test]
    fn cancel_removes_transfer() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.2));
        pfs.cancel(a);
        assert!(pfs.progress(a).is_none());
        assert!(!pfs.app_is_active(AppId(0)));
        assert!(pfs.active_apps().is_empty());
    }

    #[test]
    fn cache_absorbs_small_bursts_then_thrashes() {
        let cfg = PfsConfig {
            num_servers: 1,
            server_bw: 10.0e6,
            cache: Some(CacheConfig {
                capacity_bytes: 50.0e6,
                absorb_bw: 100.0e6,
                drain_bw: 10.0e6,
            }),
            interference_gamma: 1.0,
            process_link_bw: 100.0e6,
            interconnect_bw: f64::INFINITY,
            share_policy: SharePolicy::ProportionalToProcesses,
        };
        let mut pfs = Pfs::new(cfg).unwrap();
        // A 30 MB burst fits in the cache: completes at ~cache speed.
        let a = pfs.submit_write(AppId(0), 30.0e6, 4);
        pfs.advance_to(t(1.0));
        assert!(pfs.is_complete(a));
        let dur_a = {
            let p = pfs.progress(a).unwrap();
            p.completed.unwrap().saturating_since(p.started).as_secs()
        };
        assert!(dur_a < 0.5, "cached burst should be fast, got {dur_a}");

        // A 200 MB burst (cache still holding ~27 MB) saturates the cache
        // and ends up at disk speed.
        let b = pfs.submit_write(AppId(0), 200.0e6, 4);
        pfs.advance_to(t(60.0));
        assert!(pfs.is_complete(b));
        let p = pfs.progress(b).unwrap();
        let dur_b = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!(
            dur_b > 10.0,
            "saturating burst should be disk-bound, got {dur_b}"
        );
    }

    #[test]
    fn next_event_time_tracks_completions() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        assert!(pfs.next_event_time().is_none());
        let _a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let next = pfs.next_event_time().unwrap();
        assert!((next.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn bytes_completed_accumulates_per_app() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        pfs.submit_write(AppId(0), 100.0e6, 64);
        pfs.submit_write(AppId(0), 50.0e6, 64);
        pfs.submit_write(AppId(1), 25.0e6, 64);
        pfs.advance_to(t(5.0));
        assert!((pfs.bytes_completed(AppId(0)) - 150.0e6).abs() < 1.0);
        assert!((pfs.bytes_completed(AppId(1)) - 25.0e6).abs() < 1.0);
        assert_eq!(pfs.bytes_completed(AppId(9)), 0.0);
    }

    #[test]
    fn zero_byte_write_completes_immediately() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 0.0, 16);
        assert!(pfs.is_complete(a));
        assert_eq!(pfs.poll_completed(), vec![a]);
    }

    #[test]
    fn equal_share_policy_protects_small_app() {
        let mut cfg = simple_cfg();
        cfg.share_policy = SharePolicy::EqualPerApplication;
        let mut pfs = Pfs::new(cfg).unwrap();
        let _big = pfs.submit_write(AppId(0), 3600.0e6, 360);
        let small = pfs.submit_write(AppId(1), 40.0e6, 40);
        pfs.advance_to(t(30.0));
        let p = pfs.progress(small).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        // With per-application fairness the small app gets 200 MB/s and
        // finishes in ~0.2-0.4 s instead of several seconds.
        assert!(dur < 0.5, "equal-share small app took {dur}");
    }
}
