//! The parallel file system front-end.
//!
//! [`Pfs`] owns the fluid network, the storage servers and the set of
//! in-flight transfers. Client layers (the `mpiio` crate, or a raw
//! benchmark) submit *atomic writes* — the unit the paper calls an
//! "independent contiguous write" issued by the ADIO layer — and drive the
//! simulation clock through [`Pfs::advance_to`]. All interference effects
//! (request-stream-proportional sharing, locality breakage, cache
//! thrashing) happen inside this type.

use crate::config::PfsConfig;
use crate::error::ConfigError;
use crate::server::ServerState;
use crate::{AppId, WriteBackCache};
use serde::{Deserialize, Serialize};
use simcore::fair::{SharingModel, VtFairNetwork};
use simcore::fluid::{ConstraintId, FlowId, FlowProgress, FlowSpec, FluidNetwork};
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Handle to a submitted transfer (one atomic write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransferId(pub u64);

/// Progress snapshot for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProgress {
    /// Bytes written so far.
    pub transferred: f64,
    /// Bytes still to write.
    pub remaining: f64,
    /// Current aggregate rate across all servers (bytes/s).
    pub rate: f64,
    /// Submission time.
    pub started: SimTime,
    /// Completion time, if finished.
    pub completed: Option<SimTime>,
    /// Whether the transfer is currently paused.
    pub paused: bool,
}

#[derive(Debug, Clone)]
struct FlowSlot {
    flow: FlowId,
    done: bool,
}

#[derive(Debug, Clone)]
struct Transfer {
    app: AppId,
    procs: u32,
    bytes: f64,
    per_server_bytes: f64,
    flows: Vec<FlowSlot>,
    /// Flows not yet done — completion fires when this reaches zero,
    /// without scanning `flows`.
    pending: usize,
    started: SimTime,
    completed: Option<SimTime>,
    paused: bool,
    done_bytes: f64,
}

/// The bandwidth-sharing substrate behind the file system: either the
/// exact incremental max-min solver or the `O(log n)` virtual-time model,
/// selected per [`SharingModel`]. Enum dispatch (rather than generics)
/// keeps `Pfs` a single concrete type for every layer above it.
#[derive(Debug, Clone)]
enum Network {
    MaxMin(FluidNetwork),
    FairFast(VtFairNetwork),
}

macro_rules! delegate {
    ($self:ident, $net:ident => $body:expr) => {
        match $self {
            Network::MaxMin($net) => $body,
            Network::FairFast($net) => $body,
        }
    };
}

impl Network {
    fn add_constraint(&mut self, capacity: f64) -> ConstraintId {
        delegate!(self, net => net.add_constraint(capacity))
    }
    fn set_capacity(&mut self, id: ConstraintId, capacity: f64) {
        delegate!(self, net => net.set_capacity(id, capacity))
    }
    fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        delegate!(self, net => net.add_flow(spec))
    }
    fn remove_flow(&mut self, id: FlowId) -> Option<FlowProgress> {
        delegate!(self, net => net.remove_flow(id))
    }
    fn pause_flow(&mut self, id: FlowId) {
        delegate!(self, net => net.pause_flow(id))
    }
    fn resume_flow(&mut self, id: FlowId) {
        delegate!(self, net => net.resume_flow(id))
    }
    fn progress(&mut self, id: FlowId) -> Option<FlowProgress> {
        delegate!(self, net => net.progress(id))
    }
    fn is_complete(&self, id: FlowId) -> bool {
        delegate!(self, net => net.is_complete(id))
    }
    fn rate(&mut self, id: FlowId) -> f64 {
        delegate!(self, net => net.rate(id))
    }
    fn aggregate_rate(&mut self) -> f64 {
        delegate!(self, net => net.aggregate_rate())
    }
    fn time_to_next_completion(&mut self) -> Option<SimDuration> {
        delegate!(self, net => net.time_to_next_completion())
    }
    fn advance(&mut self, dt: SimDuration) {
        delegate!(self, net => net.advance(dt))
    }
    fn drain_completed(&mut self) -> Vec<FlowId> {
        delegate!(self, net => net.drain_completed())
    }
    fn stalled_flows(&mut self) -> Vec<FlowId> {
        match self {
            Network::MaxMin(net) => net.stalled_flows(),
            Network::FairFast(net) => net.stalled_flows(),
        }
    }
}

/// The simulated parallel file system.
#[derive(Debug, Clone)]
pub struct Pfs {
    cfg: PfsConfig,
    net: Network,
    sharing: SharingModel,
    servers: Vec<ServerState>,
    interconnect: ConstraintId,
    transfers: BTreeMap<TransferId, Transfer>,
    /// Reverse map from network flow to its (transfer, server) slot, so
    /// completions drain in `O(log n)` instead of a full transfer scan.
    flow_index: BTreeMap<FlowId, (TransferId, usize)>,
    /// Transfers completed since the last [`Pfs::poll_completed`].
    newly_done: Vec<(SimTime, TransferId)>,
    /// Per-application count of unpaused, incomplete transfers.
    active_counts: BTreeMap<AppId, usize>,
    next_id: u64,
    now: SimTime,
    bytes_completed: BTreeMap<AppId, f64>,
}

impl Pfs {
    /// Builds a file system from a validated configuration, on the default
    /// (exact max-min) sharing model.
    pub fn new(cfg: PfsConfig) -> Result<Self, ConfigError> {
        Self::with_medium(cfg, SharingModel::default())
    }

    /// Builds a file system on an explicitly chosen sharing model.
    pub fn with_medium(cfg: PfsConfig, sharing: SharingModel) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut net = match sharing {
            SharingModel::MaxMin => Network::MaxMin(FluidNetwork::new()),
            SharingModel::FairFast => Network::FairFast(VtFairNetwork::new()),
        };
        let interconnect = net.add_constraint(cfg.interconnect_bw);
        let mut servers = Vec::with_capacity(cfg.num_servers);
        for _ in 0..cfg.num_servers {
            let cache = cfg.cache.map(WriteBackCache::new);
            // Initial capacity: single-application, cache empty.
            let constraint = net.add_constraint(match &cfg.cache {
                Some(c) => c.absorb_bw,
                None => cfg.server_bw,
            });
            servers.push(ServerState::new(constraint, cache));
        }
        Ok(Pfs {
            cfg,
            net,
            sharing,
            servers,
            interconnect,
            transfers: BTreeMap::new(),
            flow_index: BTreeMap::new(),
            newly_done: Vec::new(),
            active_counts: BTreeMap::new(),
            next_id: 0,
            now: SimTime::ZERO,
            bytes_completed: BTreeMap::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// The bandwidth-sharing model this file system runs on.
    pub fn sharing_model(&self) -> SharingModel {
        self.sharing
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of storage servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Submits an atomic collective write of `bytes` bytes issued by
    /// application `app` from `procs` processes. The data is striped over
    /// all servers. Returns a handle used to track or pause the transfer.
    pub fn submit_write(&mut self, app: AppId, bytes: f64, procs: u32) -> TransferId {
        assert!(bytes >= 0.0, "write size must be non-negative");
        let id = TransferId(self.next_id);
        self.next_id += 1;

        let n = self.servers.len() as f64;
        let per_server_bytes = bytes / n;
        let client_cap_per_server = (procs.max(1) as f64 * self.cfg.process_link_bw / n).max(1.0);
        let weight = ServerState::share_weight(self.cfg.share_policy, procs);

        let mut flows = Vec::with_capacity(self.servers.len());
        for server in &mut self.servers {
            let flow = self.net.add_flow(FlowSpec::new(
                per_server_bytes,
                weight,
                client_cap_per_server,
                vec![server.constraint, self.interconnect],
            ));
            server.add_stream(app);
            flows.push(FlowSlot { flow, done: false });
        }

        let pending = flows.len();
        for (idx, slot) in flows.iter().enumerate() {
            self.flow_index.insert(slot.flow, (id, idx));
        }
        // A zero-byte write's flows are born complete.
        let born_done: Vec<FlowId> = flows
            .iter()
            .filter(|s| self.net.is_complete(s.flow))
            .map(|s| s.flow)
            .collect();
        self.transfers.insert(
            id,
            Transfer {
                app,
                procs,
                bytes,
                per_server_bytes,
                flows,
                pending,
                started: self.now,
                completed: None,
                paused: false,
                done_bytes: 0.0,
            },
        );
        *self.active_counts.entry(app).or_insert(0) += 1;
        for flow in born_done {
            self.finish_flow(flow);
        }
        self.refresh_capacities();
        id
    }

    /// Pauses an in-flight transfer (its flows stop consuming bandwidth and
    /// it no longer counts as an active application on the servers). Used
    /// by CALCioM's interruption strategy.
    pub fn pause(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.get_mut(&id) else {
            return;
        };
        if tr.paused || tr.completed.is_some() {
            return;
        }
        tr.paused = true;
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.pause_flow(slot.flow);
                self.servers[idx].remove_stream(tr.app);
            }
        }
        let count = self.active_counts.entry(tr.app).or_insert(0);
        *count = count.saturating_sub(1);
        self.refresh_capacities();
    }

    /// Resumes a paused transfer.
    pub fn resume(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.get_mut(&id) else {
            return;
        };
        if !tr.paused || tr.completed.is_some() {
            return;
        }
        tr.paused = false;
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.resume_flow(slot.flow);
                self.servers[idx].add_stream(tr.app);
            }
        }
        *self.active_counts.entry(tr.app).or_insert(0) += 1;
        self.refresh_capacities();
        // A resumed flow whose bytes were already settled complete (the
        // virtual-time medium snaps these at resume) must finish its
        // transfer bookkeeping immediately.
        self.collect_completions();
    }

    /// Cancels a transfer, discarding any unfinished bytes.
    pub fn cancel(&mut self, id: TransferId) {
        let Some(tr) = self.transfers.remove(&id) else {
            return;
        };
        for (idx, slot) in tr.flows.iter().enumerate() {
            if !slot.done {
                self.net.remove_flow(slot.flow);
                self.flow_index.remove(&slot.flow);
                if !tr.paused {
                    self.servers[idx].remove_stream(tr.app);
                }
            }
        }
        if tr.completed.is_none() && !tr.paused {
            let count = self.active_counts.entry(tr.app).or_insert(0);
            *count = count.saturating_sub(1);
        }
        self.refresh_capacities();
    }

    /// Number of processes backing a transfer (as declared at submission).
    pub fn transfer_procs(&self, id: TransferId) -> Option<u32> {
        self.transfers.get(&id).map(|t| t.procs)
    }

    /// True once every byte of the transfer has been written.
    pub fn is_complete(&self, id: TransferId) -> bool {
        self.transfers
            .get(&id)
            .map(|t| t.completed.is_some())
            .unwrap_or(false)
    }

    /// Whether the given application currently has an unpaused, incomplete
    /// transfer in flight. `O(log n)` via the per-application counter.
    pub fn app_is_active(&self, app: AppId) -> bool {
        self.active_counts.get(&app).copied().unwrap_or(0) > 0
    }

    /// Progress snapshot for a transfer.
    pub fn progress(&mut self, id: TransferId) -> Option<TransferProgress> {
        let tr = self.transfers.get(&id)?;
        let mut transferred = tr.done_bytes;
        let mut rate = 0.0;
        for slot in &tr.flows {
            if !slot.done {
                if let Some(p) = self.net.progress(slot.flow) {
                    transferred += p.transferred;
                    rate += p.rate;
                }
            }
        }
        let tr = self.transfers.get(&id)?;
        Some(TransferProgress {
            transferred,
            remaining: (tr.bytes - transferred).max(0.0),
            rate,
            started: tr.started,
            completed: tr.completed,
            paused: tr.paused,
        })
    }

    /// Aggregate write rate across all applications (bytes/s).
    pub fn aggregate_rate(&mut self) -> f64 {
        self.net.aggregate_rate()
    }

    /// Current write rate of one application (bytes/s).
    pub fn app_rate(&mut self, app: AppId) -> f64 {
        let flows: Vec<FlowId> = self
            .transfers
            .values()
            .filter(|t| t.app == app)
            .flat_map(|t| t.flows.iter().filter(|s| !s.done).map(|s| s.flow))
            .collect();
        flows.into_iter().map(|f| self.net.rate(f)).sum()
    }

    /// Total bytes written by an application across completed transfers.
    pub fn bytes_completed(&self, app: AppId) -> f64 {
        self.bytes_completed.get(&app).copied().unwrap_or(0.0)
    }

    /// Applications with at least one active stream on at least one server.
    pub fn active_apps(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self.servers.iter().flat_map(|s| s.active_apps()).collect();
        apps.sort_unstable();
        apps.dedup();
        apps
    }

    /// Next instant at which something internal changes (a flow completes
    /// or a cache crosses a threshold), or `None` if nothing is in flight.
    /// The returned time is always strictly after [`Pfs::now`] so that a
    /// driver looping on it always makes progress.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        if let Some(ttc) = self.net.time_to_next_completion() {
            best = Some(self.now + ttc);
        }
        if self.cfg.cache.is_some() {
            let ingest = self.per_server_ingest();
            for (idx, server) in self.servers.iter().enumerate() {
                if let Some(cache) = &server.cache {
                    if let Some(t) = cache.time_to_transition(ingest[idx]) {
                        let at = self.now + SimDuration::from_secs(t);
                        best = Some(match best {
                            Some(b) => b.min(at),
                            None => at,
                        });
                    }
                }
            }
        }
        // Guard against sub-microsecond remainders rounding to "now": the
        // caller would otherwise spin without advancing the clock.
        best.map(|t| t.max(self.now + SimDuration::from_ticks(1)))
    }

    /// Advances the simulation to `target`, handling flow completions and
    /// cache transitions internally (subdividing the interval so that rates
    /// are piecewise constant).
    pub fn advance_to(&mut self, target: SimTime) {
        let mut guard = 0u64;
        while self.now < target {
            guard += 1;
            assert!(
                guard < 10_000_000,
                "Pfs::advance_to failed to converge (simulation bug)"
            );

            // Cache bookkeeping needs the per-server ingest rates; on a
            // cache-less file system (the common sweep configuration) the
            // O(flows × servers) scan is skipped entirely.
            let ingest = if self.cfg.cache.is_some() {
                self.per_server_ingest()
            } else {
                Vec::new()
            };

            // Next internal change point.
            let mut step_end = target;
            if let Some(ttc) = self.net.time_to_next_completion() {
                step_end = step_end.min(self.now + ttc);
            }
            for (idx, server) in self.servers.iter().enumerate() {
                if let Some(cache) = &server.cache {
                    if let Some(t) = cache.time_to_transition(ingest[idx]) {
                        step_end = step_end.min(self.now + SimDuration::from_secs(t));
                    }
                }
            }
            // Guarantee forward progress despite microsecond rounding.
            if step_end <= self.now {
                step_end = self.now + SimDuration::from_ticks(1);
            }
            let step_end = step_end.min(target.max(self.now + SimDuration::from_ticks(1)));
            let dt = step_end.saturating_since(self.now);

            self.net.advance(dt);
            for (idx, server) in self.servers.iter_mut().enumerate() {
                if let Some(cache) = &mut server.cache {
                    cache.advance(dt.as_secs(), ingest[idx]);
                }
            }
            self.now = step_end;
            self.collect_completions();
            self.refresh_capacities();
        }
    }

    /// Transfers that completed since the last call, in completion order.
    /// `O(completions)` — completions queue as they drain from the
    /// network; no transfer scan.
    pub fn poll_completed(&mut self) -> Vec<TransferId> {
        if self.newly_done.is_empty() {
            return Vec::new();
        }
        let mut done: Vec<(SimTime, TransferId)> = std::mem::take(&mut self.newly_done)
            .into_iter()
            // A transfer cancelled after completing is never reported,
            // matching the pre-queue scan semantics.
            .filter(|(_, id)| self.transfers.contains_key(id))
            .collect();
        done.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        done.into_iter().map(|(_, id)| id).collect()
    }

    /// Transfers that are active (unpaused, incomplete) yet pinned at a
    /// zero rate by the network — e.g. starved by a zero-capacity
    /// constraint. Such transfers never produce a completion event; the
    /// session layer surfaces them as a structured error instead of
    /// hanging until the horizon.
    pub fn stalled_transfers(&mut self) -> Vec<(AppId, TransferId)> {
        let stalled = self.net.stalled_flows();
        let mut out: Vec<(AppId, TransferId)> = stalled
            .iter()
            .filter_map(|f| self.flow_index.get(f))
            .filter_map(|&(tid, _)| self.transfers.get(&tid).map(|t| (t.app, tid)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Overrides the interconnect ceiling at runtime (fault injection for
    /// degraded-network experiments; `0.0` starves every in-flight
    /// transfer, which [`Pfs::stalled_transfers`] then reports).
    pub fn throttle_interconnect(&mut self, bw: f64) {
        assert!(bw >= 0.0 && !bw.is_nan(), "bandwidth must be non-negative");
        self.net.set_capacity(self.interconnect, bw);
    }

    /// Resets all cache state (between independent experiment repetitions).
    pub fn reset_caches(&mut self) {
        for server in &mut self.servers {
            if let Some(cache) = &mut server.cache {
                cache.reset();
            }
        }
        self.refresh_capacities();
    }

    fn per_server_ingest(&mut self) -> Vec<f64> {
        let mut ingest = vec![0.0; self.servers.len()];
        let flows: Vec<(usize, FlowId)> = self
            .transfers
            .values()
            .flat_map(|t| {
                t.flows
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done)
                    .map(|(idx, s)| (idx, s.flow))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (idx, flow) in flows {
            ingest[idx] += self.net.rate(flow);
        }
        ingest
    }

    /// Drains flow completions out of the network and folds them into
    /// their transfers: `O(completions · log n)`, no transfer scan.
    fn collect_completions(&mut self) {
        let done = self.net.drain_completed();
        if done.is_empty() {
            return;
        }
        for flow in done {
            self.finish_flow(flow);
        }
        self.refresh_capacities();
    }

    /// Retires one completed flow: marks its server slot done, releases
    /// its stream, and completes the owning transfer when it was the last.
    fn finish_flow(&mut self, flow: FlowId) {
        let Some((tid, idx)) = self.flow_index.remove(&flow) else {
            return;
        };
        let now = self.now;
        let Some(tr) = self.transfers.get_mut(&tid) else {
            return;
        };
        let slot = &mut tr.flows[idx];
        if slot.done {
            return;
        }
        slot.done = true;
        tr.pending -= 1;
        tr.done_bytes += tr.per_server_bytes;
        self.net.remove_flow(flow);
        if !tr.paused {
            self.servers[idx].remove_stream(tr.app);
        }
        if tr.pending == 0 {
            tr.completed = Some(now);
            tr.done_bytes = tr.bytes;
            *self.bytes_completed.entry(tr.app).or_insert(0.0) += tr.bytes;
            // A transfer can only finish through unpaused flows, so it
            // still counts as active here.
            let count = self.active_counts.entry(tr.app).or_insert(0);
            *count = count.saturating_sub(1);
            self.newly_done.push((now, tid));
        }
    }

    fn refresh_capacities(&mut self) {
        for server in &self.servers {
            self.net
                .set_capacity(server.constraint, server.effective_bandwidth(&self.cfg));
        }
    }
}

/// The file system is the *continuous* half of a coupled simulation: a
/// [`simcore::Kernel`] owns the clock and drives the in-flight transfers
/// (and cache state) through this impl, interleaved with its discrete
/// events. The kernel's clock and [`Pfs::now`] advance in lockstep — both
/// are integer-tick, so no drift is possible.
impl simcore::kernel::Medium for Pfs {
    fn time_to_next(&mut self) -> Option<SimDuration> {
        let now = self.now;
        self.next_event_time().map(|t| t.saturating_since(now))
    }

    fn advance(&mut self, dt: SimDuration) {
        let target = self.now + dt;
        self.advance_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, SharePolicy};

    fn simple_cfg() -> PfsConfig {
        PfsConfig {
            num_servers: 4,
            server_bw: 100.0e6, // 100 MB/s per server → 400 MB/s aggregate
            cache: None,
            interference_gamma: 1.0,
            process_link_bw: 10.0e6,
            interconnect_bw: f64::INFINITY,
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_write_takes_bytes_over_bandwidth() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // 400 MB from 128 procs: client cap = 1.28 GB/s, server cap = 400 MB/s
        // → bottleneck 400 MB/s → 1 second.
        let tr = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.5));
        assert!(!pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        assert!((p.transferred - 200.0e6).abs() < 1.0e6);
        pfs.advance_to(t(1.01));
        assert!(pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        assert!(p.completed.unwrap() <= t(1.01));
        assert!(p.completed.unwrap() >= t(0.99));
        assert_eq!(pfs.poll_completed(), vec![tr]);
        assert!(pfs.poll_completed().is_empty(), "reported only once");
    }

    #[test]
    fn zero_capacity_interconnect_starves_transfers_and_is_reported() {
        for sharing in [SharingModel::MaxMin, SharingModel::FairFast] {
            let cfg = PfsConfig {
                // Finite and binding, so both media route flows through it.
                interconnect_bw: 50.0e6,
                ..simple_cfg()
            };
            let mut pfs = Pfs::with_medium(cfg, sharing).unwrap();
            let tr = pfs.submit_write(AppId(0), 100.0e6, 128);
            assert!(pfs.stalled_transfers().is_empty(), "{sharing:?}: healthy");
            pfs.throttle_interconnect(0.0);
            pfs.advance_to(t(1.0));
            assert!(!pfs.is_complete(tr), "{sharing:?}: cannot progress");
            assert_eq!(
                pfs.stalled_transfers(),
                vec![(AppId(0), tr)],
                "{sharing:?}: the starved transfer is reported"
            );
            assert!(
                pfs.next_event_time().is_none(),
                "{sharing:?}: a starved transfer never becomes an event"
            );
        }
    }

    #[test]
    fn small_app_is_limited_by_its_client_links() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // 8 procs × 10 MB/s = 80 MB/s client-side cap, well below the
        // 400 MB/s the file system could deliver.
        let tr = pfs.submit_write(AppId(0), 80.0e6, 8);
        pfs.advance_to(t(1.05));
        assert!(pfs.is_complete(tr));
        let p = pfs.progress(tr).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!((dur - 1.0).abs() < 0.05, "duration was {dur}");
    }

    #[test]
    fn two_equal_apps_share_and_both_slow_down() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.advance_to(t(2.1));
        assert!(pfs.is_complete(a) && pfs.is_complete(b));
        let ta = pfs.progress(a).unwrap().completed.unwrap().as_secs();
        let tb = pfs.progress(b).unwrap().completed.unwrap().as_secs();
        // Each would take 1 s alone; sharing makes both take ~2 s.
        assert!((ta - 2.0).abs() < 0.05, "ta = {ta}");
        assert!((tb - 2.0).abs() < 0.05, "tb = {tb}");
    }

    #[test]
    fn big_app_crowds_out_small_app() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        // Big app: 360 procs; small app: 40 procs. Server bandwidth is
        // shared 9:1, so the small app's 40 MB write that would take 0.1 s
        // alone (client-limited at 400MB/s? no: 40procs*10MB/s=400MB/s,
        // server 400MB/s → 0.1 s) now gets only ~40 MB/s.
        let big = pfs.submit_write(AppId(0), 3600.0e6, 360);
        let small = pfs.submit_write(AppId(1), 40.0e6, 40);
        pfs.advance_to(t(30.0));
        assert!(pfs.is_complete(small));
        let p = pfs.progress(small).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!(
            dur > 0.5,
            "small app should be heavily slowed down, got {dur}"
        );
        assert!(pfs.is_complete(big));
    }

    #[test]
    fn locality_penalty_makes_interference_worse_than_serial() {
        let mut cfg = simple_cfg();
        cfg.interference_gamma = 0.7;
        let mut pfs = Pfs::new(cfg).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.advance_to(t(10.0));
        let ta = pfs.progress(a).unwrap().completed.unwrap().as_secs();
        let tb = pfs.progress(b).unwrap().completed.unwrap().as_secs();
        // Serialized, the pair would need 2 s. With γ=0.7 both finish
        // later than that.
        assert!(ta > 2.2 && tb > 2.2, "ta={ta} tb={tb}");
    }

    #[test]
    fn pause_and_resume_freeze_progress() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.5));
        pfs.pause(a);
        let before = pfs.progress(a).unwrap().transferred;
        pfs.advance_to(t(5.0));
        let after = pfs.progress(a).unwrap().transferred;
        assert!((before - after).abs() < 1.0);
        assert!(!pfs.app_is_active(AppId(0)));
        pfs.resume(a);
        assert!(pfs.app_is_active(AppId(0)));
        pfs.advance_to(t(5.6));
        assert!(pfs.is_complete(a));
    }

    #[test]
    fn paused_app_frees_bandwidth_for_the_other() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let b = pfs.submit_write(AppId(1), 400.0e6, 128);
        pfs.pause(a);
        pfs.advance_to(t(1.05));
        assert!(pfs.is_complete(b), "b should finish in ~1 s with a paused");
        assert!(!pfs.is_complete(a));
        let _ = a;
    }

    #[test]
    fn cancel_removes_transfer() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 400.0e6, 128);
        pfs.advance_to(t(0.2));
        pfs.cancel(a);
        assert!(pfs.progress(a).is_none());
        assert!(!pfs.app_is_active(AppId(0)));
        assert!(pfs.active_apps().is_empty());
    }

    #[test]
    fn cache_absorbs_small_bursts_then_thrashes() {
        let cfg = PfsConfig {
            num_servers: 1,
            server_bw: 10.0e6,
            cache: Some(CacheConfig {
                capacity_bytes: 50.0e6,
                absorb_bw: 100.0e6,
                drain_bw: 10.0e6,
            }),
            interference_gamma: 1.0,
            process_link_bw: 100.0e6,
            interconnect_bw: f64::INFINITY,
            share_policy: SharePolicy::ProportionalToProcesses,
        };
        let mut pfs = Pfs::new(cfg).unwrap();
        // A 30 MB burst fits in the cache: completes at ~cache speed.
        let a = pfs.submit_write(AppId(0), 30.0e6, 4);
        pfs.advance_to(t(1.0));
        assert!(pfs.is_complete(a));
        let dur_a = {
            let p = pfs.progress(a).unwrap();
            p.completed.unwrap().saturating_since(p.started).as_secs()
        };
        assert!(dur_a < 0.5, "cached burst should be fast, got {dur_a}");

        // A 200 MB burst (cache still holding ~27 MB) saturates the cache
        // and ends up at disk speed.
        let b = pfs.submit_write(AppId(0), 200.0e6, 4);
        pfs.advance_to(t(60.0));
        assert!(pfs.is_complete(b));
        let p = pfs.progress(b).unwrap();
        let dur_b = p.completed.unwrap().saturating_since(p.started).as_secs();
        assert!(
            dur_b > 10.0,
            "saturating burst should be disk-bound, got {dur_b}"
        );
    }

    #[test]
    fn next_event_time_tracks_completions() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        assert!(pfs.next_event_time().is_none());
        let _a = pfs.submit_write(AppId(0), 400.0e6, 128);
        let next = pfs.next_event_time().unwrap();
        assert!((next.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn bytes_completed_accumulates_per_app() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        pfs.submit_write(AppId(0), 100.0e6, 64);
        pfs.submit_write(AppId(0), 50.0e6, 64);
        pfs.submit_write(AppId(1), 25.0e6, 64);
        pfs.advance_to(t(5.0));
        assert!((pfs.bytes_completed(AppId(0)) - 150.0e6).abs() < 1.0);
        assert!((pfs.bytes_completed(AppId(1)) - 25.0e6).abs() < 1.0);
        assert_eq!(pfs.bytes_completed(AppId(9)), 0.0);
    }

    #[test]
    fn zero_byte_write_completes_immediately() {
        let mut pfs = Pfs::new(simple_cfg()).unwrap();
        let a = pfs.submit_write(AppId(0), 0.0, 16);
        assert!(pfs.is_complete(a));
        assert_eq!(pfs.poll_completed(), vec![a]);
    }

    #[test]
    fn equal_share_policy_protects_small_app() {
        let mut cfg = simple_cfg();
        cfg.share_policy = SharePolicy::EqualPerApplication;
        let mut pfs = Pfs::new(cfg).unwrap();
        let _big = pfs.submit_write(AppId(0), 3600.0e6, 360);
        let small = pfs.submit_write(AppId(1), 40.0e6, 40);
        pfs.advance_to(t(30.0));
        let p = pfs.progress(small).unwrap();
        let dur = p.completed.unwrap().saturating_since(p.started).as_secs();
        // With per-application fairness the small app gets 200 MB/s and
        // finishes in ~0.2-0.4 s instead of several seconds.
        assert!(dur < 0.5, "equal-share small app took {dur}");
    }
}
