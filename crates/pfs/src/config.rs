//! Parallel file system configuration and platform presets.
//!
//! The presets approximate the two experimental platforms of the paper
//! (Section IV-A): Argonne's BG/P *Surveyor* with a 4-server PVFS2 volume,
//! and the Grid'5000 Rennes/Nancy clusters with a 12-/35-server
//! OrangeFS/PVFS deployment over InfiniBand. Absolute bandwidth numbers are
//! calibrated so that the *shape* of the published figures is reproduced
//! (see `EXPERIMENTS.md`); they are not measurements of the original
//! hardware.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// How a storage server shares its bandwidth between concurrent clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharePolicy {
    /// Bandwidth is shared proportionally to the number of processes
    /// (request streams) each application has in flight. This models a
    /// plain first-in-first-out network request scheduler and is the
    /// default: it is what makes a small application suffer a large
    /// interference factor when competing with a big one (Fig. 4, Fig. 6).
    ProportionalToProcesses,
    /// Bandwidth is shared equally between applications regardless of their
    /// size, modelling an application-aware fair scheduler (used in
    /// ablation studies).
    EqualPerApplication,
}

/// Write-back cache configuration for a storage server (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Dirty-data capacity in bytes. Bursts smaller than this are absorbed
    /// at `absorb_bw`.
    pub capacity_bytes: f64,
    /// Ingest bandwidth while the cache has room (bytes/s); typically the
    /// server's network bandwidth.
    pub absorb_bw: f64,
    /// Background drain (disk) bandwidth in bytes/s.
    pub drain_bw: f64,
}

/// Full parallel file system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfsConfig {
    /// Number of storage servers (files are striped across all of them).
    pub num_servers: usize,
    /// Per-server disk bandwidth in bytes/s (steady-state write speed with a
    /// single well-formed request stream).
    pub server_bw: f64,
    /// Optional write-back cache per server. `None` models a deployment
    /// with caching disabled (as the paper did on Grid'5000 Rennes).
    pub cache: Option<CacheConfig>,
    /// Locality-breakage penalty γ ∈ (0, 1]: with `k` distinct applications
    /// concurrently accessing a server, the server's effective bandwidth is
    /// `server_bw × γ^(k−1)`. γ = 1 disables the penalty (ablation).
    pub interference_gamma: f64,
    /// Per-process client link bandwidth in bytes/s (compute-node NIC share
    /// of one process).
    pub process_link_bw: f64,
    /// Aggregate interconnect ceiling in bytes/s between compute nodes and
    /// the storage system (0 or infinite to disable).
    pub interconnect_bw: f64,
    /// How servers share bandwidth between concurrent applications.
    pub share_policy: SharePolicy,
}

impl PfsConfig {
    /// Validates the configuration, returning a typed error for the first
    /// problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_servers == 0 {
            return Err(ConfigError::NoServers);
        }
        if self.server_bw.is_nan() || self.server_bw <= 0.0 {
            return Err(ConfigError::NonPositive { field: "server_bw" });
        }
        if !(self.interference_gamma > 0.0 && self.interference_gamma <= 1.0) {
            return Err(ConfigError::GammaOutOfRange {
                gamma: self.interference_gamma,
            });
        }
        if self.process_link_bw.is_nan() || self.process_link_bw <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "process_link_bw",
            });
        }
        if self.interconnect_bw.is_nan() || self.interconnect_bw <= 0.0 {
            // Use f64::INFINITY to disable the interconnect ceiling.
            return Err(ConfigError::NonPositive {
                field: "interconnect_bw",
            });
        }
        if let Some(c) = &self.cache {
            if !(c.capacity_bytes > 0.0 && c.absorb_bw > 0.0 && c.drain_bw > 0.0) {
                return Err(ConfigError::NonPositive {
                    field: "cache parameters",
                });
            }
            if c.drain_bw > c.absorb_bw {
                return Err(ConfigError::CacheDrainExceedsAbsorb {
                    drain_bw: c.drain_bw,
                    absorb_bw: c.absorb_bw,
                });
            }
        }
        Ok(())
    }

    /// Total aggregate file system bandwidth (no cache, single application).
    pub fn aggregate_server_bw(&self) -> f64 {
        self.server_bw * self.num_servers as f64
    }

    /// Approximation of Argonne's *Surveyor* (one BG/P rack, 4-server PVFS2,
    /// caching not relied upon). Calibrated so that 2048 processes writing
    /// 32 MB each take on the order of 10–20 s, as in Fig. 7a.
    pub fn surveyor() -> Self {
        PfsConfig {
            num_servers: 4,
            server_bw: 1.0e9, // 1 GB/s per server, ~4 GB/s aggregate
            cache: None,
            interference_gamma: 0.85,
            // 2.5 MB/s injection per process: 1024-process applications are
            // client-limited (the Fig. 7b regime where interference is lower
            // than expected), 2048-process ones saturate the file system.
            process_link_bw: 2.5e6,
            interconnect_bw: 16.0e9, // tree network ceiling
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }

    /// Approximation of the Grid'5000 Rennes deployment (12-server OrangeFS
    /// on local disks, ext3, **caching disabled**), used for Figs. 2, 4, 6
    /// and 9.
    pub fn grid5000_rennes() -> Self {
        PfsConfig {
            num_servers: 12,
            server_bw: 70.0e6, // ~70 MB/s per local disk
            cache: None,
            interference_gamma: 0.85,
            process_link_bw: 12.0e6, // IB link share per process
            interconnect_bw: 10.0e9,
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }

    /// Approximation of the Grid'5000 Nancy deployment (35-server PVFS,
    /// **kernel caching enabled** in the storage backend), used for Fig. 3.
    pub fn grid5000_nancy() -> Self {
        PfsConfig {
            num_servers: 35,
            server_bw: 55.0e6,
            cache: Some(CacheConfig {
                capacity_bytes: 100.0e6, // dirty-page budget per server
                absorb_bw: 300.0e6,      // network-limited ingest
                drain_bw: 55.0e6,        // disk drain
            }),
            interference_gamma: 0.85,
            process_link_bw: 12.0e6,
            interconnect_bw: 10.0e9,
            share_policy: SharePolicy::ProportionalToProcesses,
        }
    }
}

impl Default for PfsConfig {
    fn default() -> Self {
        Self::grid5000_rennes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        PfsConfig::surveyor().validate().unwrap();
        PfsConfig::grid5000_rennes().validate().unwrap();
        PfsConfig::grid5000_nancy().validate().unwrap();
        PfsConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = PfsConfig {
            num_servers: 0,
            ..PfsConfig::default()
        };
        assert!(c.validate().is_err());

        let c = PfsConfig {
            server_bw: 0.0,
            ..PfsConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = PfsConfig {
            interference_gamma: 0.0,
            ..PfsConfig::default()
        };
        assert!(c.validate().is_err());
        c.interference_gamma = 1.5;
        assert!(c.validate().is_err());

        let c = PfsConfig {
            process_link_bw: -1.0,
            ..PfsConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = PfsConfig::grid5000_nancy();
        if let Some(cache) = &mut c.cache {
            cache.drain_bw = cache.absorb_bw * 2.0;
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn aggregate_bandwidth() {
        let c = PfsConfig {
            num_servers: 4,
            server_bw: 25.0,
            ..PfsConfig::default()
        };
        assert_eq!(c.aggregate_server_bw(), 100.0);
    }

    #[test]
    fn nancy_has_cache_rennes_does_not() {
        assert!(PfsConfig::grid5000_nancy().cache.is_some());
        assert!(PfsConfig::grid5000_rennes().cache.is_none());
        assert!(PfsConfig::surveyor().cache.is_none());
    }
}
