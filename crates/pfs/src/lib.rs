//! # pfs — simulated parallel file system
//!
//! A discrete-event model of the shared storage system the CALCioM paper
//! runs against (PVFS2 on BG/P *Surveyor*, OrangeFS/PVFS on Grid'5000).
//! Applications submit *atomic writes* that are striped across storage
//! servers; the servers share their bandwidth between concurrent request
//! streams, lose efficiency when streams from different applications are
//! interleaved (locality breakage), and may front a write-back cache that
//! thrashes when bursts from several applications coincide.
//!
//! Three effects from Section II of the paper emerge from this model:
//!
//! 1. **Both applications slow down under interference** (Fig. 2): the
//!    servers' bandwidth is finite and, with the locality-breakage penalty
//!    γ < 1, the compound finishes later than back-to-back execution.
//! 2. **Small applications suffer disproportionately** (Fig. 4, Fig. 6):
//!    bandwidth is shared per request stream, so an 8-process application
//!    competing with a 336-process one receives a tiny share.
//! 3. **Caching collapses under concurrent bursts** (Fig. 3): a burst that
//!    fits in the write-back cache completes at network speed, but two
//!    coinciding bursts saturate the cache and drop to disk speed.
//!
//! ## Quick example
//!
//! ```
//! use pfs::{AppId, Pfs, PfsConfig};
//! use simcore::SimTime;
//!
//! let mut fs = Pfs::new(PfsConfig::grid5000_rennes()).unwrap();
//! let write = fs.submit_write(AppId(0), 256.0e6, 336);
//! fs.advance_to(SimTime::from_secs(60.0));
//! assert!(fs.is_complete(write));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod filesystem;
pub mod server;

pub use cache::WriteBackCache;
pub use config::{CacheConfig, PfsConfig, SharePolicy};
pub use error::ConfigError;
pub use filesystem::{Pfs, TransferId, TransferProgress};
pub use server::ServerState;

use serde::{Deserialize, Serialize};

/// Identifier of an application (job) as seen by the storage system.
///
/// The same identifier is used by the `mpiio` layer and by CALCioM
/// coordinators, so that "who is interfering with whom" can be traced
/// through the whole stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub usize);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_id_display_and_ordering() {
        assert_eq!(format!("{}", AppId(3)), "app3");
        assert!(AppId(1) < AppId(2));
        assert_eq!(AppId(5), AppId(5));
    }
}
