//! Criterion benches: one group per paper figure.
//!
//! Each bench measures a representative slice of the corresponding
//! experiment (a single Δ-graph point, one periodic run, one strategy
//! comparison) so that `cargo bench` completes in minutes while still
//! exercising every code path the figure reproduction uses. The full-
//! resolution figures themselves are produced by the binaries in
//! `src/bin/` (see EXPERIMENTS.md).

use calciom::{
    AccessPattern, AppConfig, AppId, DynamicPolicy, EfficiencyMetric, Granularity, PfsConfig,
    Scenario, Session, Strategy, TimelineAggregator, TraceRecorder,
};
use criterion::{criterion_group, criterion_main, Criterion};
use iobench::{run_delta_sweep, run_periodic, DeltaSweepConfig, PeriodicConfig};
use simcore::SimDuration;
use std::hint::black_box;
use workloads::{generate, ConcurrencyDistribution, SyntheticTraceConfig};

const MB: f64 = 1.0e6;

fn equal_apps(procs: u32, mb_per_proc: f64) -> (AppConfig, AppConfig) {
    let pattern = AccessPattern::contiguous(mb_per_proc * MB);
    (
        AppConfig::new(AppId(0), "A", procs, pattern),
        AppConfig::new(AppId(1), "B", procs, pattern),
    )
}

fn delta_point(pfs: PfsConfig, a: AppConfig, b: AppConfig, strategy: Strategy, dt: f64) -> f64 {
    let cfg = DeltaSweepConfig::new(pfs, a, b, vec![dt])
        .with_strategy(strategy)
        .with_granularity(Granularity::Round);
    run_delta_sweep(&cfg).expect("sweep").points[0].b_io_time
}

fn bench_fig01_workload(c: &mut Criterion) {
    c.bench_function("fig01_trace_generation_and_concurrency", |bench| {
        bench.iter(|| {
            let trace = generate(&SyntheticTraceConfig {
                jobs: 2_000,
                ..Default::default()
            });
            let dist = ConcurrencyDistribution::from_trace(&trace);
            black_box(dist.mean())
        })
    });
}

fn bench_fig02_delta(c: &mut Criterion) {
    c.bench_function("fig02_equal_apps_delta_point", |bench| {
        let (a, b) = equal_apps(336, 16.0);
        bench.iter(|| {
            black_box(delta_point(
                PfsConfig::grid5000_rennes(),
                a.clone(),
                b.clone(),
                Strategy::Interfere,
                2.0,
            ))
        })
    });
}

fn bench_fig03_cache(c: &mut Criterion) {
    c.bench_function("fig03_periodic_writers_with_cache", |bench| {
        let writer = |id: usize, period: f64| {
            AppConfig::new(AppId(id), "w", 336, AccessPattern::contiguous(16.0 * MB))
                .with_periodic_phases(4, SimDuration::from_secs(period))
        };
        bench.iter(|| {
            let result = run_periodic(&PeriodicConfig {
                pfs: PfsConfig::grid5000_nancy(),
                app_a: writer(0, 10.0),
                app_b: Some(writer(1, 7.0)),
            })
            .expect("periodic run");
            black_box(result.a_min())
        })
    });
}

fn bench_fig04_size_sweep(c: &mut Criterion) {
    c.bench_function("fig04_small_vs_big_point", |bench| {
        let pattern = AccessPattern::contiguous(16.0 * MB);
        bench.iter(|| {
            let apps = vec![
                AppConfig::new(AppId(0), "A", 336, pattern),
                AppConfig::new(AppId(1), "B", 8, pattern),
            ];
            let report = Scenario::new(PfsConfig::grid5000_rennes(), apps)
                .run()
                .unwrap();
            black_box(report.app(AppId(1)).unwrap().first_phase().io_time())
        })
    });
}

fn bench_fig05_observed_session(c: &mut Criterion) {
    // The observer-overhead story: the same contended session unobserved
    // (NullObserver — the zero-cost default), folding a timeline, and
    // recording a full trace.
    let scenario = || {
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "A",
                720,
                AccessPattern::strided(2.0 * MB, 8),
            ))
            .app(
                AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(8.0 * MB))
                    .starting_at_secs(2.0),
            )
            .strategy(Strategy::Interrupt)
            .build()
            .unwrap()
    };
    let mut group = c.benchmark_group("fig05_observed_session");
    group.bench_function("null_observer", |bench| {
        let s = scenario();
        bench.iter(|| black_box(s.run().unwrap().makespan))
    });
    group.bench_function("timeline_aggregator", |bench| {
        let s = scenario();
        bench.iter(|| {
            let mut agg = TimelineAggregator::new();
            Session::new(&s).unwrap().execute_with(&mut agg).unwrap();
            black_box(agg.finish().intervals.len())
        })
    });
    group.bench_function("trace_recorder", |bench| {
        let s = scenario();
        bench.iter(|| {
            let mut recorder = TraceRecorder::for_scenario(&s);
            Session::new(&s)
                .unwrap()
                .execute_with(&mut recorder)
                .unwrap();
            black_box(recorder.into_trace().len())
        })
    });
    group.finish();
}

fn bench_fig06_unequal_delta(c: &mut Criterion) {
    c.bench_function("fig06_unequal_split_delta_point", |bench| {
        let pattern = AccessPattern::strided(2.0 * MB, 8);
        let a = AppConfig::new(AppId(0), "A", 744, pattern);
        let b = AppConfig::new(AppId(1), "B", 24, pattern);
        bench.iter(|| {
            black_box(delta_point(
                PfsConfig::grid5000_rennes(),
                a.clone(),
                b.clone(),
                Strategy::Interfere,
                5.0,
            ))
        })
    });
}

fn bench_fig07_fcfs(c: &mut Criterion) {
    c.bench_function("fig07_surveyor_fcfs_point", |bench| {
        let (a, b) = equal_apps(2048, 32.0);
        bench.iter(|| {
            black_box(delta_point(
                PfsConfig::surveyor(),
                a.clone(),
                b.clone(),
                Strategy::FcfsSerialize,
                4.0,
            ))
        })
    });
}

fn bench_fig08_collective(c: &mut Criterion) {
    c.bench_function("fig08_collective_buffering_point", |bench| {
        let pattern = AccessPattern::strided(1.0 * MB, 16);
        let a = AppConfig::new(AppId(0), "A", 2048, pattern);
        let b = AppConfig::new(AppId(1), "B", 2048, pattern);
        bench.iter(|| {
            black_box(delta_point(
                PfsConfig::surveyor(),
                a.clone(),
                b.clone(),
                Strategy::Interfere,
                5.0,
            ))
        })
    });
}

fn bench_fig09_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_policies");
    let pattern = AccessPattern::strided(2.0 * MB, 8);
    for (label, strategy) in [
        ("interfering", Strategy::Interfere),
        ("fcfs", Strategy::FcfsSerialize),
        ("interrupt", Strategy::Interrupt),
    ] {
        group.bench_function(label, |bench| {
            let a = AppConfig::new(AppId(0), "A", 744, pattern);
            let b = AppConfig::new(AppId(1), "B", 24, pattern);
            bench.iter(|| {
                black_box(delta_point(
                    PfsConfig::grid5000_rennes(),
                    a.clone(),
                    b.clone(),
                    strategy,
                    5.0,
                ))
            })
        });
    }
    group.finish();
}

fn bench_fig10_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_interruption_granularity");
    for (label, granularity) in [
        ("file_level", Granularity::File),
        ("round_level", Granularity::Round),
    ] {
        group.bench_function(label, |bench| {
            let pattern = AccessPattern::strided(4.0 * MB, 1);
            let a = AppConfig::new(AppId(0), "A", 2048, pattern).with_files(4);
            let b = AppConfig::new(AppId(1), "B", 2048, pattern).with_files(1);
            bench.iter(|| {
                let cfg =
                    DeltaSweepConfig::new(PfsConfig::surveyor(), a.clone(), b.clone(), vec![6.0])
                        .with_strategy(Strategy::Interrupt)
                        .with_granularity(granularity);
                black_box(run_delta_sweep(&cfg).unwrap().points[0].b_io_time)
            })
        });
    }
    group.finish();
}

fn bench_fig11_dynamic(c: &mut Criterion) {
    c.bench_function("fig11_dynamic_choice_point", |bench| {
        let pattern = AccessPattern::strided(4.0 * MB, 1);
        let a = AppConfig::new(AppId(0), "A", 2048, pattern).with_files(4);
        let b = AppConfig::new(AppId(1), "B", 2048, pattern).with_files(1);
        bench.iter(|| {
            let cfg = DeltaSweepConfig::new(PfsConfig::surveyor(), a.clone(), b.clone(), vec![6.0])
                .with_strategy(Strategy::Dynamic)
                .with_granularity(Granularity::File)
                .with_policy(DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted));
            black_box(run_delta_sweep(&cfg).unwrap().points[0].cpu_seconds_per_core)
        })
    });
}

fn bench_fig12_delay(c: &mut Criterion) {
    c.bench_function("fig12_bounded_delay_point", |bench| {
        let (a, b) = equal_apps(1024, 32.0);
        bench.iter(|| {
            black_box(delta_point(
                PfsConfig::surveyor(),
                a.clone(),
                b.clone(),
                Strategy::Delay { max_wait_secs: 4.0 },
                3.0,
            ))
        })
    });
}

fn bench_kernel_scaling(c: &mut Criterion) {
    // The scale acceptance of the kernel re-founding: no regression on the
    // paper-sized 2-app sessions, and sub-quadratic growth in session
    // wall-clock as the machine mix grows from N = 128 to N = 512. Each
    // iteration is one full `Session` (build + execute) over the very mix
    // `fig13_scale` plots, so the two trajectories stay comparable.
    let session = |n: usize, strategy: Strategy| {
        let scenario = calciom_bench::figures::fig13::mix(n).scenario(strategy);
        move || black_box(scenario.run().unwrap().makespan)
    };
    let mut group = c.benchmark_group("kernel_scaling");
    for (label, strategy) in [
        ("fcfs", Strategy::FcfsSerialize),
        ("interfering", Strategy::Interfere),
        ("dynamic", Strategy::Dynamic),
    ] {
        for n in [2usize, 128, 512] {
            group.bench_function(&format!("{label}_n{n}"), |bench| {
                let mut run = session(n, strategy);
                bench.iter(&mut run)
            });
        }
    }
    group.finish();
}

fn bench_policy_overhead(c: &mut Criterion) {
    // The cost of the open arbitration layer: every arbiter decision now
    // crosses a `Box<dyn ArbitrationPolicy>` instead of a `match` on the
    // closed enum. Each iteration drives one full request → yield →
    // release protocol round for 8 applications against the raw
    // `Arbiter`, isolating per-decision dispatch from the simulation
    // (compare against `kernel_scaling`'s fcfs/dynamic sessions for the
    // end-to-end view — the re-founding contract is no regression there).
    use calciom::arbitration::{PolicyRegistry, PolicySpec};
    use calciom::{Arbiter, IoInfo};

    let info = |app: usize| IoInfo {
        app: AppId(app),
        procs: 256,
        files_total: 1,
        rounds_total: 4,
        bytes_total: 1.0e9,
        bytes_remaining: 0.5e9,
        est_alone_total_secs: 10.0,
        est_alone_remaining_secs: 5.0,
        pfs_share: 1.0,
        granularity: Granularity::Round,
    };
    let protocol_round = |arb: &mut Arbiter| {
        for i in 0..8usize {
            arb.update_info(info(i));
            arb.request_access(AppId(i));
        }
        for _ in 0..8 {
            if let Some(&a) = arb.active().first() {
                arb.yield_point(a);
            }
            if let Some(&a) = arb.active().first() {
                arb.release(a);
            }
        }
        black_box(arb.message_count())
    };

    let mut group = c.benchmark_group("policy_overhead");
    // Boxed built-ins (the legacy strategies through the trait)…
    for strategy in [
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
        Strategy::Dynamic,
    ] {
        group.bench_function(&format!("arbiter_{}", strategy.label()), |bench| {
            bench.iter(|| {
                let mut arb = Arbiter::new(
                    strategy,
                    DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
                );
                protocol_round(&mut arb)
            })
        });
    }
    // …a registry-built extended policy…
    group.bench_function("arbiter_rr(10s)", |bench| {
        let registry = PolicyRegistry::standard();
        let spec = PolicySpec::with_arg("rr", "10s");
        bench.iter(|| {
            let mut arb = Arbiter::with_policy(
                registry
                    .build(&spec, &DynamicPolicy::default())
                    .expect("registered"),
            );
            protocol_round(&mut arb)
        })
    });
    // …and the raw cost model alone, as the dispatch-free baseline the
    // dynamic arbiter adds its trait indirection on top of.
    group.bench_function("dynamic_decide_baseline", |bench| {
        let policy = DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted);
        let requester = info(1);
        let accessors = vec![info(0)];
        bench.iter(|| {
            let mut last = None;
            for _ in 0..32 {
                last = Some(policy.decide(black_box(&requester), black_box(&accessors)));
            }
            black_box(last)
        })
    });
    group.finish();
}

criterion_group!(
    name = kernel;
    // One full machine-scale session per iteration: a small sample keeps
    // the group to seconds while the per-N means still expose the
    // growth curve.
    config = Criterion::default().sample_size(5);
    targets = bench_kernel_scaling
);

criterion_group!(
    name = policy;
    // Micro-scale protocol rounds: cheap enough for a larger sample.
    config = Criterion::default().sample_size(20);
    targets = bench_policy_overhead
);

criterion_group!(
    name = figures;
    // Each iteration is a full simulated scenario (milliseconds); a small
    // sample keeps `cargo bench --workspace` to a few minutes while still
    // exercising every figure's code path.
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig01_workload,
        bench_fig02_delta,
        bench_fig03_cache,
        bench_fig04_size_sweep,
        bench_fig05_observed_session,
        bench_fig06_unequal_delta,
        bench_fig07_fcfs,
        bench_fig08_collective,
        bench_fig09_policies,
        bench_fig10_granularity,
        bench_fig11_dynamic,
        bench_fig12_delay
);
criterion_main!(figures, kernel, policy);
