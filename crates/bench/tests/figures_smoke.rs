//! Smoke test over every figure reproduction: each experiment registered
//! in the standard [`Registry`] must run (in quick mode) without error and
//! produce non-empty, finite series — the invariant the `src/bin/fig*`
//! binaries rely on when they print tables.

use calciom_bench::Registry;

#[test]
fn every_registered_experiment_produces_finite_nonempty_series() {
    let registry = Registry::standard();
    assert!(
        registry.len() >= 15,
        "expected every fig*/sec2b/ablation experiment to be registered, got {}",
        registry.len()
    );
    let results = registry.run_all(true).expect("every experiment runs");
    assert_eq!(results.len(), registry.len());
    for (name, out) in results {
        assert!(!out.id.is_empty(), "{name}: empty figure id");
        assert!(!out.figures.is_empty(), "{name}: no panels produced");
        for fig in &out.figures {
            assert!(
                !fig.series.is_empty(),
                "{name} / {}: panel has no series",
                fig.title
            );
            for series in &fig.series {
                assert!(
                    !series.points.is_empty(),
                    "{name} / {} / {}: series has no points",
                    fig.title,
                    series.label
                );
                for &(x, y) in &series.points {
                    assert!(
                        x.is_finite() && y.is_finite(),
                        "{name} / {} / {}: non-finite point ({x}, {y})",
                        fig.title,
                        series.label
                    );
                }
            }
        }
        // The rendered table is what the binaries print; it must be
        // non-empty and carry the figure id.
        let rendered = out.render();
        assert!(rendered.contains(&out.id), "{name}: render lost the id");
    }
}

#[test]
fn experiments_are_runnable_by_name() {
    let registry = Registry::standard();
    let out = registry
        .get("fig02_delta_equal")
        .expect("fig02 is registered")
        .run(true)
        .expect("fig02 runs");
    assert!(out.id.contains("Figure 2"));
    assert!(registry.get("no_such_experiment").is_none());
}

#[test]
fn quick_mode_is_a_reduced_sweep_not_a_different_experiment() {
    // Quick mode must keep every panel and curve of the full experiment —
    // only the x resolution may drop. Checked on one representative figure
    // (fig02) to keep the smoke suite fast.
    let quick = calciom_bench::figures::fig02::run(true).unwrap();
    assert!(!quick.figures.is_empty());
    for fig in &quick.figures {
        for series in &fig.series {
            assert!(
                series.points.len() >= 2,
                "quick sweep should keep ≥2 points"
            );
        }
    }
}
