//! Runs the flat-vs-hierarchical arbitration cost study (M-machine
//! cluster mixes over one shared PFS) through the experiment registry.
//! Pass `--quick` for the reduced CI sweep (M ≤ 4, exact medium); the
//! full run compares the topologies at M ∈ {2, 8, 32} — 10 240
//! applications at M = 32 — on the virtual-time medium.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig15_cluster")
}
