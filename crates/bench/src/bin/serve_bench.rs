//! Closed-loop throughput benchmark for `calciom-serve`.
//!
//! Boots the HTTP service in-process on an ephemeral port, then drives
//! it with N client threads × M requests each, every request POSTing
//! the same seeded [`MachineMix`] scenario to `/v1/run`. Closed loop:
//! each client issues its next request only after the previous response
//! arrives, so the measured rate is end-to-end service throughput
//! (parse → simulate/cache → serialize → TCP), not raw socket churn.
//!
//! Prints human-readable lines plus a `note: serve-json: {...}` line CI
//! extracts into the `BENCH_serve.json` artifact.
//!
//! `--print-scenario` instead writes the scenario document to stdout —
//! the CI smoke step uses it to produce a request body for `curl`.

use serve::{client, start, BufferLog, ServeConfig};
use std::fmt;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use workloads::MachineMix;

/// Argument errors for this binary's flag vocabulary (distinct from the
/// figure binaries' `cli::FlagError`).
#[derive(Debug)]
enum ArgError {
    /// A flag that takes a value appeared at the end of the stream.
    MissingValue(&'static str),
    /// A value that should have been a number.
    NotANumber(String),
    /// A flag no entry point knows.
    UnknownFlag(String),
    /// A count flag set to zero.
    ZeroCount,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::NotANumber(value) => write!(f, "`{value}` is not a number"),
            ArgError::UnknownFlag(flag) => write!(
                f,
                "unknown argument `{flag}` (expected --quick, --clients N, \
                 --requests M, --apps N, --seed S, --print-scenario)"
            ),
            ArgError::ZeroCount => {
                write!(f, "--clients, --requests and --apps must be positive")
            }
        }
    }
}

impl std::error::Error for ArgError {}

struct Options {
    clients: usize,
    requests: usize,
    apps: usize,
    seed: u64,
    print_scenario: bool,
}

impl Options {
    fn parse(args: impl Iterator<Item = String>) -> Result<Options, ArgError> {
        let mut opts = Options {
            clients: 8,
            requests: 50,
            apps: 16,
            seed: 2014,
            print_scenario: false,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &'static str| args.next().ok_or(ArgError::MissingValue(name));
            match arg.as_str() {
                "--quick" => {
                    opts.clients = 4;
                    opts.requests = 25;
                    opts.apps = 8;
                }
                "--clients" => opts.clients = parse_num(&value("--clients")?)?,
                "--requests" => opts.requests = parse_num(&value("--requests")?)?,
                "--apps" => opts.apps = parse_num(&value("--apps")?)?,
                "--seed" => opts.seed = parse_num(&value("--seed")?)?,
                "--print-scenario" => opts.print_scenario = true,
                other => return Err(ArgError::UnknownFlag(other.to_string())),
            }
        }
        if opts.clients == 0 || opts.requests == 0 || opts.apps == 0 {
            return Err(ArgError::ZeroCount);
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, ArgError> {
    s.parse().map_err(|_| ArgError::NotANumber(s.to_string()))
}

fn scenario_text(opts: &Options) -> String {
    let mix = MachineMix {
        apps: opts.apps,
        seed: opts.seed,
        ..MachineMix::default()
    };
    mix.scenario(calciom::Strategy::FcfsSerialize).to_text()
}

fn percentile_us(sorted: &[u128], pct: usize) -> u128 {
    let idx = (sorted.len() - 1) * pct / 100;
    sorted[idx]
}

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("serve-bench: {msg}");
            return ExitCode::from(2);
        }
    };
    let body = Arc::new(scenario_text(&opts));
    if opts.print_scenario {
        print!("{body}");
        return ExitCode::SUCCESS;
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let handle = match start(config, Box::new(BufferLog::new())) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve-bench: cannot boot server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();

    println!(
        "serve-bench: {} clients × {} requests, MachineMix(apps={}, seed={}) → /v1/run",
        opts.clients, opts.requests, opts.apps, opts.seed
    );

    let started = Instant::now();
    let clients: Vec<_> = (0..opts.clients)
        .map(|_| {
            let body = Arc::clone(&body);
            let requests = opts.requests;
            std::thread::spawn(move || {
                let mut latencies_us = Vec::with_capacity(requests);
                let mut failures = 0usize;
                let mut reference: Option<Vec<u8>> = None;
                for _ in 0..requests {
                    let sent = Instant::now();
                    match client::post(addr, "/v1/run", body.as_bytes()) {
                        Ok(reply) if reply.status == 200 => {
                            latencies_us.push(sent.elapsed().as_micros());
                            // Every response in the whole run must be
                            // byte-identical — the service's core contract.
                            match &reference {
                                Some(first) if *first != reply.body => failures += 1,
                                Some(_) => {}
                                None => reference = Some(reply.body),
                            }
                        }
                        Ok(_) | Err(_) => failures += 1,
                    }
                }
                (latencies_us, failures)
            })
        })
        .collect();

    let mut latencies_us = Vec::with_capacity(opts.clients * opts.requests);
    let mut failures = 0usize;
    for client in clients {
        let (lat, fail) = client.join().expect("client thread");
        latencies_us.extend(lat);
        failures += fail;
    }
    let wall = started.elapsed();

    let total = opts.clients * opts.requests;
    let hits = handle.service().cache().hits();
    let misses = handle.service().cache().misses();
    handle.shutdown();

    if failures > 0 || latencies_us.is_empty() {
        eprintln!("serve-bench: {failures} of {total} requests failed");
        return ExitCode::FAILURE;
    }
    latencies_us.sort_unstable();
    let rps = total as f64 / wall.as_secs_f64();
    let p50 = percentile_us(&latencies_us, 50);
    let p99 = percentile_us(&latencies_us, 99);

    println!(
        "serve-bench: {} requests in {:.3} s → {:.0} req/s (closed loop)",
        total,
        wall.as_secs_f64(),
        rps
    );
    println!("serve-bench: latency p50 = {p50} µs, p99 = {p99} µs");
    println!(
        "serve-bench: response cache {hits} hits / {misses} misses over {} lookups",
        hits + misses
    );
    println!(
        "note: serve-json: {{\"clients\":{},\"requests_per_client\":{},\"apps\":{},\
         \"seed\":{},\"total_requests\":{},\"wall_ms\":{},\"rps\":{:.1},\
         \"p50_us\":{},\"p99_us\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
        opts.clients,
        opts.requests,
        opts.apps,
        opts.seed,
        total,
        wall.as_millis(),
        rps,
        p50,
        p99,
        hits,
        misses
    );
    ExitCode::SUCCESS
}
