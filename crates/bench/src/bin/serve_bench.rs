//! Throughput benchmark for `calciom-serve`: closed-loop (one
//! connection per request) versus keep-alive (persistent connections,
//! optionally pipelined), side by side.
//!
//! Boots the HTTP service in-process on an ephemeral port, then drives
//! it with POSTs of the same seeded [`MachineMix`] scenario to
//! `/v1/run`. Two phases, both closed-loop in the queueing sense (a
//! client never has more than `--pipeline` requests outstanding):
//!
//! * **closed-loop** — `--clients` threads × `--requests` each, a fresh
//!   TCP connection per request: the pre-keep-alive baseline
//!   (connect → request → response → close).
//! * **keep-alive** — `--connections` threads, each pumping
//!   `--requests` requests through one persistent connection with up to
//!   `--pipeline` outstanding. Reports requests per connection and
//!   cold- (first exchange, including connect) versus warm-connection
//!   latency percentiles.
//!
//! The first phase warms the response cache, so both phases measure the
//! HTTP front end on a cached workload — the protocol overhead, not the
//! simulator. Prints human-readable lines plus a `note: serve-json:
//! {...}` line CI extracts into the `BENCH_serve.json` artifact; the
//! keep-alive object carries `speedup_vs_closed_loop`, which
//! `ci/check_serve_regression.py` gates.
//!
//! `--print-scenario` instead writes the scenario document to stdout —
//! the CI smoke step uses it to produce a request body for `curl`.

use serve::client::{self, Conn};
use serve::{start, BufferLog, ServeConfig};
use std::collections::VecDeque;
use std::fmt;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use workloads::MachineMix;

/// Argument errors for this binary's flag vocabulary (distinct from the
/// figure binaries' `cli::FlagError`).
#[derive(Debug)]
enum ArgError {
    /// A flag that takes a value appeared at the end of the stream.
    MissingValue(&'static str),
    /// A value that should have been a number.
    NotANumber(String),
    /// A flag no entry point knows.
    UnknownFlag(String),
    /// A count flag set to zero.
    ZeroCount,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::NotANumber(value) => write!(f, "`{value}` is not a number"),
            ArgError::UnknownFlag(flag) => write!(
                f,
                "unknown argument `{flag}` (expected --quick, --clients N, \
                 --requests M, --apps N, --seed S, --keep-alive, --closed-loop, \
                 --connections N, --pipeline D, --print-scenario)"
            ),
            ArgError::ZeroCount => {
                write!(
                    f,
                    "--clients, --requests, --apps, --connections and --pipeline must be positive"
                )
            }
        }
    }
}

impl std::error::Error for ArgError {}

struct Options {
    clients: usize,
    requests: usize,
    apps: usize,
    seed: u64,
    /// Keep-alive connections (defaults to `clients`).
    connections: Option<usize>,
    /// Max outstanding pipelined requests per keep-alive connection.
    pipeline: usize,
    run_closed_loop: bool,
    run_keep_alive: bool,
    print_scenario: bool,
}

impl Options {
    fn parse(args: impl Iterator<Item = String>) -> Result<Options, ArgError> {
        let mut opts = Options {
            clients: 8,
            requests: 100,
            apps: 8,
            seed: 2014,
            connections: None,
            pipeline: 16,
            run_closed_loop: true,
            run_keep_alive: true,
            print_scenario: false,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &'static str| args.next().ok_or(ArgError::MissingValue(name));
            match arg.as_str() {
                "--quick" => {
                    opts.clients = 4;
                    opts.requests = 50;
                    opts.apps = 4;
                }
                "--clients" => opts.clients = parse_num(&value("--clients")?)?,
                "--requests" => opts.requests = parse_num(&value("--requests")?)?,
                "--apps" => opts.apps = parse_num(&value("--apps")?)?,
                "--seed" => opts.seed = parse_num(&value("--seed")?)?,
                "--connections" => opts.connections = Some(parse_num(&value("--connections")?)?),
                "--pipeline" => opts.pipeline = parse_num(&value("--pipeline")?)?,
                "--keep-alive" => {
                    opts.run_closed_loop = false;
                    opts.run_keep_alive = true;
                }
                "--closed-loop" => {
                    opts.run_closed_loop = true;
                    opts.run_keep_alive = false;
                }
                "--print-scenario" => opts.print_scenario = true,
                other => return Err(ArgError::UnknownFlag(other.to_string())),
            }
        }
        if opts.clients == 0
            || opts.requests == 0
            || opts.apps == 0
            || opts.pipeline == 0
            || opts.connections == Some(0)
        {
            return Err(ArgError::ZeroCount);
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, ArgError> {
    s.parse().map_err(|_| ArgError::NotANumber(s.to_string()))
}

fn scenario_text(opts: &Options) -> String {
    let mix = MachineMix {
        apps: opts.apps,
        seed: opts.seed,
        ..MachineMix::default()
    };
    mix.scenario(calciom::Strategy::FcfsSerialize).to_text()
}

fn percentile_us(sorted: &[u128], pct: usize) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * pct / 100;
    sorted[idx]
}

/// One phase's aggregate numbers.
struct Phase {
    total: usize,
    wall_ms: u128,
    rps: f64,
    failures: usize,
}

/// Closed loop: a fresh connection per request.
fn closed_loop_phase(addr: SocketAddr, body: &Arc<String>, opts: &Options) -> (Phase, Vec<u128>) {
    let started = Instant::now();
    let clients: Vec<_> = (0..opts.clients)
        .map(|_| {
            let body = Arc::clone(body);
            let requests = opts.requests;
            std::thread::spawn(move || {
                let mut latencies_us = Vec::with_capacity(requests);
                let mut failures = 0usize;
                let mut reference: Option<Vec<u8>> = None;
                for _ in 0..requests {
                    let sent = Instant::now();
                    match client::post(addr, "/v1/run", body.as_bytes()) {
                        Ok(reply) if reply.status == 200 => {
                            latencies_us.push(sent.elapsed().as_micros());
                            // Every response in the whole run must be
                            // byte-identical — the service's core contract.
                            match &reference {
                                Some(first) if *first != reply.body => failures += 1,
                                Some(_) => {}
                                None => reference = Some(reply.body),
                            }
                        }
                        Ok(_) | Err(_) => failures += 1,
                    }
                }
                (latencies_us, failures)
            })
        })
        .collect();

    let mut latencies_us = Vec::new();
    let mut failures = 0usize;
    for client in clients {
        let (lat, fail) = client.join().expect("client thread");
        latencies_us.extend(lat);
        failures += fail;
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    let total = opts.clients * opts.requests;
    (
        Phase {
            total,
            wall_ms: wall.as_millis(),
            rps: total as f64 / wall.as_secs_f64(),
            failures,
        },
        latencies_us,
    )
}

/// Per-thread keep-alive results.
struct KeepAliveClient {
    cold_us: Vec<u128>,
    warm_us: Vec<u128>,
    connections_used: usize,
    failures: usize,
}

/// One persistent connection pumping `requests` exchanges with up to
/// `depth` outstanding. Reconnects if the server closes (request cap);
/// the first exchange on each connection (including its connect) counts
/// as cold.
fn keep_alive_client(
    addr: SocketAddr,
    body: &str,
    requests: usize,
    depth: usize,
) -> KeepAliveClient {
    let mut result = KeepAliveClient {
        cold_us: Vec::new(),
        warm_us: Vec::new(),
        connections_used: 0,
        failures: 0,
    };
    let mut reference: Option<Vec<u8>> = None;
    let mut completed = 0usize;
    let mut issued;

    'outer: while completed < requests {
        let connect_started = Instant::now();
        let Ok(mut conn) = Conn::connect(addr) else {
            result.failures += requests - completed;
            return result;
        };
        result.connections_used += 1;
        let connect_us = connect_started.elapsed().as_micros();
        let mut fresh = true;
        let mut sent_at: VecDeque<Instant> = VecDeque::new();
        // On a reconnect, requests that were outstanding on the closed
        // connection are re-issued.
        issued = completed;

        loop {
            // Refill in bursts: one buffered write per batch, not one
            // syscall per request (half-window hysteresis keeps the
            // pipe full without a syscall per completion).
            if issued < requests && sent_at.len() <= depth / 2 {
                let batch = depth.saturating_sub(sent_at.len()).min(requests - issued);
                if batch > 0
                    && conn
                        .send_repeated("POST", "/v1/run", &[], body.as_bytes(), batch)
                        .is_ok()
                {
                    let now = Instant::now();
                    for _ in 0..batch {
                        sent_at.push_back(now);
                    }
                    issued += batch;
                }
            }
            if sent_at.is_empty() {
                break 'outer; // everything completed
            }
            match conn.recv() {
                Ok(reply) if reply.status == 200 => {
                    let latency = sent_at
                        .pop_front()
                        .map(|t| t.elapsed().as_micros())
                        .unwrap_or(0);
                    if fresh {
                        result.cold_us.push(latency + connect_us);
                        fresh = false;
                    } else {
                        result.warm_us.push(latency);
                    }
                    completed += 1;
                    let capped = reply.closes();
                    match &reference {
                        Some(first) if *first != reply.body => result.failures += 1,
                        Some(_) => {}
                        None => reference = Some(reply.body),
                    }
                    if capped {
                        continue 'outer; // server capped the connection
                    }
                }
                Ok(_) | Err(_) => {
                    result.failures += 1;
                    continue 'outer; // reconnect and re-issue
                }
            }
        }
    }
    result
}

fn keep_alive_phase(
    addr: SocketAddr,
    body: &Arc<String>,
    opts: &Options,
) -> (Phase, Vec<u128>, Vec<u128>, usize) {
    let connections = opts.connections.unwrap_or(opts.clients);
    let started = Instant::now();
    let clients: Vec<_> = (0..connections)
        .map(|_| {
            let body = Arc::clone(body);
            let requests = opts.requests;
            let depth = opts.pipeline;
            std::thread::spawn(move || keep_alive_client(addr, &body, requests, depth))
        })
        .collect();

    let mut cold_us = Vec::new();
    let mut warm_us = Vec::new();
    let mut connections_used = 0usize;
    let mut failures = 0usize;
    for client in clients {
        let r = client.join().expect("keep-alive client thread");
        cold_us.extend(r.cold_us);
        warm_us.extend(r.warm_us);
        connections_used += r.connections_used;
        failures += r.failures;
    }
    let wall = started.elapsed();
    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let total = connections * opts.requests;
    (
        Phase {
            total,
            wall_ms: wall.as_millis(),
            rps: total as f64 / wall.as_secs_f64(),
            failures,
        },
        cold_us,
        warm_us,
        connections_used,
    )
}

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("serve-bench: {msg}");
            return ExitCode::from(2);
        }
    };
    let body = Arc::new(scenario_text(&opts));
    if opts.print_scenario {
        print!("{body}");
        return ExitCode::SUCCESS;
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let handle = match start(config, Box::new(BufferLog::new())) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve-bench: cannot boot server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    let mode = handle.mode().label();

    println!(
        "serve-bench: MachineMix(apps={}, seed={}) → /v1/run, {} front end",
        opts.apps, opts.seed, mode
    );

    // Unmeasured warm-up: run the one simulation (the cache miss) and a
    // few exchanges on each path, so both measured phases see the same
    // fully cached workload — this benchmark compares HTTP front-end
    // overhead, not simulator throughput.
    for _ in 0..4 {
        if let Err(e) = client::post(addr, "/v1/run", body.as_bytes()) {
            eprintln!("serve-bench: warm-up request failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let warm = keep_alive_client(addr, &body, 16, 8);
    if warm.failures > 0 {
        eprintln!("serve-bench: keep-alive warm-up failed");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut closed: Option<(Phase, Vec<u128>)> = None;
    if opts.run_closed_loop {
        println!(
            "serve-bench: closed loop: {} clients × {} requests, 1 connection/request",
            opts.clients, opts.requests
        );
        let (phase, latencies) = closed_loop_phase(addr, &body, &opts);
        println!(
            "serve-bench: closed loop: {} requests in {:.3} s → {:.0} req/s \
             (p50 = {} µs, p99 = {} µs)",
            phase.total,
            phase.wall_ms as f64 / 1e3,
            phase.rps,
            percentile_us(&latencies, 50),
            percentile_us(&latencies, 99),
        );
        failures += phase.failures;
        closed = Some((phase, latencies));
    }

    let mut keep_alive: Option<(Phase, Vec<u128>, Vec<u128>, usize)> = None;
    if opts.run_keep_alive {
        let connections = opts.connections.unwrap_or(opts.clients);
        println!(
            "serve-bench: keep-alive: {} connections × {} requests, pipeline depth {}",
            connections, opts.requests, opts.pipeline
        );
        let (phase, cold, warm, used) = keep_alive_phase(addr, &body, &opts);
        println!(
            "serve-bench: keep-alive: {} requests in {:.3} s → {:.0} req/s over {} connections \
             ({:.1} reqs/connection)",
            phase.total,
            phase.wall_ms as f64 / 1e3,
            phase.rps,
            used,
            phase.total as f64 / used.max(1) as f64,
        );
        println!(
            "serve-bench: keep-alive: cold p50 = {} µs, cold p99 = {} µs; \
             warm p50 = {} µs, warm p99 = {} µs",
            percentile_us(&cold, 50),
            percentile_us(&cold, 99),
            percentile_us(&warm, 50),
            percentile_us(&warm, 99),
        );
        if let Some((closed_phase, _)) = &closed {
            println!(
                "serve-bench: keep-alive vs closed loop: {:.2}× throughput",
                phase.rps / closed_phase.rps
            );
        }
        failures += phase.failures;
        keep_alive = Some((phase, cold, warm, used));
    }

    let hits = handle.service().cache().hits();
    let misses = handle.service().cache().misses();
    handle.shutdown();

    let total: usize = closed.as_ref().map(|(p, _)| p.total).unwrap_or(0)
        + keep_alive.as_ref().map(|(p, ..)| p.total).unwrap_or(0);
    if failures > 0 || total == 0 {
        eprintln!("serve-bench: {failures} of {total} requests failed");
        return ExitCode::FAILURE;
    }
    println!(
        "serve-bench: response cache {hits} hits / {misses} misses over {} lookups",
        hits + misses
    );

    // The machine-readable record CI archives.
    let mut json = format!(
        "{{\"clients\":{},\"requests_per_client\":{},\"apps\":{},\"seed\":{},\
         \"pipeline\":{},\"front_end\":\"{}\"",
        opts.clients, opts.requests, opts.apps, opts.seed, opts.pipeline, mode
    );
    if let Some((phase, latencies)) = &closed {
        json.push_str(&format!(
            ",\"closed_loop\":{{\"total_requests\":{},\"wall_ms\":{},\"rps\":{:.1},\
             \"p50_us\":{},\"p99_us\":{}}}",
            phase.total,
            phase.wall_ms,
            phase.rps,
            percentile_us(latencies, 50),
            percentile_us(latencies, 99),
        ));
    }
    if let Some((phase, cold, warm, used)) = &keep_alive {
        json.push_str(&format!(
            ",\"keep_alive\":{{\"total_requests\":{},\"wall_ms\":{},\"rps\":{:.1},\
             \"connections\":{},\"reqs_per_connection\":{:.1},\
             \"cold_p50_us\":{},\"cold_p99_us\":{},\"warm_p50_us\":{},\"warm_p99_us\":{}",
            phase.total,
            phase.wall_ms,
            phase.rps,
            used,
            phase.total as f64 / (*used).max(1) as f64,
            percentile_us(cold, 50),
            percentile_us(cold, 99),
            percentile_us(warm, 50),
            percentile_us(warm, 99),
        ));
        if let Some((closed_phase, _)) = &closed {
            json.push_str(&format!(
                ",\"speedup_vs_closed_loop\":{:.2}",
                phase.rps / closed_phase.rps
            ));
        }
        json.push('}');
    }
    json.push_str(&format!(
        ",\"cache_hits\":{hits},\"cache_misses\":{misses}}}"
    ));
    println!("note: serve-json: {json}");
    ExitCode::SUCCESS
}
