//! Regenerates every figure of the paper (plus the ablation studies) and
//! prints the series each one plots. Pass `--quick` for reduced sweeps.
//!
//! The output of a full run is the source for `EXPERIMENTS.md`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for (name, runner) in calciom_bench::all_experiments() {
        eprintln!("running {name} ...");
        let out = runner(quick);
        println!("{}", out.render());
    }
}
