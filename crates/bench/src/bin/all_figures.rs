//! Regenerates every figure of the paper (plus the ablation studies)
//! through the experiment registry and prints the series each one plots.
//!
//! Usage: `all_figures [list] [--quick] [<experiment-name>...]` — no names
//! runs everything in paper order; `list` prints the registered names.
//! The output of a full run is the source for `EXPERIMENTS.md`.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::all_figures_main()
}
