//! Regenerates the data behind the paper's fig04_small_vs_big experiment through the
//! experiment registry. Pass `--quick` for a reduced sweep.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig04_small_vs_big")
}
