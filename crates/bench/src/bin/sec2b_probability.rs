//! Regenerates the data behind the paper's sec2b experiment.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = calciom_bench::figures::sec2b::run(quick);
    println!("{}", out.render());
}
