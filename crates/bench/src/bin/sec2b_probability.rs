//! Regenerates the data behind the paper's sec2b_probability experiment through the
//! experiment registry. Pass `--quick` for a reduced sweep.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("sec2b_probability")
}
