//! Regenerates the data behind the paper's fig10_interrupt_granularity experiment through the
//! experiment registry. Pass `--quick` for a reduced sweep.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig10_interrupt_granularity")
}
