//! Regenerates the data behind the paper's fig11 experiment.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = calciom_bench::figures::fig11::run(quick);
    println!("{}", out.render());
}
