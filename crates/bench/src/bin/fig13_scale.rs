//! Runs the machine-level scale experiment (N-application mixes under all
//! five strategies) through the experiment registry. Pass `--quick` for
//! the reduced CI sweep (N ≤ 32).

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig13_scale")
}
