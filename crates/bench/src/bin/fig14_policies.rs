//! Runs the machine-scale arbitration-policy comparison (8 registry
//! policies on seeded N-application mixes) through the experiment
//! registry. Pass `--quick` for the reduced CI sweep (N ≤ 64) and
//! `--policy <spec>` (repeatable) to restrict the compared policies.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig14_policies")
}
