//! Regenerates the data behind the fig05_timeline experiment through the
//! experiment registry. Pass `--quick` for a reduced sweep, `--trace` to
//! record + verify the session traces, `--timeline` to print the derived
//! Gantt/bandwidth timelines.

use std::process::ExitCode;

fn main() -> ExitCode {
    calciom_bench::cli::figure_main("fig05_timeline")
}
