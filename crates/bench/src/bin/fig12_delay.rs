//! Regenerates the data behind the paper's fig12 experiment.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = calciom_bench::figures::fig12::run(quick);
    println!("{}", out.render());
}
