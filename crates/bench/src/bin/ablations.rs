//! Runs the ablation studies (locality penalty, share policy, coordination
//! overhead). Pass `--quick` for reduced sweeps.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for out in [
        calciom_bench::figures::ablation::run_gamma(quick),
        calciom_bench::figures::ablation::run_share_policy(quick),
        calciom_bench::figures::ablation::run_overhead(quick),
    ] {
        println!("{}", out.render());
    }
}
