//! Runs the ablation studies (locality penalty, share policy, coordination
//! overhead) through the experiment registry. Pass `--quick` for reduced
//! sweeps.

use calciom_bench::Registry;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match calciom_bench::cli::parse_options_or_fail(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    calciom_bench::cli::run_named(
        &Registry::standard(),
        &[
            "ablation_gamma",
            "ablation_share_policy",
            "ablation_coordination_overhead",
        ],
        &opts,
    )
}
