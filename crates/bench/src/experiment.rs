//! The experiment registry.
//!
//! Every reproduced figure (and every ablation) is an [`Experiment`]: a
//! named, self-describing runner that produces a [`FigureOutput`] or a
//! typed [`calciom::Error`].
//! The [`Registry`] is the one place experiments are registered; the
//! `all_figures` binary, the per-figure binaries, the smoke tests and CI's
//! `list` step all go through it, so a new workload only has to be added
//! here to show up everywhere.

use crate::figures;
use crate::figures::FigureOutput;
use calciom::Error;

/// One named experiment: a figure of the paper or an ablation study.
pub trait Experiment: Sync {
    /// Stable identifier used to run the experiment by name
    /// (e.g. `"fig07_fcfs"`).
    fn name(&self) -> &'static str;

    /// One-line description shown by `all_figures list`.
    fn description(&self) -> &'static str;

    /// Executes the experiment. `quick` runs the reduced parameter sweep
    /// used in CI; `false` reproduces the figure at full resolution.
    fn run(&self, quick: bool) -> Result<FigureOutput, Error>;
}

/// The set of registered experiments, in paper order.
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            experiments: Vec::new(),
        }
    }

    /// The standard registry: the twelve figure experiments reproduced
    /// from the paper (Figs. 1–12 and the Sec. II-B probability panel)
    /// plus the three ablation studies, in paper order.
    pub fn standard() -> Self {
        let mut registry = Registry::new();
        registry.register(Box::new(figures::fig01::Fig01));
        registry.register(Box::new(figures::sec2b::Sec2b));
        registry.register(Box::new(figures::fig02::Fig02));
        registry.register(Box::new(figures::fig03::Fig03));
        registry.register(Box::new(figures::fig04::Fig04));
        registry.register(Box::new(figures::fig06::Fig06));
        registry.register(Box::new(figures::fig07::Fig07));
        registry.register(Box::new(figures::fig08::Fig08));
        registry.register(Box::new(figures::fig09::Fig09));
        registry.register(Box::new(figures::fig10::Fig10));
        registry.register(Box::new(figures::fig11::Fig11));
        registry.register(Box::new(figures::fig12::Fig12));
        registry.register(Box::new(figures::ablation::AblationGamma));
        registry.register(Box::new(figures::ablation::AblationSharePolicy));
        registry.register(Box::new(figures::ablation::AblationOverhead));
        registry
    }

    /// Adds an experiment. Panics on a duplicate name — names are the
    /// lookup key of the whole harness.
    pub fn register(&mut self, experiment: Box<dyn Experiment>) {
        assert!(
            self.get(experiment.name()).is_none(),
            "duplicate experiment name '{}'",
            experiment.name()
        );
        self.experiments.push(experiment);
    }

    /// The registered experiments, in registration (paper) order.
    pub fn experiments(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(Box::as_ref)
    }

    /// Looks an experiment up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments().find(|e| e.name() == name)
    }

    /// The registered names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.experiments().map(|e| e.name()).collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs every experiment in order, stopping at the first failure.
    pub fn run_all(&self, quick: bool) -> Result<Vec<(&'static str, FigureOutput)>, Error> {
        self.experiments()
            .map(|e| Ok((e.name(), e.run(quick)?)))
            .collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_every_figure_and_ablation() {
        let registry = Registry::standard();
        assert_eq!(registry.len(), 15);
        assert!(!registry.is_empty());
        for name in [
            "fig01_workload",
            "sec2b_probability",
            "fig02_delta_equal",
            "fig03_cache",
            "fig04_small_vs_big",
            "fig06_split_delta",
            "fig07_fcfs",
            "fig08_collective",
            "fig09_policies",
            "fig10_interrupt_granularity",
            "fig11_dynamic",
            "fig12_delay",
            "ablation_gamma",
            "ablation_share_policy",
            "ablation_coordination_overhead",
        ] {
            let experiment = registry.get(name).unwrap_or_else(|| {
                panic!("experiment '{name}' missing from the standard registry")
            });
            assert!(
                !experiment.description().is_empty(),
                "{name}: empty description"
            );
        }
        assert!(registry.get("fig05_does_not_exist").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate experiment name")]
    fn duplicate_names_are_rejected() {
        let mut registry = Registry::standard();
        registry.register(Box::new(figures::fig01::Fig01));
    }
}
