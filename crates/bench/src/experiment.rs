//! The experiment registry.
//!
//! Every reproduced figure (and every ablation) is an [`Experiment`]: a
//! named, self-describing runner that produces a [`FigureOutput`] or a
//! typed [`calciom::Error`].
//! The [`Registry`] is the one place experiments are registered; the
//! `all_figures` binary, the per-figure binaries, the smoke tests and CI's
//! `list` step all go through it, so a new workload only has to be added
//! here to show up everywhere.

use crate::figures;
use crate::figures::FigureOutput;
use calciom::{Error, PolicySpec, SharingModel, Timeline, Trace};

/// How an experiment should be run, and which observability artifacts it
/// should attach to its output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Run the reduced CI parameter sweep instead of full resolution.
    pub quick: bool,
    /// Attach recorded [`Trace`]s for the experiment's key sessions
    /// (`--trace` on the CLI).
    pub trace: bool,
    /// Attach derived [`Timeline`]s (`--timeline` on the CLI).
    pub timeline: bool,
    /// Arbitration-policy spec texts from repeated `--policy <spec>`
    /// flags. Empty means "the experiment's own policy set"; experiments
    /// that compare policies (e.g. `fig14_policies`) restrict their sweep
    /// to these when given.
    pub policies: Vec<String>,
    /// Bandwidth-sharing medium override (`--medium <label>` on the
    /// CLI, e.g. `--medium fair-fast`). `None` means "the experiment's
    /// own default"; experiments over generated mixes (e.g.
    /// `fig14_policies`) run their sweep on the named medium when given.
    pub medium: Option<SharingModel>,
}

impl RunOptions {
    /// Options for a plain (unobserved) run.
    pub fn new(quick: bool) -> Self {
        RunOptions {
            quick,
            ..RunOptions::default()
        }
    }

    /// Requests trace attachments.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Requests timeline attachments.
    pub fn with_timeline(mut self) -> Self {
        self.timeline = true;
        self
    }

    /// Adds a policy spec text (the CLI's `--policy` flag).
    pub fn with_policy(mut self, spec: impl Into<String>) -> Self {
        self.policies.push(spec.into());
        self
    }

    /// Selects a bandwidth-sharing medium (the CLI's `--medium` flag).
    pub fn with_medium(mut self, medium: SharingModel) -> Self {
        self.medium = Some(medium);
        self
    }

    /// Parses the collected `--policy` texts into [`PolicySpec`]s. A
    /// malformed spec is a typed configuration error.
    pub fn parsed_policies(&self) -> Result<Vec<PolicySpec>, Error> {
        self.policies
            .iter()
            .map(|text| Ok(PolicySpec::from_text(text)?))
            .collect()
    }
}

/// The result of one experiment run: the figure plus whatever
/// observability artifacts the [`RunOptions`] requested (and the
/// experiment supports — experiments without observable sessions return
/// the figure alone).
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The rendered figure.
    pub figure: FigureOutput,
    /// Labelled traces of the experiment's key sessions.
    pub traces: Vec<(String, Trace)>,
    /// Labelled timelines of the experiment's key sessions.
    pub timelines: Vec<(String, Timeline)>,
}

impl ExperimentOutput {
    /// An output carrying only the figure.
    pub fn figure_only(figure: FigureOutput) -> Self {
        ExperimentOutput {
            figure,
            traces: Vec::new(),
            timelines: Vec::new(),
        }
    }
}

/// One named experiment: a figure of the paper or an ablation study.
pub trait Experiment: Sync {
    /// Stable identifier used to run the experiment by name
    /// (e.g. `"fig07_fcfs"`).
    fn name(&self) -> &'static str;

    /// One-line description shown by `all_figures list`.
    fn description(&self) -> &'static str;

    /// Executes the experiment. `quick` runs the reduced parameter sweep
    /// used in CI; `false` reproduces the figure at full resolution.
    fn run(&self, quick: bool) -> Result<FigureOutput, Error>;

    /// Executes the experiment with observability options. The default
    /// delegates to [`Experiment::run`] and attaches nothing; experiments
    /// whose sessions are worth watching (e.g. `fig05_timeline`) override
    /// this to attach traces/timelines when asked.
    fn run_with(&self, opts: &RunOptions) -> Result<ExperimentOutput, Error> {
        Ok(ExperimentOutput::figure_only(self.run(opts.quick)?))
    }
}

/// The set of registered experiments, in paper order.
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            experiments: Vec::new(),
        }
    }

    /// The standard registry: the figure experiments reproduced from the
    /// paper (Figs. 1–12 and the Sec. II-B probability panel), the fig05
    /// bandwidth-timeline companion, the fig13 machine-level scale
    /// extension, and the three ablation studies, in paper order.
    pub fn standard() -> Self {
        let mut registry = Registry::new();
        registry.register(Box::new(figures::fig01::Fig01));
        registry.register(Box::new(figures::sec2b::Sec2b));
        registry.register(Box::new(figures::fig02::Fig02));
        registry.register(Box::new(figures::fig03::Fig03));
        registry.register(Box::new(figures::fig04::Fig04));
        registry.register(Box::new(figures::fig05::Fig05));
        registry.register(Box::new(figures::fig06::Fig06));
        registry.register(Box::new(figures::fig07::Fig07));
        registry.register(Box::new(figures::fig08::Fig08));
        registry.register(Box::new(figures::fig09::Fig09));
        registry.register(Box::new(figures::fig10::Fig10));
        registry.register(Box::new(figures::fig11::Fig11));
        registry.register(Box::new(figures::fig12::Fig12));
        registry.register(Box::new(figures::fig13::Fig13));
        registry.register(Box::new(figures::fig14::Fig14));
        registry.register(Box::new(figures::fig15::Fig15));
        registry.register(Box::new(figures::ablation::AblationGamma));
        registry.register(Box::new(figures::ablation::AblationSharePolicy));
        registry.register(Box::new(figures::ablation::AblationOverhead));
        registry
    }

    /// Adds an experiment. Panics on a duplicate name — names are the
    /// lookup key of the whole harness.
    pub fn register(&mut self, experiment: Box<dyn Experiment>) {
        assert!(
            self.get(experiment.name()).is_none(),
            "duplicate experiment name '{}'",
            experiment.name()
        );
        self.experiments.push(experiment);
    }

    /// The registered experiments, in registration (paper) order.
    pub fn experiments(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(Box::as_ref)
    }

    /// Looks an experiment up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments().find(|e| e.name() == name)
    }

    /// The registered names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.experiments().map(|e| e.name()).collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs every experiment in order, stopping at the first failure.
    pub fn run_all(&self, quick: bool) -> Result<Vec<(&'static str, FigureOutput)>, Error> {
        self.experiments()
            .map(|e| Ok((e.name(), e.run(quick)?)))
            .collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_every_figure_and_ablation() {
        let registry = Registry::standard();
        assert_eq!(registry.len(), 19);
        assert!(!registry.is_empty());
        for name in [
            "fig01_workload",
            "sec2b_probability",
            "fig02_delta_equal",
            "fig03_cache",
            "fig04_small_vs_big",
            "fig05_timeline",
            "fig06_split_delta",
            "fig07_fcfs",
            "fig08_collective",
            "fig09_policies",
            "fig10_interrupt_granularity",
            "fig11_dynamic",
            "fig12_delay",
            "fig13_scale",
            "fig14_policies",
            "fig15_cluster",
            "ablation_gamma",
            "ablation_share_policy",
            "ablation_coordination_overhead",
        ] {
            let experiment = registry.get(name).unwrap_or_else(|| {
                panic!("experiment '{name}' missing from the standard registry")
            });
            assert!(
                !experiment.description().is_empty(),
                "{name}: empty description"
            );
        }
        assert!(registry.get("fig13_does_not_exist").is_none());
    }

    #[test]
    fn default_run_with_attaches_nothing() {
        let registry = Registry::standard();
        let experiment = registry.get("sec2b_probability").unwrap();
        let opts = RunOptions::new(true).with_trace().with_timeline();
        let output = experiment.run_with(&opts).unwrap();
        assert!(output.traces.is_empty());
        assert!(output.timelines.is_empty());
        assert!(!output.figure.render().is_empty());
    }

    #[test]
    fn fig05_attaches_traces_and_timelines_on_request() {
        let registry = Registry::standard();
        let experiment = registry.get("fig05_timeline").unwrap();
        let plain = experiment.run_with(&RunOptions::new(true)).unwrap();
        assert!(plain.traces.is_empty() && plain.timelines.is_empty());
        let observed = experiment
            .run_with(&RunOptions::new(true).with_trace().with_timeline())
            .unwrap();
        assert_eq!(observed.traces.len(), 3, "one trace per strategy");
        assert_eq!(observed.timelines.len(), 3);
        for (label, trace) in &observed.traces {
            assert!(!trace.is_empty(), "{label}: empty trace");
            // The codec round-trips every attached trace.
            assert_eq!(&calciom::Trace::from_text(&trace.to_text()).unwrap(), trace);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate experiment name")]
    fn duplicate_names_are_rejected() {
        let mut registry = Registry::standard();
        registry.register(Box::new(figures::fig01::Fig01));
    }
}
