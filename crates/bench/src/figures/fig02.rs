//! Figure 2 — Δ-graph of two equal applications (Grid'5000, PVFS).
//!
//! Two applications of 336 processes each write 16 MB per process in a
//! contiguous collective pattern. A starts at the reference date, B at dt.
//! The first one to arrive is favored, but both observe a degradation of
//! their write time; the measured curves follow the piecewise-linear
//! "expected" shape that gives the Δ-graph its name.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

/// Registry entry for this figure.
pub struct Fig02;

impl Experiment for Fig02 {
    fn name(&self) -> &'static str {
        "fig02_delta_equal"
    }

    fn description(&self) -> &'static str {
        "Delta-graph of two equal 336-process applications (Fig. 2)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    let app_a = AppConfig::new(AppId(0), "App A", 336, pattern);
    let app_b = AppConfig::new(AppId(1), "App B", 336, pattern);
    let cfg = DeltaSweepConfig::new(
        PfsConfig::grid5000_rennes(),
        app_a,
        app_b,
        dts(quick, -15.0, 15.0, 2.5),
    )
    .with_strategy(Strategy::Interfere);
    let sweep = run_delta_sweep(&cfg)?;

    let mut fig = FigureData::new(
        "Figure 2 — two 336-process applications, 16 MB/process contiguous",
        "dt (sec)",
        "write time (sec)",
    );
    let mut expected = Series::new("Expected");
    let mut a = Series::new("App A");
    let mut b = Series::new("App B");
    for p in &sweep.points {
        expected.push(p.dt, p.a_expected.max(p.b_expected));
        a.push(p.dt, p.a_io_time);
        b.push(p.dt, p.b_io_time);
    }
    fig.add_series(expected);
    fig.add_series(a);
    fig.add_series(b);

    let mut out = FigureOutput::new("Figure 2 — Δ-graph of two equal applications");
    out.notes.push(format!(
        "stand-alone write time: A {:.1}s, B {:.1}s; worst case at dt=0: A {:.1}s, B {:.1}s",
        sweep.a_alone,
        sweep.b_alone,
        sweep.at(0.0).map(|p| p.a_io_time).unwrap_or(f64::NAN),
        sweep.at(0.0).map(|p| p.b_io_time).unwrap_or(f64::NAN),
    ));
    out.notes.push(
        "shape check: the first application to arrive is favored but still degraded".to_string(),
    );
    out.figures.push(fig);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_shape_matches_the_paper() {
        let out = run(true).unwrap();
        let fig = &out.figures[0];
        let a = fig.series("App A").unwrap();
        let b = fig.series("App B").unwrap();
        // Worst case at dt = 0 for both.
        let worst_a = a.max_y().unwrap();
        assert!((worst_a - a.y_at(0.0).unwrap()).abs() < 1e-9);
        // For dt > 0 (B arrives second) A is favored over B.
        let last_x = *fig.x_values().last().unwrap();
        assert!(a.y_at(last_x).unwrap() <= b.y_at(last_x).unwrap() + 1e-6);
    }
}
