//! Figure 9 — three policies for equal and unequal application sizes.
//!
//! Two applications write 8 MB per process using a strided pattern. The
//! 768 cores are split 744/24 (panels a, b) and 384/384 (panels c, d). The
//! interference factor of each application is shown against dt for the
//! three policies: interfering, FCFS serialization, and interruption of
//! the application accessing first. FCFS hurts the late small application;
//! interruption rescues it at a small cost to the big one, but becomes
//! counter-productive between equal applications.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, Granularity, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

fn split_panels(
    quick: bool,
    small: u32,
    panel_prefix: &str,
) -> Result<(FigureData, FigureData), Error> {
    let big = 768 - small;
    // 16 MB per process as 8 strides of 2 MB (the Fig. 6 pattern): long
    // enough phases that the swept dt values overlap the ongoing access.
    let pattern = AccessPattern::strided(2.0 * MB, 8);
    let app_a = AppConfig::new(AppId(0), format!("A {big}"), big, pattern);
    let app_b = AppConfig::new(AppId(1), format!("B {small}"), small, pattern);
    let dt_values = dts(quick, -15.0, 25.0, 5.0);

    let mut panel_big = FigureData::new(
        format!("{panel_prefix} App A (big, {big} cores)"),
        "dt (sec)",
        "interference factor",
    );
    let mut panel_small = FigureData::new(
        format!("{panel_prefix} App B (small, {small} cores)"),
        "dt (sec)",
        "interference factor",
    );
    for strategy in [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
    ] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::grid5000_rennes(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy)
        .with_granularity(Granularity::Round);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series_a = Series::new(strategy.label().to_string());
        let mut series_b = Series::new(strategy.label().to_string());
        for p in &sweep.points {
            series_a.push(p.dt, p.a_factor);
            series_b.push(p.dt, p.b_factor);
        }
        panel_big.add_series(series_a);
        panel_small.add_series(series_b);
    }
    Ok((panel_big, panel_small))
}

/// Registry entry for this figure.
pub struct Fig09;

impl Experiment for Fig09 {
    fn name(&self) -> &'static str {
        "fig09_policies"
    }

    fn description(&self) -> &'static str {
        "Three policies for equal and unequal application sizes (Fig. 9)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let mut out = FigureOutput::new("Figure 9 — interference factor under three policies");
    let (a, b) = split_panels(quick, 24, "Figure 9(a)/(b) —")?;
    let (c, d) = split_panels(quick, 384, "Figure 9(c)/(d) —")?;
    out.figures.extend([a, b, c, d]);
    out.notes.push(
        "unequal sizes: FCFS penalizes the late small application, interruption rescues it at a \
         small cost to the big one"
            .to_string(),
    );
    out.notes.push(
        "equal sizes: interruption is counter-productive (the interrupted application pays the \
         full delay), FCFS is the better serialization"
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interruption_helps_small_app_and_hurts_equal_sized_app() {
        let out = run(true).unwrap();
        // Panel (b): the small application at the first positive dt (the
        // big application is still in the middle of its access there).
        let small = &out.figures[1];
        let x = *small
            .x_values()
            .iter()
            .find(|&&x| x > 0.0)
            .expect("a positive dt in the sweep");
        let fcfs = small.series("fcfs").unwrap().y_at(x).unwrap();
        let interrupt = small.series("interrupt").unwrap().y_at(x).unwrap();
        assert!(
            interrupt < 0.5 * fcfs,
            "interruption should rescue the small app: interrupt={interrupt} fcfs={fcfs}"
        );
        // Panel (c): the big application of the equal split suffers more
        // under interruption than under FCFS at positive dt.
        let equal_a = &out.figures[2];
        let fcfs = equal_a.series("fcfs").unwrap().y_at(x).unwrap();
        let interrupt = equal_a.series("interrupt").unwrap().y_at(x).unwrap();
        assert!(
            interrupt > fcfs,
            "interruption should be counter-productive for equal apps: interrupt={interrupt} fcfs={fcfs}"
        );
    }
}
