//! Figure 14 (extension) — arbitration-policy comparison at machine scale.
//!
//! The paper compares four hardwired strategies on two applications
//! (Fig. 11/12) and leaves richer policies as future work; the open
//! [`ArbitrationPolicy`](calciom::ArbitrationPolicy) layer makes that
//! future work runnable. This experiment plays the *same* seeded
//! [`MachineMix`] under every policy the standard registry knows — the
//! five built-ins (`interfering`, `fcfs`, `interrupt`, `delay(5s)`,
//! `calciom-dynamic`) and the three schedules the old enum could not
//! express (`priority(w=cores)`, `srpf`, `rr(10s)`) — for
//! N ∈ {8, 64, 256} applications ({8, 64} with `--quick`). Three curves
//! per policy:
//!
//! * **machine-wide efficiency** — CPU·seconds wasted (the paper's
//!   Section IV metric), baselines served by the shared
//!   [`BaselineCache`];
//! * **mean stretch** — the average per-application interference factor
//!   (observed / stand-alone time), the fairness signal;
//! * **coordination messages** — the protocol cost of the schedule.
//!
//! `--policy <spec>` (repeatable) restricts the comparison to the named
//! policies — any spec the registry can parse, e.g. `--policy rr(3s)`.
//! `--medium fair-fast` plays the tournament on the `O(log n)`
//! virtual-time medium instead of the exact max-min solver — the
//! configuration for machine-scale sweeps.

use super::FigureOutput;
use crate::experiment::{Experiment, ExperimentOutput, RunOptions};
use calciom::{EfficiencyMetric, Error, PolicySpec, SharingModel};
use iobench::{run_scenarios_sharded, BaselineCache, FigureData, Series};
use workloads::MachineMix;

/// Registry entry for this experiment.
pub struct Fig14;

impl Experiment for Fig14 {
    fn name(&self) -> &'static str {
        "fig14_policies"
    }

    fn description(&self) -> &'static str {
        "Arbitration-policy comparison at machine scale: 8 registry policies on N-app mixes (extension)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run_specs(quick, &policy_specs(), SharingModel::default())
    }

    fn run_with(&self, opts: &RunOptions) -> Result<ExperimentOutput, Error> {
        let specs = if opts.policies.is_empty() {
            policy_specs()
        } else {
            opts.parsed_policies()?
        };
        Ok(ExperimentOutput::figure_only(run_specs(
            opts.quick,
            &specs,
            opts.medium.unwrap_or_default(),
        )?))
    }
}

/// The eight policies compared, in presentation order: the five built-in
/// (legacy-strategy) policies followed by the three the enum could not
/// express.
pub fn policy_specs() -> Vec<PolicySpec> {
    vec![
        PolicySpec::new("interfering"),
        PolicySpec::new("fcfs"),
        PolicySpec::new("interrupt"),
        PolicySpec::with_arg("delay", "5s"),
        PolicySpec::new("calciom-dynamic"),
        PolicySpec::with_arg("priority", "w=cores"),
        PolicySpec::new("srpf"),
        PolicySpec::with_arg("rr", "10s"),
    ]
}

/// The machine mix used at every N (only `apps` varies): the fig13 mix,
/// seeded for reproducibility, so the two machine-scale experiments are
/// directly comparable.
pub fn mix(n: usize) -> MachineMix {
    super::fig13::mix(n)
}

/// Runs the comparison over an explicit policy list on the given
/// bandwidth-sharing medium.
pub fn run_specs(
    quick: bool,
    specs: &[PolicySpec],
    medium: SharingModel,
) -> Result<FigureOutput, Error> {
    let ns: &[usize] = if quick { &[8, 64] } else { &[8, 64, 256] };

    let mut eff = FigureData::new(
        "Figure 14a — machine-wide efficiency vs N",
        "N (applications)",
        "CPU*seconds wasted (millions)",
    );
    let mut stretch = FigureData::new(
        "Figure 14b — mean stretch vs N",
        "N (applications)",
        "mean interference factor",
    );
    let mut msgs = FigureData::new(
        "Figure 14c — coordination messages vs N",
        "N (applications)",
        "messages (thousands)",
    );
    let labels: Vec<String> = specs.iter().map(|s| s.to_text()).collect();
    let mut eff_series: Vec<Series> = labels.iter().map(Series::new).collect();
    let mut stretch_series: Vec<Series> = labels.iter().map(Series::new).collect();
    let mut msg_series: Vec<Series> = labels.iter().map(Series::new).collect();

    let cache = BaselineCache::global();
    for &n in ns {
        let mix = MachineMix { medium, ..mix(n) };
        let scenarios: Vec<_> = specs
            .iter()
            .map(|spec| mix.scenario_with_policy(spec.clone()))
            .collect();
        // One shard: sessions execute back to back so no policy's run is
        // perturbed by another contending for cores.
        let runs = run_scenarios_sharded(&scenarios, 1, cache)?;
        for (idx, run) in runs.iter().enumerate() {
            let wasted = run
                .report
                .metric(EfficiencyMetric::CpuSecondsWasted, &run.alone);
            let obs = run.report.observations(&run.alone);
            let mean_stretch = if obs.is_empty() {
                1.0
            } else {
                obs.iter().map(|o| o.interference_factor()).sum::<f64>() / obs.len() as f64
            };
            eff_series[idx].push(n as f64, wasted / 1e6);
            stretch_series[idx].push(n as f64, mean_stretch);
            msg_series[idx].push(n as f64, run.report.coordination_messages as f64 / 1e3);
        }
    }
    for series in eff_series {
        eff.add_series(series);
    }
    for series in stretch_series {
        stretch.add_series(series);
    }
    for series in msg_series {
        msgs.add_series(series);
    }

    let mut out = FigureOutput::new(
        "Figure 14 — arbitration policies compared on machine-level N-application mixes",
    );

    // Headline: the efficiency ranking at the largest N.
    let n_max = *ns.last().expect("at least one N") as f64;
    let mut at_max: Vec<(&str, f64)> = eff
        .series
        .iter()
        .map(|s| (s.label.as_str(), s.y_at(n_max).unwrap_or(f64::INFINITY)))
        .collect();
    at_max.sort_by(|a, b| a.1.total_cmp(&b.1));
    let ranking: Vec<String> = at_max
        .iter()
        .map(|(label, v)| format!("{label} {v:.2}M"))
        .collect();
    out.notes.push(format!(
        "policy ranking at N={} by CPU*s wasted (best first): {}",
        n_max as usize,
        ranking.join(", ")
    ));
    if let (Some(best), Some(worst)) = (at_max.first(), at_max.last()) {
        out.notes.push(format!(
            "best policy {} wastes {:.2}M CPU*s, worst {} {:.2}M ({:.1}x)",
            best.0,
            best.1,
            worst.0,
            worst.1,
            worst.1 / best.1.max(1e-9)
        ));
    }

    // Machine-readable trajectory (CI extracts this into
    // BENCH_policies.json).
    let per_policy = |data: &FigureData, scale: f64, digits: usize| -> Vec<String> {
        data.series
            .iter()
            .map(|s| {
                let ys: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(_, y)| format!("{:.*}", digits, y * scale))
                    .collect();
                format!("\"{}\":[{}]", s.label, ys.join(","))
            })
            .collect()
    };
    let json_ns: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    out.notes.push(format!(
        "policy-json: {{\"n\":[{}],\"cpu_s_wasted_m\":{{{}}},\"mean_stretch\":{{{}}},\"messages_k\":{{{}}}}}",
        json_ns.join(","),
        per_policy(&eff, 1.0, 3).join(","),
        per_policy(&stretch, 1.0, 3).join(","),
        per_policy(&msgs, 1.0, 3).join(",")
    ));

    out.figures.push(eff);
    out.figures.push(stretch);
    out.figures.push(msgs);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_every_policy_and_n() {
        let out = run_specs(true, &policy_specs(), SharingModel::default()).unwrap();
        assert_eq!(out.figures.len(), 3);
        for fig in &out.figures {
            assert_eq!(fig.x_values(), vec![8.0, 64.0]);
            for spec in policy_specs() {
                let label = spec.to_text();
                let series = fig
                    .series(&label)
                    .unwrap_or_else(|| panic!("missing series {label}"));
                assert_eq!(series.points.len(), 2);
                assert!(series.points.iter().all(|&(_, y)| y.is_finite()));
            }
        }
        assert!(
            out.notes.iter().any(|n| n.contains("policy ranking")),
            "headline note missing"
        );
        assert!(
            out.notes.iter().any(|n| n.starts_with("policy-json: ")),
            "perf trajectory note missing"
        );
        // Coordinated policies exchange messages; interference does not
        // serialize, so its stretch exceeds 1 while fcfs protects the
        // first arrival.
        let msgs = &out.figures[2];
        assert!(msgs.series("fcfs").unwrap().y_at(64.0).unwrap() > 0.0);
    }

    #[test]
    fn restricted_policy_lists_run_standalone() {
        let specs = [PolicySpec::new("fcfs"), PolicySpec::with_arg("rr", "3s")];
        let out = run_specs(true, &specs, SharingModel::default()).unwrap();
        assert_eq!(out.figures[0].series.len(), 2);
        assert!(out.figures[0].series("rr(3s)").is_some());
    }

    #[test]
    fn tournament_runs_on_the_fair_fast_medium() {
        // The `--medium fair-fast` configuration (the CI smoke): the same
        // restricted tournament on the virtual-time medium completes with
        // finite curves, and on the mix's near-equal-share topology lands
        // near the exact solver's efficiency.
        let specs = [PolicySpec::new("fcfs")];
        let exact = run_specs(true, &specs, SharingModel::MaxMin).unwrap();
        let fast = run_specs(true, &specs, SharingModel::FairFast).unwrap();
        let eff_at =
            |out: &FigureOutput, n: f64| out.figures[0].series("fcfs").unwrap().y_at(n).unwrap();
        for &n in &[8.0, 64.0] {
            let (a, b) = (eff_at(&exact, n), eff_at(&fast, n));
            assert!(a.is_finite() && b.is_finite());
            assert!(
                (a - b).abs() <= a.abs().max(1.0) * 0.10,
                "N={n}: fair-fast efficiency {b} far from max-min {a}"
            );
        }
    }

    /// The full-scale acceptance run: all eight registry policies
    /// complete on the seeded mix at N = 256. Ignored by default (this is
    /// the `--quick`-less experiment, minutes of work in debug builds);
    /// run explicitly with
    /// `cargo test -p calciom-bench --release -- --ignored policies_256`.
    #[test]
    #[ignore = "full-scale run; exercised by `fig14_policies` without --quick"]
    fn policies_256_complete_for_all_eight() {
        let out = run_specs(false, &policy_specs(), SharingModel::default()).unwrap();
        let eff = &out.figures[0];
        for spec in policy_specs() {
            let label = spec.to_text();
            let series = eff.series(&label).unwrap();
            let at_256 = series
                .y_at(256.0)
                .unwrap_or_else(|| panic!("{label}: no N=256 point"));
            assert!(at_256.is_finite(), "{label}: non-finite efficiency");
        }
    }
}
