//! Figure 15 (extension) — flat vs hierarchical arbitration across
//! machines.
//!
//! The paper coordinates applications within one machine; the
//! hierarchical arbitration layer (`calciom::cluster`) extends the
//! mechanism to M machines sharing one center-wide PFS: a leaf arbiter
//! per machine under a slot-owning root, contended requests escalating
//! with modeled cross-arbiter latency and aggregated per-machine load.
//! This experiment quantifies what the tree buys and what it costs. The
//! same seeded [`ClusterMix`] (M machines × N applications) is played two
//! ways — *flat* (every application coordinates through one arbiter, the
//! today's-code baseline) and *hierarchical* (the arbiter tree) — for
//! M ∈ {2, 8, 32} machines ({2, 4} with `--quick`). Three curves:
//!
//! * **mean stretch** — the average per-application interference factor,
//!   the price of coarser (per-machine) serialization;
//! * **machine-wide efficiency** — CPU·seconds wasted, baselines served
//!   by the shared [`BaselineCache`];
//! * **coordination messages** — flat's total vs the tree's root traffic
//!   (escalations + grants + slot returns, exactly linear in
//!   escalations): the scaling argument. Flat fan-in grows with the
//!   *application* population M × N; the root only ever talks to M
//!   leaves about aggregated load, so its message count must grow
//!   strictly slower.
//!
//! The full run uses the `O(log n)` virtual-time medium (10 240
//! applications at M = 32); `--quick` stays on the exact solver.

use super::FigureOutput;
use crate::experiment::Experiment;
use calciom::{ClusterStats, EfficiencyMetric, Error, SharingModel, Strategy};
use iobench::{run_scenarios_sharded, BaselineCache, FigureData, Series, ShardedRun};
use workloads::{ClusterMix, MachineMix};

/// Registry entry for this experiment.
pub struct Fig15;

impl Experiment for Fig15 {
    fn name(&self) -> &'static str {
        "fig15_cluster"
    }

    fn description(&self) -> &'static str {
        "Flat vs hierarchical arbitration: M-machine cluster mixes over a shared PFS (extension)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// The cluster mix at M machines (only the machine count varies): seeded
/// like the other machine-scale experiments, one shared-PFS slot, 1 ms
/// cross-arbiter edges. `--quick` draws 8 applications per machine on the
/// exact solver; the full run draws 320 per machine (10 240 applications
/// at M = 32) on the virtual-time medium.
///
/// The rotation quantum scales with the machine count (30 s × M): the
/// cluster's makespan grows with the aggregate offered load (M machines
/// × fixed per-machine demand), so a *fixed* quantum would make rotation
/// traffic — `makespan / quantum` round trips — grow with the
/// application population, exactly the fan-in the tree exists to avoid.
/// A quantum proportional to M holds each machine's share of the rotation
/// schedule constant and keeps root traffic governed by the machine
/// count.
pub fn mix(machines: usize, quick: bool) -> ClusterMix {
    ClusterMix {
        machines,
        apps_per_machine: if quick { 8 } else { 320 },
        template: MachineMix {
            seed: 2014,
            medium: if quick {
                SharingModel::MaxMin
            } else {
                SharingModel::FairFast
            },
            ..MachineMix::default()
        },
        slots: 1,
        latency_secs: 0.001,
        quantum_secs: 30.0 * machines as f64,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let ms: &[usize] = if quick { &[2, 4] } else { &[2, 8, 32] };

    let mut stretch = FigureData::new(
        "Figure 15a — mean stretch vs M machines",
        "M (machines)",
        "mean interference factor",
    );
    let mut eff = FigureData::new(
        "Figure 15b — machine-wide efficiency vs M machines",
        "M (machines)",
        "CPU*seconds wasted (millions)",
    );
    let mut msgs = FigureData::new(
        "Figure 15c — coordination messages vs M machines",
        "M (machines)",
        "messages (thousands)",
    );
    let mut flat_stretch = Series::new("flat");
    let mut hier_stretch = Series::new("hierarchical");
    let mut flat_eff = Series::new("flat");
    let mut hier_eff = Series::new("hierarchical");
    let mut flat_msgs = Series::new("flat total");
    let mut hier_msgs = Series::new("hierarchical total");
    let mut root_msgs = Series::new("hierarchical root");

    let cache = BaselineCache::global();
    let mut rows: Vec<Row> = Vec::new();
    for &m in ms {
        let mix = mix(m, quick);
        let scenarios = [
            mix.scenario_flat(Strategy::FcfsSerialize),
            mix.scenario_hierarchical(Strategy::FcfsSerialize),
        ];
        // One shard: the two topologies run back to back, undisturbed.
        let runs = run_scenarios_sharded(&scenarios, 1, cache)?;
        let flat = summarize(&runs[0]);
        let hier = summarize(&runs[1]);
        let tree = runs[1]
            .cluster
            .ok_or(Error::Config(calciom::ConfigError::ClusterUnsupported))?;

        let x = m as f64;
        flat_stretch.push(x, flat.stretch);
        hier_stretch.push(x, hier.stretch);
        flat_eff.push(x, flat.wasted / 1e6);
        hier_eff.push(x, hier.wasted / 1e6);
        flat_msgs.push(x, flat.messages as f64 / 1e3);
        hier_msgs.push(x, tree.total_messages() as f64 / 1e3);
        root_msgs.push(x, tree.root_messages() as f64 / 1e3);
        rows.push(Row {
            machines: m,
            apps: mix.machines * mix.apps_per_machine,
            flat,
            hier,
            tree,
        });
    }
    stretch.add_series(flat_stretch);
    stretch.add_series(hier_stretch);
    eff.add_series(flat_eff);
    eff.add_series(hier_eff);
    msgs.add_series(flat_msgs);
    msgs.add_series(hier_msgs);
    msgs.add_series(root_msgs);

    let mut out = FigureOutput::new(
        "Figure 15 — flat vs hierarchical arbitration on M-machine cluster mixes",
    );

    // Headline: the scaling argument. Flat message traffic grows with the
    // application population; root traffic only with the machine count.
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let flat_growth = last.flat.messages as f64 / (first.flat.messages.max(1)) as f64;
        let root_growth =
            last.tree.root_messages() as f64 / (first.tree.root_messages().max(1)) as f64;
        out.notes.push(format!(
            "message growth M={}..{}: flat x{:.1}, hierarchical root x{:.1} \
             ({} escalations, {} root grants, {} slot returns at M={})",
            first.machines,
            last.machines,
            flat_growth,
            root_growth,
            last.tree.escalations,
            last.tree.root_grants,
            last.tree.slot_returns,
            last.machines
        ));
        out.notes.push(format!(
            "stretch at M={} ({} apps): flat {:.2}, hierarchical {:.2}",
            last.machines, last.apps, last.flat.stretch, last.hier.stretch
        ));
    }

    // Machine-readable trajectory (CI extracts this into
    // BENCH_cluster.json).
    let col = |f: &dyn Fn(&Row) -> f64, digits: usize| -> String {
        rows.iter()
            .map(|r| format!("{:.*}", digits, f(r)))
            .collect::<Vec<_>>()
            .join(",")
    };
    out.notes.push(format!(
        "cluster-json: {{\"m\":[{}],\"apps\":[{}],\
         \"flat_stretch\":[{}],\"hier_stretch\":[{}],\
         \"flat_cpu_s_wasted_m\":[{}],\"hier_cpu_s_wasted_m\":[{}],\
         \"flat_messages\":[{}],\"hier_messages\":[{}],\"root_messages\":[{}],\
         \"escalations\":[{}]}}",
        rows.iter()
            .map(|r| r.machines.to_string())
            .collect::<Vec<_>>()
            .join(","),
        rows.iter()
            .map(|r| r.apps.to_string())
            .collect::<Vec<_>>()
            .join(","),
        col(&|r| r.flat.stretch, 3),
        col(&|r| r.hier.stretch, 3),
        col(&|r| r.flat.wasted / 1e6, 3),
        col(&|r| r.hier.wasted / 1e6, 3),
        col(&|r| r.flat.messages as f64, 0),
        col(&|r| r.tree.total_messages() as f64, 0),
        col(&|r| r.tree.root_messages() as f64, 0),
        col(&|r| r.tree.escalations as f64, 0),
    ));

    out.figures.push(stretch);
    out.figures.push(eff);
    out.figures.push(msgs);
    Ok(out)
}

/// Per-topology summary of one run.
struct Summary {
    stretch: f64,
    wasted: f64,
    messages: u64,
}

/// One (M, flat, hierarchical) comparison row.
struct Row {
    machines: usize,
    apps: usize,
    flat: Summary,
    hier: Summary,
    tree: ClusterStats,
}

fn summarize(run: &ShardedRun) -> Summary {
    let obs = run.report.observations(&run.alone);
    let stretch = if obs.is_empty() {
        1.0
    } else {
        obs.iter().map(|o| o.interference_factor()).sum::<f64>() / obs.len() as f64
    };
    Summary {
        stretch,
        wasted: run
            .report
            .metric(EfficiencyMetric::CpuSecondsWasted, &run.alone),
        messages: run.report.coordination_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_compares_both_topologies() {
        let out = run(true).unwrap();
        assert_eq!(out.figures.len(), 3);
        for fig in &out.figures {
            assert_eq!(fig.x_values(), vec![2.0, 4.0]);
            for series in &fig.series {
                assert_eq!(series.points.len(), 2, "{}", series.label);
                assert!(series.points.iter().all(|&(_, y)| y.is_finite()));
            }
        }
        let msgs = &out.figures[2];
        let at = |label: &str, m: f64| msgs.series(label).unwrap().y_at(m).unwrap();
        // The tree is never free: it carries the leaves' traffic plus the
        // root's. But the root alone stays far below the flat fan-in.
        assert!(at("hierarchical root", 4.0) > 0.0);
        assert!(at("hierarchical root", 4.0) < at("flat total", 4.0));
        assert!(
            out.notes.iter().any(|n| n.starts_with("cluster-json: ")),
            "perf trajectory note missing"
        );
        assert!(
            out.notes.iter().any(|n| n.contains("message growth")),
            "headline note missing"
        );
    }

    /// The full-scale acceptance run: flat vs hierarchical completes at
    /// M = 32 (10 240 applications on the virtual-time medium), and the
    /// root's message count grows strictly slower than flat's as M grows.
    /// Ignored by default (minutes of work in debug builds); run with
    /// `cargo test -p calciom-bench --release -- --ignored cluster_32`.
    #[test]
    #[ignore = "full-scale run; exercised by `fig15_cluster` without --quick"]
    fn cluster_32_machines_root_traffic_grows_slower_than_flat() {
        let out = run(false).unwrap();
        let msgs = &out.figures[2];
        let at = |label: &str, m: f64| {
            msgs.series(label)
                .unwrap()
                .y_at(m)
                .unwrap_or_else(|| panic!("{label}: no M={m} point"))
        };
        let flat_growth = at("flat total", 32.0) / at("flat total", 2.0).max(1e-9);
        let root_growth = at("hierarchical root", 32.0) / at("hierarchical root", 2.0).max(1e-9);
        assert!(
            root_growth < flat_growth,
            "root traffic must scale better: root x{root_growth:.2} vs flat x{flat_growth:.2}"
        );
    }
}
