//! Figure 5 — instantaneous-bandwidth timeline of a two-app contention
//! window.
//!
//! The paper's evaluation argues about *when* each application holds the
//! file system, not just about aggregate write times. This experiment
//! makes that temporal story visible: a big strided writer (many
//! collective-buffering rounds, hence many interruption points) is joined
//! two seconds in by a small contiguous writer, and the same workload is
//! played under no coordination, FCFS serialization, and interruption. For
//! each strategy the session is recorded through a [`TraceRecorder`] and
//! the instantaneous
//! per-application write bandwidth (a [`TimelineAggregator`] fold of the
//! same stream) is sampled onto a common grid — the bandwidth-vs-time
//! curves that show serialization moving B's I/O *after* A's and
//! interruption punching a hole into A's plateau.

use super::{FigureOutput, MB};
use crate::experiment::{Experiment, ExperimentOutput, RunOptions};
use calciom::{
    AccessPattern, AppConfig, AppId, Error, Granularity, PfsConfig, Scenario, Session,
    SessionReport, Strategy, Timeline, TimelineAggregator, Trace, TraceRecorder,
};
use iobench::{FigureData, Series};
use simcore::SimTime;

/// Registry entry for this figure.
pub struct Fig05;

impl Experiment for Fig05 {
    fn name(&self) -> &'static str {
        "fig05_timeline"
    }

    fn description(&self) -> &'static str {
        "Instantaneous-bandwidth timeline under no-coordination / FCFS / interrupt (Fig. 5)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        Ok(self.run_with(&RunOptions::new(quick))?.figure)
    }

    fn run_with(&self, opts: &RunOptions) -> Result<ExperimentOutput, Error> {
        run_with(opts)
    }
}

/// The contended workload: a big strided writer joined by a small
/// contiguous one after `dt` = 2 s.
fn scenario(strategy: Strategy) -> Result<Scenario, Error> {
    let a = AppConfig::new(AppId(0), "App A", 720, AccessPattern::strided(2.0 * MB, 8));
    let b = AppConfig::new(AppId(1), "App B", 48, AccessPattern::contiguous(8.0 * MB))
        .starting_at_secs(2.0);
    Ok(Scenario::builder(PfsConfig::grid5000_rennes())
        .apps([a, b])
        .strategy(strategy)
        .granularity(Granularity::Round)
        .build()?)
}

/// One observed run: report, recorded trace, derived timeline. The
/// timeline is deliberately built by *replaying* the trace — the recorded
/// stream, not session internals, is the source of truth.
fn observed_run(strategy: Strategy) -> Result<(SessionReport, Trace, Timeline), Error> {
    let scenario = scenario(strategy)?;
    let mut recorder = TraceRecorder::for_scenario(&scenario);
    let report = Session::new(&scenario)?.execute_with(&mut recorder)?;
    let trace = recorder.into_trace();
    debug_assert_eq!(trace.replay_report(), report, "replay must agree");
    let mut aggregator = TimelineAggregator::new();
    trace.replay_into(&mut aggregator);
    Ok((report, trace, aggregator.finish()))
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    Ok(run_with(&RunOptions::new(quick))?.figure)
}

/// Runs the experiment, attaching traces/timelines as requested.
pub fn run_with(opts: &RunOptions) -> Result<ExperimentOutput, Error> {
    let strategies = [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
    ];

    let mut runs = Vec::new();
    for strategy in strategies {
        runs.push((strategy, observed_run(strategy)?));
    }

    let horizon = runs
        .iter()
        .map(|(_, (report, _, _))| report.makespan)
        .max()
        .unwrap_or(SimTime::ZERO);
    let step = if opts.quick { 0.5 } else { 0.1 };

    let mut out = FigureOutput::new(
        "Figure 5 — instantaneous write bandwidth under contention (A joined by B at dt = 2 s)",
    );
    for (strategy, (report, _, timeline)) in &runs {
        let mut fig = FigureData::new(
            format!("Figure 5 — {}", strategy.label()),
            "t (sec)",
            "write bandwidth (MB/s)",
        );
        for app in [AppId(0), AppId(1)] {
            let name = &report.app(app).expect("both apps ran").name;
            let mut series = Series::new(name.clone());
            let mut t = 0.0;
            while t <= horizon.as_secs() + 1e-9 {
                let rate = timeline.bandwidth_at(app, SimTime::from_secs(t));
                series.push((t * 1e6).round() / 1e6, rate / MB);
                t += step;
            }
            fig.add_series(series);
        }
        out.figures.push(fig);
        out.notes.push(format!(
            "{}: makespan {:.2}s; A wrote {:.2}s, waited {:.2}s, interrupted {:.2}s; \
             B wrote {:.2}s, waited {:.2}s",
            strategy.label(),
            report.makespan.as_secs(),
            timeline.activity_seconds(AppId(0), calciom::Activity::Writing),
            timeline.activity_seconds(AppId(0), calciom::Activity::Waiting),
            timeline.activity_seconds(AppId(0), calciom::Activity::Interrupted),
            timeline.activity_seconds(AppId(1), calciom::Activity::Writing),
            timeline.activity_seconds(AppId(1), calciom::Activity::Waiting),
        ));
    }

    let mut output = ExperimentOutput::figure_only(out);
    for (strategy, (_, trace, timeline)) in runs {
        if opts.trace {
            output.traces.push((strategy.label().to_string(), trace));
        }
        if opts.timeline {
            output
                .timelines
                .push((strategy.label().to_string(), timeline));
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calciom::Activity;

    #[test]
    fn timelines_tell_the_three_strategy_stories() {
        let (_, _, interfere) = observed_run(Strategy::Interfere).unwrap();
        let (_, _, fcfs) = observed_run(Strategy::FcfsSerialize).unwrap();
        let (_, _, interrupt) = observed_run(Strategy::Interrupt).unwrap();
        let a = AppId(0);
        let b = AppId(1);

        // Uncoordinated: both write concurrently shortly after B arrives.
        let t3 = SimTime::from_secs(3.0);
        assert!(interfere.bandwidth_at(a, t3) > 0.0);
        assert!(interfere.bandwidth_at(b, t3) > 0.0);

        // FCFS: B queues behind A — no overlap at t = 3 s.
        assert!(fcfs.bandwidth_at(a, t3) > 0.0);
        assert_eq!(fcfs.bandwidth_at(b, t3), 0.0);
        assert!(fcfs.activity_seconds(b, Activity::Waiting) > 1.0);

        // Interrupt: A's plateau gets a hole while B writes.
        assert!(interrupt.activity_seconds(a, Activity::Interrupted) > 0.0);
    }

    #[test]
    fn figure_covers_both_apps_under_every_strategy() {
        let out = run(true).unwrap();
        assert_eq!(out.figures.len(), 3);
        for fig in &out.figures {
            let a = fig.series("App A").unwrap();
            let b = fig.series("App B").unwrap();
            assert!(a.max_y().unwrap() > 0.0);
            assert!(b.max_y().unwrap() > 0.0);
            assert_eq!(a.points.len(), b.points.len());
        }
        assert_eq!(out.notes.len(), 3);
    }
}
