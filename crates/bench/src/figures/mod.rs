//! One module per figure of the paper's evaluation section.

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod sec2b;

use iobench::FigureData;

/// Result of one figure experiment: the curves the paper plots plus
/// free-form notes (headline numbers, decision boundaries).
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Identifier (e.g. "Figure 7").
    pub id: String,
    /// One table per panel of the figure.
    pub figures: Vec<FigureData>,
    /// Headline observations to record in EXPERIMENTS.md.
    pub notes: Vec<String>,
}

impl FigureOutput {
    /// Creates an output with no panels yet.
    pub fn new(id: impl Into<String>) -> Self {
        FigureOutput {
            id: id.into(),
            figures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Renders every panel and note as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("==== {} ====\n", self.id);
        for fig in &self.figures {
            out.push_str(&fig.to_table());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Shared workload constant: one megabyte.
pub const MB: f64 = 1.0e6;

/// dt resolution helper: full resolution or the reduced quick sweep.
pub fn dts(quick: bool, lo: f64, hi: f64, step_full: f64) -> Vec<f64> {
    let step = if quick { (hi - lo) / 4.0 } else { step_full };
    iobench::dt_range(lo, hi, step)
}
