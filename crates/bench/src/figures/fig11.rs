//! Figure 11 — CALCioM's dynamic choice against a machine-wide metric.
//!
//! Same workload as Fig. 10 (two 2048-process applications, A writing four
//! times as much data as B). The metric is the number of CPU·seconds per
//! core wasted in I/O, `f = Σ_X N_X·T_X / Σ_X N_X`. CALCioM applies the
//! rule derived in the paper: if B starts first, A is serialized after B;
//! if B arrives before A has written 3 of its 4 files, A is interrupted;
//! otherwise B is serialized after A. The figure compares the metric with
//! and without CALCioM (i.e. against uncoordinated interference).

use super::{dts, FigureOutput};
use crate::experiment::Experiment;
use crate::figures::fig10::workload;
use calciom::Error;
use calciom::{DynamicPolicy, EfficiencyMetric, Granularity, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

/// Registry entry for this figure.
pub struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11_dynamic"
    }

    fn description(&self) -> &'static str {
        "Dynamic strategy selection against the CPU-seconds metric (Fig. 11)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let (app_a, app_b) = workload();
    let dt_values = dts(quick, -10.0, 30.0, 4.0);

    let mut fig = FigureData::new(
        "Figure 11 — CPU·seconds per core wasted in I/O (Fig. 10 workload)",
        "dt (sec)",
        "CPU seconds per core",
    );
    let mut notes = Vec::new();
    for (strategy, label) in [
        (Strategy::Interfere, "Without CALCioM"),
        (Strategy::Dynamic, "With CALCioM"),
    ] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::surveyor(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy)
        .with_granularity(Granularity::File)
        .with_policy(DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted));
        let sweep = run_delta_sweep(&cfg)?;
        let mut series = Series::new(label);
        for p in &sweep.points {
            series.push(p.dt, p.cpu_seconds_per_core);
        }
        notes.push(format!(
            "{label}: mean {:.1} CPU·s/core, worst {:.1} CPU·s/core",
            series.mean_y().unwrap_or(f64::NAN),
            series.max_y().unwrap_or(f64::NAN)
        ));
        fig.add_series(series);
    }

    let mut out = FigureOutput::new("Figure 11 — dynamic strategy selection");
    out.figures.push(fig);
    out.notes.extend(notes);
    out.notes.push(
        "decision rule reproduced: interrupt A iff B arrives before A finished 3 of its 4 files \
         (dt < T_A(alone) − T_B(alone)); otherwise FCFS"
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calciom_never_does_worse_than_interference_on_the_metric() {
        let out = run(true).unwrap();
        let fig = &out.figures[0];
        let without = fig.series("Without CALCioM").unwrap();
        let with = fig.series("With CALCioM").unwrap();
        for &(x, y_without) in &without.points {
            let y_with = with.y_at(x).unwrap();
            assert!(
                y_with <= y_without * 1.05,
                "dt={x}: with CALCioM {y_with} vs without {y_without}"
            );
        }
        // And it should be a strict improvement somewhere in the overlap
        // region.
        let improved = without
            .points
            .iter()
            .any(|&(x, y_without)| with.y_at(x).map(|y| y < 0.95 * y_without).unwrap_or(false));
        assert!(improved, "CALCioM should improve the metric for some dt");
    }
}
