//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! These are not figures of the paper; they quantify how much each
//! modelling ingredient contributes to the reproduced behaviour:
//!
//! * the locality-breakage penalty γ (what makes interference strictly
//!   worse than back-to-back execution),
//! * the server share policy (per-request-stream fairness versus
//!   per-application fairness),
//! * the coordination message latency (how cheap CALCioM's coordination
//!   needs to be).

use super::{FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::{
    AccessPattern, AppConfig, AppId, Error, PfsConfig, Scenario, Session, SharePolicy, Strategy,
};
use iobench::{FigureData, Series};
use simcore::SimDuration;

/// Registry entry for the γ sweep.
pub struct AblationGamma;

impl Experiment for AblationGamma {
    fn name(&self) -> &'static str {
        "ablation_gamma"
    }

    fn description(&self) -> &'static str {
        "Ablation: locality-breakage penalty gamma"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run_gamma(quick)
    }
}

/// Registry entry for the share-policy comparison.
pub struct AblationSharePolicy;

impl Experiment for AblationSharePolicy {
    fn name(&self) -> &'static str {
        "ablation_share_policy"
    }

    fn description(&self) -> &'static str {
        "Ablation: per-stream versus per-application server fairness"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run_share_policy(quick)
    }
}

/// Registry entry for the coordination-overhead sweep.
pub struct AblationOverhead;

impl Experiment for AblationOverhead {
    fn name(&self) -> &'static str {
        "ablation_coordination_overhead"
    }

    fn description(&self) -> &'static str {
        "Ablation: coordination message latency"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run_overhead(quick)
    }
}

fn equal_pair() -> Vec<AppConfig> {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    vec![
        AppConfig::new(AppId(0), "A", 336, pattern),
        AppConfig::new(AppId(1), "B", 336, pattern),
    ]
}

/// Sweep of the locality-breakage penalty γ: sum of the two applications'
/// write times at dt = 0, compared with the back-to-back (serialized) sum.
pub fn run_gamma(quick: bool) -> Result<FigureOutput, Error> {
    let gammas: Vec<f64> = if quick {
        vec![1.0, 0.85, 0.7]
    } else {
        vec![1.0, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6]
    };
    let mut fig = FigureData::new(
        "Ablation — locality-breakage penalty γ (two 336-process apps at dt = 0)",
        "gamma",
        "makespan of the pair (sec)",
    );
    let mut interfering = Series::new("Interfering (dt=0)");
    let mut serialized = Series::new("FCFS (dt=0)");
    for &gamma in &gammas {
        let mut pfs = PfsConfig::grid5000_rennes();
        pfs.interference_gamma = gamma;
        for (strategy, series) in [
            (Strategy::Interfere, &mut interfering),
            (Strategy::FcfsSerialize, &mut serialized),
        ] {
            let report = Scenario::builder(pfs.clone())
                .apps(equal_pair())
                .strategy(strategy)
                .build()?
                .run()?;
            series.push(gamma, report.makespan.as_secs());
        }
    }
    fig.add_series(interfering);
    fig.add_series(serialized);

    let mut out = FigureOutput::new("Ablation — locality-breakage penalty");
    out.notes.push(
        "with γ = 1 (no locality breakage) interfering and serializing finish the pair at the \
         same time; γ < 1 is what makes interference strictly worse than back-to-back execution"
            .to_string(),
    );
    out.figures.push(fig);
    Ok(out)
}

/// Server share policy: slowdown of a small application under a
/// request-stream-proportional scheduler versus an application-fair one.
pub fn run_share_policy(_quick: bool) -> Result<FigureOutput, Error> {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    let mut fig = FigureData::new(
        "Ablation — server share policy (8-core B against 336-core A, dt = 0)",
        "policy (0: proportional to processes, 1: equal per application)",
        "interference factor of B",
    );
    let mut series = Series::new("B interference factor");
    for (x, policy) in [
        (0.0, SharePolicy::ProportionalToProcesses),
        (1.0, SharePolicy::EqualPerApplication),
    ] {
        let mut pfs = PfsConfig::grid5000_rennes();
        pfs.share_policy = policy;
        let apps = vec![
            AppConfig::new(AppId(0), "A", 336, pattern),
            AppConfig::new(AppId(1), "B", 8, pattern),
        ];
        let b_alone = Session::run_alone(apps[1].clone(), pfs.clone())?;
        let report = Scenario::builder(pfs).apps(apps).build()?.run()?;
        let b_io = report.app(AppId(1)).unwrap().first_phase().io_time();
        series.push(x, calciom::interference_factor(b_io, b_alone));
    }
    fig.add_series(series);

    let mut out = FigureOutput::new("Ablation — server share policy");
    out.notes.push(
        "per-request-stream fairness (what real network request schedulers provide) is what \
         crushes the small application; an application-fair scheduler removes most of the effect \
         without any coordination"
            .to_string(),
    );
    out.figures.push(fig);
    Ok(out)
}

/// Coordination message latency sweep: write time of the serialized second
/// application as the per-exchange overhead grows.
pub fn run_overhead(quick: bool) -> Result<FigureOutput, Error> {
    let overheads_ms: Vec<f64> = if quick {
        vec![0.1, 100.0]
    } else {
        vec![0.1, 1.0, 10.0, 100.0, 1000.0]
    };
    let mut fig = FigureData::new(
        "Ablation — coordination overhead (FCFS, B arrives 2 s after A)",
        "overhead (ms)",
        "write time of B (sec)",
    );
    let mut series = Series::new("B write time");
    for &ms in &overheads_ms {
        let pattern = AccessPattern::contiguous(16.0 * MB);
        let report = Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(AppId(0), "A", 336, pattern))
            .app(AppConfig::new(AppId(1), "B", 336, pattern).starting_at_secs(2.0))
            .strategy(Strategy::FcfsSerialize)
            .coordination_overhead(SimDuration::from_millis(ms))
            .build()?
            .run()?;
        series.push(ms, report.app(AppId(1)).unwrap().first_phase().io_time());
    }
    fig.add_series(series);

    let mut out = FigureOutput::new("Ablation — coordination overhead");
    out.notes.push(
        "coordination latencies up to hundreds of milliseconds are negligible against multi-second \
         I/O phases — consistent with the paper's claim that CALCioM's cost is negligible"
            .to_string(),
    );
    out.figures.push(fig);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_one_makes_interference_equal_to_serialization() {
        let out = run_gamma(true).unwrap();
        let fig = &out.figures[0];
        let interfering = fig.series("Interfering (dt=0)").unwrap();
        let fcfs = fig.series("FCFS (dt=0)").unwrap();
        let at = |s: &iobench::Series, x: f64| s.y_at(x).unwrap();
        assert!((at(interfering, 1.0) - at(fcfs, 1.0)).abs() / at(fcfs, 1.0) < 0.05);
        assert!(at(interfering, 0.7) > 1.1 * at(fcfs, 0.7));
    }

    #[test]
    fn app_fair_scheduler_protects_small_application() {
        let out = run_share_policy(true).unwrap();
        let series = &out.figures[0].series[0];
        let proportional = series.y_at(0.0).unwrap();
        let app_fair = series.y_at(1.0).unwrap();
        assert!(
            proportional > 2.0 * app_fair,
            "{proportional} vs {app_fair}"
        );
    }

    #[test]
    fn overhead_has_second_order_effect_only() {
        let out = run_overhead(true).unwrap();
        let series = &out.figures[0].series[0];
        let low = series.points.first().unwrap().1;
        let high = series.points.last().unwrap().1;
        assert!((high - low) < 0.5, "low={low} high={high}");
    }
}
