//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! These are not figures of the paper; they quantify how much each
//! modelling ingredient contributes to the reproduced behaviour:
//!
//! * the locality-breakage penalty γ (what makes interference strictly
//!   worse than back-to-back execution),
//! * the server share policy (per-request-stream fairness versus
//!   per-application fairness),
//! * the coordination message latency (how cheap CALCioM's coordination
//!   needs to be).

use super::{FigureOutput, MB};
use calciom::{
    AccessPattern, AppConfig, AppId, PfsConfig, Session, SessionConfig, SharePolicy, Strategy,
};
use iobench::{FigureData, Series};
use simcore::SimDuration;

fn equal_pair() -> Vec<AppConfig> {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    vec![
        AppConfig::new(AppId(0), "A", 336, pattern),
        AppConfig::new(AppId(1), "B", 336, pattern),
    ]
}

/// Sweep of the locality-breakage penalty γ: sum of the two applications'
/// write times at dt = 0, compared with the back-to-back (serialized) sum.
pub fn run_gamma(quick: bool) -> FigureOutput {
    let gammas: Vec<f64> = if quick {
        vec![1.0, 0.85, 0.7]
    } else {
        vec![1.0, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6]
    };
    let mut fig = FigureData::new(
        "Ablation — locality-breakage penalty γ (two 336-process apps at dt = 0)",
        "gamma",
        "makespan of the pair (sec)",
    );
    let mut interfering = Series::new("Interfering (dt=0)");
    let mut serialized = Series::new("FCFS (dt=0)");
    for &gamma in &gammas {
        let mut pfs = PfsConfig::grid5000_rennes();
        pfs.interference_gamma = gamma;
        for (strategy, series) in [
            (Strategy::Interfere, &mut interfering),
            (Strategy::FcfsSerialize, &mut serialized),
        ] {
            let report =
                Session::run(SessionConfig::new(pfs.clone(), equal_pair()).with_strategy(strategy))
                    .expect("gamma ablation run");
            series.push(gamma, report.makespan.as_secs());
        }
    }
    fig.add_series(interfering);
    fig.add_series(serialized);

    let mut out = FigureOutput::new("Ablation — locality-breakage penalty");
    out.notes.push(
        "with γ = 1 (no locality breakage) interfering and serializing finish the pair at the \
         same time; γ < 1 is what makes interference strictly worse than back-to-back execution"
            .to_string(),
    );
    out.figures.push(fig);
    out
}

/// Server share policy: slowdown of a small application under a
/// request-stream-proportional scheduler versus an application-fair one.
pub fn run_share_policy(_quick: bool) -> FigureOutput {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    let mut fig = FigureData::new(
        "Ablation — server share policy (8-core B against 336-core A, dt = 0)",
        "policy (0: proportional to processes, 1: equal per application)",
        "interference factor of B",
    );
    let mut series = Series::new("B interference factor");
    for (x, policy) in [
        (0.0, SharePolicy::ProportionalToProcesses),
        (1.0, SharePolicy::EqualPerApplication),
    ] {
        let mut pfs = PfsConfig::grid5000_rennes();
        pfs.share_policy = policy;
        let apps = vec![
            AppConfig::new(AppId(0), "A", 336, pattern),
            AppConfig::new(AppId(1), "B", 8, pattern),
        ];
        let b_alone = Session::run_alone(apps[1].clone(), pfs.clone()).expect("alone run");
        let report = Session::run(SessionConfig::new(pfs, apps)).expect("share policy run");
        let b_io = report.app(AppId(1)).unwrap().first_phase().io_time();
        series.push(x, calciom::interference_factor(b_io, b_alone));
    }
    fig.add_series(series);

    let mut out = FigureOutput::new("Ablation — server share policy");
    out.notes.push(
        "per-request-stream fairness (what real network request schedulers provide) is what \
         crushes the small application; an application-fair scheduler removes most of the effect \
         without any coordination"
            .to_string(),
    );
    out.figures.push(fig);
    out
}

/// Coordination message latency sweep: write time of the serialized second
/// application as the per-exchange overhead grows.
pub fn run_overhead(quick: bool) -> FigureOutput {
    let overheads_ms: Vec<f64> = if quick {
        vec![0.1, 100.0]
    } else {
        vec![0.1, 1.0, 10.0, 100.0, 1000.0]
    };
    let mut fig = FigureData::new(
        "Ablation — coordination overhead (FCFS, B arrives 2 s after A)",
        "overhead (ms)",
        "write time of B (sec)",
    );
    let mut series = Series::new("B write time");
    for &ms in &overheads_ms {
        let pattern = AccessPattern::contiguous(16.0 * MB);
        let apps = vec![
            AppConfig::new(AppId(0), "A", 336, pattern),
            AppConfig::new(AppId(1), "B", 336, pattern).starting_at_secs(2.0),
        ];
        let report = Session::run(
            SessionConfig::new(PfsConfig::grid5000_rennes(), apps)
                .with_strategy(Strategy::FcfsSerialize)
                .with_coordination_overhead(SimDuration::from_millis(ms)),
        )
        .expect("overhead ablation run");
        series.push(ms, report.app(AppId(1)).unwrap().first_phase().io_time());
    }
    fig.add_series(series);

    let mut out = FigureOutput::new("Ablation — coordination overhead");
    out.notes.push(
        "coordination latencies up to hundreds of milliseconds are negligible against multi-second \
         I/O phases — consistent with the paper's claim that CALCioM's cost is negligible"
            .to_string(),
    );
    out.figures.push(fig);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_one_makes_interference_equal_to_serialization() {
        let out = run_gamma(true);
        let fig = &out.figures[0];
        let interfering = fig.series("Interfering (dt=0)").unwrap();
        let fcfs = fig.series("FCFS (dt=0)").unwrap();
        let at = |s: &iobench::Series, x: f64| s.y_at(x).unwrap();
        assert!((at(interfering, 1.0) - at(fcfs, 1.0)).abs() / at(fcfs, 1.0) < 0.05);
        assert!(at(interfering, 0.7) > 1.1 * at(fcfs, 0.7));
    }

    #[test]
    fn app_fair_scheduler_protects_small_application() {
        let out = run_share_policy(true);
        let series = &out.figures[0].series[0];
        let proportional = series.y_at(0.0).unwrap();
        let app_fair = series.y_at(1.0).unwrap();
        assert!(
            proportional > 2.0 * app_fair,
            "{proportional} vs {app_fair}"
        );
    }

    #[test]
    fn overhead_has_second_order_effect_only() {
        let out = run_overhead(true);
        let series = &out.figures[0].series[0];
        let low = series.points.first().unwrap().1;
        let high = series.points.last().unwrap().1;
        assert!((high - low) < 0.5, "low={low} high={high}");
    }
}
