//! Figure 3 — impact of interference on the storage-side write cache.
//!
//! One IOR instance writes every 10 seconds, another every 7 seconds, on a
//! PVFS deployment with kernel caching enabled in the storage backend.
//! Panel (a): per-iteration throughput of the first instance running alone.
//! Panel (b): the same with the second instance running — iterations whose
//! bursts coincide with the other application's collapse to disk speed.

use super::{FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig};
use iobench::{run_periodic, FigureData, PeriodicConfig, Series};
use simcore::SimDuration;

fn writer(id: usize, name: &str, period_secs: f64, iterations: u32) -> AppConfig {
    AppConfig::new(AppId(id), name, 336, AccessPattern::contiguous(16.0 * MB))
        .with_periodic_phases(iterations, SimDuration::from_secs(period_secs))
}

/// Registry entry for this figure.
pub struct Fig03;

impl Experiment for Fig03 {
    fn name(&self) -> &'static str {
        "fig03_cache"
    }

    fn description(&self) -> &'static str {
        "Cache thrashing under periodic interference (Fig. 3)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let iterations = if quick { 6 } else { 10 };
    let pfs = PfsConfig::grid5000_nancy();

    let alone = run_periodic(&PeriodicConfig {
        pfs: pfs.clone(),
        app_a: writer(0, "App 1", 10.0, iterations),
        app_b: None,
    })?;
    let interfered = run_periodic(&PeriodicConfig {
        pfs,
        app_a: writer(0, "App 1", 10.0, iterations),
        app_b: Some(writer(1, "App 2", 7.0, iterations)),
    })?;

    let to_mbps = |series: &[f64]| -> Series {
        let mut s = Series::new("App 1 throughput");
        for (i, t) in series.iter().enumerate() {
            s.push((i + 1) as f64, t / MB);
        }
        s
    };

    let mut panel_a = FigureData::new(
        "Figure 3(a) — without interference (writes every 10 s)",
        "iteration",
        "throughput (MB/s)",
    );
    panel_a.add_series(to_mbps(&alone.a_throughputs));
    let mut panel_b = FigureData::new(
        "Figure 3(b) — with a second instance writing every 7 s",
        "iteration",
        "throughput (MB/s)",
    );
    panel_b.add_series(to_mbps(&interfered.a_throughputs));

    let mut out = FigureOutput::new("Figure 3 — cache thrashing under interference");
    out.notes.push(format!(
        "alone: min {:.0} MB/s, max {:.0} MB/s per iteration",
        alone.a_min() / MB,
        alone.a_max() / MB
    ));
    out.notes.push(format!(
        "interfered: min {:.0} MB/s (collapsed iterations), max {:.0} MB/s; collapse factor {:.1}×",
        interfered.a_min() / MB,
        interfered.a_max() / MB,
        alone.a_min() / interfered.a_min().max(1.0)
    ));
    out.figures.push(panel_a);
    out.figures.push(panel_b);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coinciding_bursts_collapse_throughput() {
        let out = run(true).unwrap();
        assert_eq!(out.figures.len(), 2);
        let alone_min = out.figures[0].series[0].min_y().unwrap();
        let interfered_min = out.figures[1].series[0].min_y().unwrap();
        assert!(
            interfered_min < 0.7 * alone_min,
            "interfered min {interfered_min} vs alone min {alone_min}"
        );
    }
}
