//! Figure 13 (extension) — machine-level scale: N-application mixes.
//!
//! The paper's figures coordinate 2–4 applications; this experiment takes
//! its premise machine-wide. A seeded [`MachineMix`] generates N
//! applications (Fig. 1(a) size marginal, randomized volumes, periodic
//! phases, start jitter) and the same mix is played under all five
//! strategies for N ∈ {2, 8, 32, 128, 512} ({2, 8, 32} with `--quick`).
//! Two curves per strategy:
//!
//! * **machine-wide efficiency** — CPU·seconds wasted (the paper's
//!   Section IV metric) over the whole mix, baselines served by the shared
//!   [`BaselineCache`];
//! * **host wall-clock** — how long the simulation itself took, the
//!   scaling signal for the `simcore` kernel (the `kernel_scaling`
//!   criterion group tracks the same quantity with statistics).
//!
//! The sweep runs through [`run_scenarios_sharded`]: one shard per
//! strategy, all sharing one baseline cache.

use super::FigureOutput;
use crate::experiment::Experiment;
use calciom::{EfficiencyMetric, Error, SharingModel, Strategy};
use iobench::{run_scenarios_sharded, BaselineCache, FigureData, Series};
use workloads::MachineMix;

/// Registry entry for this experiment.
pub struct Fig13;

impl Experiment for Fig13 {
    fn name(&self) -> &'static str {
        "fig13_scale"
    }

    fn description(&self) -> &'static str {
        "Machine-level scale: efficiency and kernel wall-clock vs N applications (extension)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// The five strategies of the paper, in presentation order.
pub const STRATEGIES: [Strategy; 5] = [
    Strategy::Interfere,
    Strategy::FcfsSerialize,
    Strategy::Interrupt,
    Strategy::Delay { max_wait_secs: 5.0 },
    Strategy::Dynamic,
];

/// The coordinated subset of [`STRATEGIES`] — the schedules the
/// virtual-time sweep runs at N ∈ {2 000, 10 000, 50 000}, where the
/// uncoordinated baseline has no scaling story to tell.
pub const COORDINATED: [Strategy; 4] = [
    Strategy::FcfsSerialize,
    Strategy::Interrupt,
    Strategy::Delay { max_wait_secs: 5.0 },
    Strategy::Dynamic,
];

/// The machine mix used at every N (only `apps` varies): a fixed seed so
/// the experiment is reproducible, moderate write volumes so N = 512
/// stays simulable in seconds.
pub fn mix(n: usize) -> MachineMix {
    MachineMix {
        apps: n,
        seed: 2014,
        ..MachineMix::default()
    }
}

/// The same mix on the `O(log n)` virtual-time medium — the configuration
/// of the N ∈ {2 000, 10 000, 50 000} sweep.
pub fn fair_mix(n: usize) -> MachineMix {
    MachineMix {
        medium: SharingModel::FairFast,
        ..mix(n)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let ns: &[usize] = if quick {
        &[2, 8, 32]
    } else {
        &[2, 8, 32, 128, 512]
    };

    let mut eff = FigureData::new(
        "Figure 13a — machine-wide efficiency vs N",
        "N (applications)",
        "CPU*seconds wasted (millions)",
    );
    let mut wall = FigureData::new(
        "Figure 13b — simulation wall-clock vs N",
        "N (applications)",
        "session wall-clock (ms)",
    );
    let mut eff_series: Vec<Series> = STRATEGIES.iter().map(|s| Series::new(s.label())).collect();
    let mut wall_series: Vec<Series> = STRATEGIES.iter().map(|s| Series::new(s.label())).collect();

    let cache = BaselineCache::global();
    let mut wall_ms: Vec<Vec<f64>> = vec![Vec::new(); STRATEGIES.len()];
    for &n in ns {
        let mix = mix(n);
        let scenarios: Vec<_> = STRATEGIES.iter().map(|s| mix.scenario(*s)).collect();
        // One shard: the sessions execute back to back on one worker, so
        // the per-session wall-clock is a clean scaling signal instead of
        // five strategies contending for cores mid-measurement.
        let runs = run_scenarios_sharded(&scenarios, 1, cache)?;
        for (idx, run) in runs.iter().enumerate() {
            let wasted = run
                .report
                .metric(EfficiencyMetric::CpuSecondsWasted, &run.alone);
            let ms = run.wall.as_secs_f64() * 1e3;
            eff_series[idx].push(n as f64, wasted / 1e6);
            wall_series[idx].push(n as f64, ms);
            wall_ms[idx].push(ms);
        }
    }
    for series in eff_series {
        eff.add_series(series);
    }
    for series in wall_series {
        wall.add_series(series);
    }

    let mut out = FigureOutput::new(
        "Figure 13 — machine-level N-application mixes under all five strategies",
    );

    // Headline: which strategy wins the machine at the largest N.
    let n_max = *ns.last().expect("at least one N") as f64;
    let at_max: Vec<(&str, f64)> = eff
        .series
        .iter()
        .map(|s| (s.label.as_str(), s.y_at(n_max).unwrap_or(f64::INFINITY)))
        .collect();
    let best = at_max
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("five strategies");
    let worst = at_max
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("five strategies");
    out.notes.push(format!(
        "machine-wide efficiency at N={}: best {} ({:.2} M CPU*s wasted), worst {} ({:.2} M)",
        n_max as usize, best.0, best.1, worst.0, worst.1
    ));

    // Kernel scaling: empirical growth between the two largest N.
    if ns.len() >= 2 {
        let (n_hi, n_lo) = (ns[ns.len() - 1] as f64, ns[ns.len() - 2] as f64);
        for (idx, strategy) in STRATEGIES.iter().enumerate() {
            let ms = &wall_ms[idx];
            let (lo, hi) = (ms[ms.len() - 2].max(1e-3), ms[ms.len() - 1]);
            let growth = hi / lo;
            let quadratic = (n_hi / n_lo) * (n_hi / n_lo);
            out.notes.push(format!(
                "kernel wall-clock {}: N={}..{} grew x{:.2} (quadratic would be x{:.0})",
                strategy.label(),
                n_lo as usize,
                n_hi as usize,
                growth,
                quadratic
            ));
        }
    }

    // The virtual-time sweep: the same mix family on the `O(log n)`
    // medium, one decade further out. Sessions are timed directly (the
    // wall-clock trajectory is the signal here; machine-wide efficiency
    // at these N is the max-min sweep's job).
    let fair_ns: &[usize] = if quick {
        &[2_000]
    } else {
        &[2_000, 10_000, 50_000]
    };
    let mut fair_fig = FigureData::new(
        "Figure 13c — virtual-time medium wall-clock vs N",
        "N (applications)",
        "session wall-clock (ms)",
    );
    let mut fair_series: Vec<Series> = COORDINATED.iter().map(|s| Series::new(s.label())).collect();
    let mut fair_ms: Vec<Vec<f64>> = vec![Vec::new(); COORDINATED.len()];
    for &n in fair_ns {
        let mix = fair_mix(n);
        for (idx, strategy) in COORDINATED.iter().enumerate() {
            let scenario = mix.scenario(*strategy);
            let t0 = std::time::Instant::now();
            let report = scenario.run()?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            debug_assert_eq!(report.apps.len(), n);
            drop(report);
            fair_series[idx].push(n as f64, ms);
            fair_ms[idx].push(ms);
        }
    }
    for series in fair_series {
        fair_fig.add_series(series);
    }
    if fair_ns.len() >= 2 {
        let (n_hi, n_lo) = (
            fair_ns[fair_ns.len() - 1] as f64,
            fair_ns[fair_ns.len() - 2] as f64,
        );
        for (idx, strategy) in COORDINATED.iter().enumerate() {
            let ms = &fair_ms[idx];
            let growth = ms[ms.len() - 1] / ms[ms.len() - 2].max(1e-3);
            let nlogn = (n_hi / n_lo) * ((n_hi).ln() / (n_lo).ln());
            out.notes.push(format!(
                "fair-fast wall-clock {}: N={}..{} grew x{:.2} (N log N would be x{:.1})",
                strategy.label(),
                n_lo as usize,
                n_hi as usize,
                growth,
                nlogn
            ));
        }
    }

    // Machine-readable perf trajectory (CI extracts this into
    // BENCH_scale.json; `fair_fast` carries the virtual-time sweep and
    // feeds the N=2000 regression gate).
    let json_ns: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    let json_walls: Vec<String> = STRATEGIES
        .iter()
        .enumerate()
        .map(|(idx, s)| {
            let ms: Vec<String> = wall_ms[idx].iter().map(|m| format!("{m:.3}")).collect();
            format!("\"{}\":[{}]", s.label(), ms.join(","))
        })
        .collect();
    let json_fair_ns: Vec<String> = fair_ns.iter().map(|n| n.to_string()).collect();
    let json_fair_walls: Vec<String> = COORDINATED
        .iter()
        .enumerate()
        .map(|(idx, s)| {
            let ms: Vec<String> = fair_ms[idx].iter().map(|m| format!("{m:.3}")).collect();
            format!("\"{}\":[{}]", s.label(), ms.join(","))
        })
        .collect();
    out.notes.push(format!(
        "scale-json: {{\"n\":[{}],\"wall_ms\":{{{}}},\"fair_fast\":{{\"n\":[{}],\"wall_ms\":{{{}}}}}}}",
        json_ns.join(","),
        json_walls.join(","),
        json_fair_ns.join(","),
        json_fair_walls.join(",")
    ));

    out.figures.push(eff);
    out.figures.push(wall);
    out.figures.push(fair_fig);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calciom::Scenario;

    #[test]
    fn quick_sweep_covers_every_strategy_and_n() {
        let out = run(true).unwrap();
        assert_eq!(out.figures.len(), 3);
        for fig in &out.figures[..2] {
            assert_eq!(fig.x_values(), vec![2.0, 8.0, 32.0]);
            for strategy in STRATEGIES {
                let series = fig
                    .series(&strategy.label())
                    .unwrap_or_else(|| panic!("missing series {}", strategy.label()));
                assert_eq!(series.points.len(), 3);
            }
        }
        // The virtual-time sweep smokes at N = 2000 in quick mode — the
        // point the CI regression gate reads.
        let fair = &out.figures[2];
        assert_eq!(fair.x_values(), vec![2000.0]);
        for strategy in COORDINATED {
            let series = fair
                .series(&strategy.label())
                .unwrap_or_else(|| panic!("missing fair-fast series {}", strategy.label()));
            assert_eq!(series.points.len(), 1);
        }
        assert!(
            out.notes
                .iter()
                .any(|n| n.contains("machine-wide efficiency")),
            "headline note missing"
        );
        assert!(
            out.notes
                .iter()
                .any(|n| n.starts_with("scale-json: ") && n.contains("\"fair_fast\"")),
            "perf trajectory note missing its fair_fast section"
        );
    }

    #[test]
    fn the_same_mix_feeds_every_strategy() {
        let mix = mix(16);
        let a: Scenario = mix.scenario(Strategy::Interfere);
        let b: Scenario = mix.scenario(Strategy::FcfsSerialize);
        assert_eq!(a.apps, b.apps, "only the strategy may differ");
        assert_ne!(a.strategy, b.strategy);
    }

    /// The full-scale acceptance run: N = 512 under all five strategies,
    /// with an empirical sub-quadratic check on the kernel from
    /// N = 128 → 512. Ignored by default (it is the `--quick`-less
    /// experiment, minutes of work in debug builds); run explicitly with
    /// `cargo test -p calciom-bench --release -- --ignored scale_512`.
    #[test]
    #[ignore = "full-scale run; exercised by `fig13_scale` without --quick"]
    fn scale_512_completes_and_grows_subquadratically() {
        let out = run(false).unwrap();
        let wall = &out.figures[1];
        for strategy in STRATEGIES {
            let series = wall.series(&strategy.label()).unwrap();
            let at = |n: f64| series.y_at(n).unwrap();
            // Completion at N=512 is implied by the point existing.
            let growth = at(512.0) / at(128.0).max(1e-3);
            // Coordinated schedules keep components small — the
            // incremental allocator makes them near-linear (measured
            // ≈ x5 for x4 N on the reference machine, i.e. ~N^1.2).
            // Uncoordinated (and budget-expired delay) schedules put
            // every flow in one component, where each completion
            // re-rates all survivors: Ω(N) per completion — so quadratic
            // total is the *lower bound* there and the check is only
            // that it stays bounded-quadratic (x16 would be exactly
            // quadratic; the margin absorbs the five concurrent shards
            // contending for cores during the measurement).
            let bound = match strategy {
                Strategy::Interfere | Strategy::Delay { .. } => 24.0,
                _ => 8.0,
            };
            assert!(
                growth < bound,
                "{}: wall-clock grew x{growth:.1} from N=128 to N=512 (bound x{bound})",
                strategy.label()
            );
        }
    }

    /// The machine-scale acceptance run on the virtual-time medium:
    /// N = 50 000 under every coordinated strategy, with an empirical
    /// O(N log N) check from N = 10 000 → 50 000 (a 5× N step under
    /// N log N is ×5.9; the bound leaves allocator and cache headroom).
    /// Run explicitly with
    /// `cargo test -p calciom-bench --release -- --ignored scale_50k`.
    #[test]
    #[ignore = "machine-scale run; exercised by `fig13_scale` without --quick"]
    fn scale_50k_completes_and_grows_like_n_log_n() {
        let out = run(false).unwrap();
        let fair = &out.figures[2];
        for strategy in COORDINATED {
            let series = fair.series(&strategy.label()).unwrap();
            let at = |n: f64| series.y_at(n).unwrap();
            // Completion at N = 50 000 is implied by the point existing.
            let growth = at(50_000.0) / at(10_000.0).max(1e-3);
            assert!(
                growth < 12.0,
                "{}: wall-clock grew x{growth:.1} from N=10k to N=50k (bound x12)",
                strategy.label()
            );
        }
    }
}
