//! Figure 6 — Δ-graphs for unequal application sizes.
//!
//! A total of 768 cores is split into App B (N cores) and App A (768 − N),
//! N ∈ {24, 48, 96, 192, 384}; each process writes 16 MB as 8 strides of
//! 2 MB. Panel (a): interference factor of the big application; panel (b):
//! interference factor of the small one, which reaches ≈ 14 for the 24-core
//! instance.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

/// Registry entry for this figure.
pub struct Fig06;

impl Experiment for Fig06 {
    fn name(&self) -> &'static str {
        "fig06_split_delta"
    }

    fn description(&self) -> &'static str {
        "Delta-graphs for unequal 768-core splits (Fig. 6)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let splits: Vec<u32> = if quick {
        vec![24, 384]
    } else {
        vec![24, 48, 96, 192, 384]
    };
    let pattern = AccessPattern::strided(2.0 * MB, 8);
    let dts = dts(quick, -25.0, 25.0, 5.0);

    let mut panel_a = FigureData::new(
        "Figure 6(a) — Δ-graph of App A (big)",
        "dt (sec)",
        "interference factor",
    );
    let mut panel_b = FigureData::new(
        "Figure 6(b) — Δ-graph of App B (small)",
        "dt (sec)",
        "interference factor",
    );
    let mut max_b_factor: f64 = 1.0;
    let mut max_b_cores = 0;

    for &n in &splits {
        let big = 768 - n;
        let app_a = AppConfig::new(AppId(0), format!("A {big} cores"), big, pattern);
        let app_b = AppConfig::new(AppId(1), format!("B {n} cores"), n, pattern);
        let cfg = DeltaSweepConfig::new(PfsConfig::grid5000_rennes(), app_a, app_b, dts.clone())
            .with_strategy(Strategy::Interfere);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series_a = Series::new(format!("{big} cores"));
        let mut series_b = Series::new(format!("{n} cores"));
        for p in &sweep.points {
            series_a.push(p.dt, p.a_factor);
            series_b.push(p.dt, p.b_factor);
        }
        if sweep.max_b_factor() > max_b_factor {
            max_b_factor = sweep.max_b_factor();
            max_b_cores = n;
        }
        panel_a.add_series(series_a);
        panel_b.add_series(series_b);
    }

    let mut out = FigureOutput::new("Figure 6 — interference factors for 768-core splits");
    out.notes.push(format!(
        "worst small-application interference factor: {:.1}× for the {}-core instance (paper: ~14× for 24 cores)",
        max_b_factor, max_b_cores
    ));
    out.notes.push(
        "for dt < 0 the small application writes before the big one starts and is barely impacted"
            .to_string(),
    );
    out.figures.push(panel_a);
    out.figures.push(panel_b);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_application_is_hit_much_harder_than_big_one() {
        let out = run(true).unwrap();
        let small = out.figures[1].series("24 cores").unwrap();
        let big = out.figures[0].series("744 cores").unwrap();
        assert!(
            small.max_y().unwrap() > 5.0,
            "small max {:?}",
            small.max_y()
        );
        assert!(big.max_y().unwrap() < 3.0, "big max {:?}", big.max_y());
        // Left side of the Δ-graph (B writes first): B barely impacted.
        let first_x = out.figures[1].x_values()[0];
        assert!(small.y_at(first_x).unwrap() < 2.0);
    }
}
