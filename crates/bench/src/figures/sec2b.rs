//! Section II-B — probability of concurrent accesses.
//!
//! `P(another is doing I/O) = 1 − Σ_n P(X=n)(1−E[µ])^n`, evaluated on the
//! concurrency distribution of the (synthetic) Intrepid trace for several
//! values of the mean I/O-time fraction `E[µ]`. The paper quotes ≈ 64% for
//! `E[µ] = 5%`.

use super::FigureOutput;
use crate::experiment::Experiment;
use calciom::Error;
use iobench::{FigureData, Series};
use workloads::{
    generate, probability_concurrent_io, ConcurrencyDistribution, SyntheticTraceConfig,
};

/// Registry entry for this figure.
pub struct Sec2b;

impl Experiment for Sec2b {
    fn name(&self) -> &'static str {
        "sec2b_probability"
    }

    fn description(&self) -> &'static str {
        "Probability that another application is doing I/O (Sec. II-B)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let cfg = SyntheticTraceConfig {
        jobs: if quick { 3_000 } else { 20_000 },
        ..Default::default()
    };
    let trace = generate(&cfg);
    let dist = ConcurrencyDistribution::from_trace(&trace);

    let mut out =
        FigureOutput::new("Section II-B — probability that another application is doing I/O");
    let mut fig = FigureData::new(
        "P(another application is doing I/O) versus E[µ]",
        "E[µ] (fraction of time in I/O)",
        "probability",
    );
    let mut series = Series::new("P(concurrent I/O)");
    for mu in [0.01, 0.02, 0.05, 0.10, 0.20] {
        series.push(mu, probability_concurrent_io(&dist, mu));
    }
    fig.add_series(series);
    out.figures.push(fig);

    let p5 = probability_concurrent_io(&dist, 0.05);
    out.notes.push(format!(
        "P(another is doing I/O) at E[µ]=5%: {:.0}% (paper: 64%)",
        100.0 * p5
    ));
    out.notes.push(format!(
        "mean number of concurrent jobs in the trace: {:.1}",
        dist.mean()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_monotone_in_mu_and_substantial() {
        let out = run(true).unwrap();
        let series = &out.figures[0].series[0];
        let values: Vec<f64> = series.points.iter().map(|&(_, y)| y).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        // At E[µ]=5% interference must be frequent (paper: 64%).
        let p5 = series.y_at(0.05).unwrap();
        assert!(p5 > 0.3, "p5 = {p5}");
    }
}
