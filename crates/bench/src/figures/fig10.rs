//! Figure 10 — interruption granularity (file level versus ADIO round level).
//!
//! Two 2048-process applications on Surveyor: App A writes 4 files of 4 MB
//! per process, App B writes a single such file. Four policies are
//! compared: interfering, FCFS, interruption with coordination calls placed
//! between files only (the application must finish the file it is writing
//! before yielding — the "saw" pattern), and interruption with calls placed
//! in the ADIO layer between collective-buffering rounds (A yields almost
//! immediately and B is barely impacted).
//!
//! Note on patterns: the paper uses a contiguous 4 MB/process access, which
//! ROMIO on BG/P still drives through the collective-buffering path. In
//! this reproduction the same effect is obtained with a single-block
//! strided pattern (`Strided { block_size: 4 MB, block_count: 1 }`), which
//! routes the write through the round-based collective path without
//! changing the amount of data.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, Granularity, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

/// The Fig. 10/11 workload: (App A, App B).
pub fn workload() -> (AppConfig, AppConfig) {
    let pattern = AccessPattern::strided(4.0 * MB, 1);
    (
        AppConfig::new(AppId(0), "App A", 2048, pattern).with_files(4),
        AppConfig::new(AppId(1), "App B", 2048, pattern).with_files(1),
    )
}

/// Registry entry for this figure.
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10_interrupt_granularity"
    }

    fn description(&self) -> &'static str {
        "File-level versus round-level interruption (Fig. 10)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let (app_a, app_b) = workload();
    let dt_values = dts(quick, -10.0, 30.0, 4.0);

    let mut panel_a = FigureData::new(
        "Figure 10(a) — App A (writes 4 files of 4 MB/process)",
        "dt (sec)",
        "write time (sec)",
    );
    let mut panel_b = FigureData::new(
        "Figure 10(b) — App B (writes 1 file of 4 MB/process)",
        "dt (sec)",
        "write time (sec)",
    );

    let cases: [(Strategy, Granularity, &str); 4] = [
        (Strategy::Interfere, Granularity::Round, "Interfering"),
        (Strategy::FcfsSerialize, Granularity::Round, "FCFS"),
        (
            Strategy::Interrupt,
            Granularity::File,
            "File-level interruption",
        ),
        (
            Strategy::Interrupt,
            Granularity::Round,
            "Round-level interruption",
        ),
    ];
    let mut notes = Vec::new();
    for (strategy, granularity, label) in cases {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::surveyor(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy)
        .with_granularity(granularity);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series_a = Series::new(label);
        let mut series_b = Series::new(label);
        for p in &sweep.points {
            series_a.push(p.dt, p.a_io_time);
            series_b.push(p.dt, p.b_io_time);
        }
        if strategy == Strategy::Interrupt {
            // The paper only defines the interruption curves for dt ≥ 0
            // ("there is someone to interrupt"); report the worst case over
            // that region.
            let worst_b = sweep
                .points
                .iter()
                .filter(|p| p.dt >= 0.0)
                .map(|p| p.b_io_time)
                .fold(0.0_f64, f64::max);
            notes.push(format!(
                "{label}: worst write time of B for dt >= 0 is {:.1}s (alone {:.1}s)",
                worst_b, sweep.b_alone
            ));
        }
        panel_a.add_series(series_a);
        panel_b.add_series(series_b);
    }

    let mut out = FigureOutput::new("Figure 10 — file-level vs round-level interruption");
    out.figures.push(panel_a);
    out.figures.push(panel_b);
    out.notes.extend(notes);
    out.notes.push(
        "file-level interruption forces A to finish the current file before yielding (saw \
         pattern for B); round-level interruption lets B through almost immediately"
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_level_interruption_protects_b_better_than_file_level() {
        let out = run(true).unwrap();
        let panel_b = &out.figures[1];
        let file_level = panel_b.series("File-level interruption").unwrap();
        let round_level = panel_b.series("Round-level interruption").unwrap();
        let fcfs = panel_b.series("FCFS").unwrap();
        // At a dt in the middle of A's access, B's write time is ordered:
        // round-level < file-level < FCFS.
        let x = *panel_b
            .x_values()
            .iter()
            .find(|&&x| (0.0..8.0).contains(&x))
            .expect("a dt during A's access");
        let r = round_level.y_at(x).unwrap();
        let f = file_level.y_at(x).unwrap();
        let s = fcfs.y_at(x).unwrap();
        assert!(r < f, "round {r} should beat file {f}");
        assert!(f < s, "file {f} should beat fcfs {s}");
    }

    #[test]
    fn interruption_costs_a_roughly_bs_write_time() {
        let out = run(true).unwrap();
        let panel_a = &out.figures[0];
        let x = *panel_a
            .x_values()
            .iter()
            .find(|&&x| (0.0..8.0).contains(&x))
            .expect("a dt during A's access");
        let interfering = panel_a.series("Interfering").unwrap().y_at(x).unwrap();
        let round = panel_a
            .series("Round-level interruption")
            .unwrap()
            .y_at(x)
            .unwrap();
        // A pays for B's access either way; interruption should not be much
        // worse than interference for A.
        assert!(
            round < 1.3 * interfering,
            "round {round} vs interfering {interfering}"
        );
    }
}
