//! Figure 1 — job sizes and number of concurrent jobs on Intrepid.
//!
//! Panel (a): histogram and CDF of job sizes (fraction of jobs per
//! power-of-two core-count bucket). Panel (b): time-weighted distribution
//! of the number of concurrently running jobs. Reproduced from the
//! synthetic Intrepid-like trace (the original archive trace is not
//! redistributable; see DESIGN.md).

use super::FigureOutput;
use crate::experiment::Experiment;
use calciom::Error;
use iobench::{FigureData, Series};
use workloads::{generate, ConcurrencyDistribution, SyntheticTraceConfig, SIZE_BUCKETS};

/// Registry entry for this figure.
pub struct Fig01;

impl Experiment for Fig01 {
    fn name(&self) -> &'static str {
        "fig01_workload"
    }

    fn description(&self) -> &'static str {
        "Job sizes and concurrency on an Intrepid-like trace (Fig. 1)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let cfg = SyntheticTraceConfig {
        jobs: if quick { 3_000 } else { 20_000 },
        ..Default::default()
    };
    let trace = generate(&cfg);

    let mut out =
        FigureOutput::new("Figure 1 — job sizes and concurrency on an Intrepid-like trace");

    // Panel (a): job-size histogram (% of jobs) and CDF.
    let mut hist = Series::new("% of jobs (histogram)");
    let mut cdf = Series::new("% of jobs (CDF)");
    let mut acc = 0.0;
    for (size, _) in SIZE_BUCKETS {
        let in_bucket = trace.jobs().iter().filter(|j| j.procs == size).count() as f64
            / trace.len().max(1) as f64;
        acc += in_bucket;
        hist.push(size as f64, 100.0 * in_bucket);
        cdf.push(size as f64, 100.0 * acc);
    }
    let mut panel_a = FigureData::new(
        "Figure 1(a) — distribution of job sizes",
        "cores",
        "% of jobs",
    );
    panel_a.add_series(hist);
    panel_a.add_series(cdf);
    out.figures.push(panel_a);

    // Panel (b): number of concurrent jobs, time weighted.
    let concurrency = ConcurrencyDistribution::from_trace(&trace);
    let mut panel_b = FigureData::new(
        "Figure 1(b) — number of concurrent jobs by time unit",
        "concurrent jobs",
        "proportion of total time",
    );
    let mut series = Series::new("proportion of time");
    for (n, p) in concurrency.probabilities().iter().enumerate() {
        if n > 64 {
            break;
        }
        series.push(n as f64, *p);
    }
    panel_b.add_series(series);
    out.figures.push(panel_b);

    out.notes.push(format!(
        "fraction of jobs at or below 2048 cores: {:.1}% (paper: ~50%)",
        100.0 * trace.fraction_of_jobs_at_most(2048)
    ));
    out.notes.push(format!(
        "machine-time-weighted fraction at or below 2048 cores: {:.1}% (paper: ~50%)",
        100.0 * trace.time_weighted_fraction_at_most(2048)
    ));
    out.notes.push(format!(
        "mean number of concurrently running jobs: {:.1}",
        concurrency.mean()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_two_panels_and_sane_fractions() {
        let out = run(true).unwrap();
        assert_eq!(out.figures.len(), 2);
        let cdf = out.figures[0].series("% of jobs (CDF)").unwrap();
        let last = cdf.points.last().unwrap().1;
        assert!(
            (last - 100.0).abs() < 1.0,
            "CDF should end near 100%, got {last}"
        );
        assert!(!out.figures[1].series[0].points.is_empty());
    }
}
