//! Figure 8 — collective buffering under interference.
//!
//! Two 2048-process applications write 16 MB per process as a strided
//! pattern (16 × 1 MB), which triggers the collective-buffering (two-phase
//! I/O) algorithm. Panel (a): Δ-graph of App A's write time when
//! interfering and when serialized FCFS, with the expected curve. Panel
//! (b): decomposition into communication and write phases for dt = 5 s,
//! dt = 30 s and no interference — the communication phase is almost
//! immune to the interference while the write phase takes the whole hit.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

fn apps() -> (AppConfig, AppConfig) {
    let pattern = AccessPattern::strided(1.0 * MB, 16);
    (
        AppConfig::new(AppId(0), "App A", 2048, pattern),
        AppConfig::new(AppId(1), "App B", 2048, pattern),
    )
}

/// Registry entry for this figure.
pub struct Fig08;

impl Experiment for Fig08 {
    fn name(&self) -> &'static str {
        "fig08_collective"
    }

    fn description(&self) -> &'static str {
        "Collective buffering under interference (Fig. 8)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let (app_a, app_b) = apps();
    let dt_values = dts(quick, -40.0, 40.0, 10.0);

    // Panel (a): Δ-graph interfering vs FCFS.
    let mut panel_a = FigureData::new(
        "Figure 8(a) — 2×2048 cores, strided 16×1 MB (collective buffering)",
        "dt (sec)",
        "write time of App A (sec)",
    );
    let mut expected = Series::new("Expected");
    let mut comm_immunity_note = String::new();
    for strategy in [Strategy::Interfere, Strategy::FcfsSerialize] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::surveyor(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series = Series::new(strategy.label().to_string());
        for p in &sweep.points {
            series.push(p.dt, p.a_io_time);
            if strategy == Strategy::Interfere {
                expected.push(p.dt, p.a_expected);
            }
        }
        if strategy == Strategy::Interfere {
            comm_immunity_note = format!(
                "stand-alone phase: {:.1}s ({:.1}s of communication)",
                sweep.a_alone,
                sweep
                    .points
                    .first()
                    .map(|p| p.a_comm_seconds)
                    .unwrap_or(0.0)
            );
        }
        panel_a.add_series(series);
    }
    panel_a.add_series(expected);

    // Panel (b): phase decomposition for selected dt values.
    let mut panel_b = FigureData::new(
        "Figure 8(b) — phases of collective buffering (App A)",
        "scenario (0: dt=5s, 1: dt=30s, 2: no interference)",
        "time (sec)",
    );
    let mut comm = Series::new("Comm");
    let mut write = Series::new("Write");
    let mut total = Series::new("Total");
    // "No interference" is approximated by starting B long after A has
    // finished (dt = 500 s, well within the simulation horizon).
    let scenarios: [(f64, Option<f64>); 3] = [(0.0, Some(5.0)), (1.0, Some(30.0)), (2.0, None)];
    for (x, dt) in scenarios {
        let dts = vec![dt.unwrap_or(500.0)];
        let cfg = DeltaSweepConfig::new(PfsConfig::surveyor(), app_a.clone(), app_b.clone(), dts)
            .with_strategy(Strategy::Interfere);
        let sweep = run_delta_sweep(&cfg)?;
        let p = &sweep.points[0];
        comm.push(x, p.a_comm_seconds);
        write.push(x, p.a_write_seconds);
        total.push(x, p.a_io_time);
    }
    panel_b.add_series(comm);
    panel_b.add_series(write);
    panel_b.add_series(total);

    let mut out = FigureOutput::new("Figure 8 — collective buffering under interference");
    out.notes.push(comm_immunity_note);
    out.notes.push(
        "the communication phase is (almost) not impacted by interference; the write phase absorbs \
         the whole degradation"
            .to_string(),
    );
    out.figures.push(panel_a);
    out.figures.push(panel_b);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_phase_is_immune_write_phase_is_not() {
        let out = run(true).unwrap();
        let panel_b = &out.figures[1];
        let comm = panel_b.series("Comm").unwrap();
        let write = panel_b.series("Write").unwrap();
        // Communication time is (nearly) identical with and without
        // interference.
        let comm_interf = comm.y_at(0.0).unwrap();
        let comm_alone = comm.y_at(2.0).unwrap();
        assert!((comm_interf - comm_alone).abs() < 0.15 * comm_alone.max(0.1));
        // The write phase under full interference (dt=5) is much longer than
        // without interference.
        let write_interf = write.y_at(0.0).unwrap();
        let write_alone = write.y_at(2.0).unwrap();
        assert!(
            write_interf > 1.4 * write_alone,
            "write interf {write_interf} vs alone {write_alone}"
        );
    }
}
