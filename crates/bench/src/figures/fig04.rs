//! Figure 4 — a small application interfering with a big one.
//!
//! Application A runs on 336 processes, application B's size varies; each
//! process writes 16 MB and both applications start at the same time. The
//! figure reports the observed throughputs against B's size: an 8-core B
//! sees a ≈ 6× decrease compared with running alone.

use super::{FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig};
use iobench::{run_size_sweep, FigureData, Series, SizeSweepConfig};

/// Registry entry for this figure.
pub struct Fig04;

impl Experiment for Fig04 {
    fn name(&self) -> &'static str {
        "fig04_small_vs_big"
    }

    fn description(&self) -> &'static str {
        "Small application against a big one: throughput collapse (Fig. 4)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let pattern = AccessPattern::contiguous(16.0 * MB);
    let b_sizes: Vec<u32> = if quick {
        vec![8, 48, 168, 336]
    } else {
        vec![8, 16, 24, 48, 96, 168, 252, 336]
    };
    let cfg = SizeSweepConfig {
        pfs: PfsConfig::grid5000_rennes(),
        app_a: AppConfig::new(AppId(0), "App A", 336, pattern),
        app_b: AppConfig::new(AppId(1), "App B", 8, pattern),
        b_sizes,
        threads: 0,
    };
    let points = run_size_sweep(&cfg)?;

    let mut fig = FigureData::new(
        "Figure 4 — App A on 336 cores, App B size varies, 16 MB/process, dt = 0",
        "cores of B",
        "throughput (MB/s)",
    );
    let mut a_alone = Series::new("A alone");
    let mut b_alone = Series::new("B alone");
    let mut a_obs = Series::new("A with interference");
    let mut b_obs = Series::new("B with interference");
    let mut slowdown = Series::new("B slowdown (x)");
    for p in &points {
        let x = p.b_procs as f64;
        a_alone.push(x, p.a_alone_throughput / MB);
        b_alone.push(x, p.b_alone_throughput / MB);
        a_obs.push(x, p.a_throughput / MB);
        b_obs.push(x, p.b_throughput / MB);
        slowdown.push(x, p.b_slowdown);
    }
    fig.add_series(a_alone);
    fig.add_series(b_alone);
    fig.add_series(a_obs);
    fig.add_series(b_obs);
    fig.add_series(slowdown);

    let mut out = FigureOutput::new("Figure 4 — aggregate throughput, small B against big A");
    if let Some(p) = points.first() {
        out.notes.push(format!(
            "B on {} cores: {:.1}× throughput decrease when interfering with A (paper: ~6× for 8 cores)",
            p.b_procs, p.b_slowdown
        ));
    }
    out.figures.push(fig);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_b_is_crushed_big_b_less_so() {
        let out = run(true).unwrap();
        let slowdown = out.figures[0].series("B slowdown (x)").unwrap();
        let first = slowdown.points.first().unwrap().1;
        let last = slowdown.points.last().unwrap().1;
        assert!(first > 3.0, "8-core slowdown {first}");
        assert!(last < first, "slowdown should shrink with B's size");
    }
}
