//! Figure 7 — interfering versus FCFS serialization on Surveyor.
//!
//! Two applications of the same size write 32 MB per process contiguously.
//! Panel (a): 2 × 2048 cores — the applications are big enough to saturate
//! the file system, serializing protects the first arriver and costs the
//! second no more than interference. Panel (b): 2 × 1024 cores — the
//! applications are partly client-limited, the interference is lower than
//! expected and serialization only benefits the first at the expense of the
//! second.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

fn panel(quick: bool, procs: u32, title: &str) -> Result<(FigureData, Vec<String>), Error> {
    let pattern = AccessPattern::contiguous(32.0 * MB);
    let app_a = AppConfig::new(AppId(0), "App A", procs, pattern);
    let app_b = AppConfig::new(AppId(1), "App B", procs, pattern);
    let dt_values = dts(quick, -14.0, 14.0, 2.0);

    let mut fig = FigureData::new(title, "dt (sec)", "write time (sec)");
    let mut notes = Vec::new();
    let mut expected = Series::new("Expected");
    for strategy in [Strategy::Interfere, Strategy::FcfsSerialize] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::surveyor(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series_b = Series::new(format!("App B ({})", strategy.label()));
        let mut series_a = Series::new(format!("App A ({})", strategy.label()));
        for p in &sweep.points {
            series_a.push(p.dt, p.a_io_time);
            series_b.push(p.dt, p.b_io_time);
            if strategy == Strategy::Interfere {
                expected.push(p.dt, p.b_expected);
            }
        }
        if strategy == Strategy::Interfere {
            notes.push(format!(
                "{procs} cores: stand-alone write time {:.1}s; at dt=0 interference gives {:.1}s (expected {:.1}s)",
                sweep.a_alone,
                sweep.at(0.0).map(|p| p.b_io_time).unwrap_or(f64::NAN),
                sweep.at(0.0).map(|p| p.b_expected).unwrap_or(f64::NAN),
            ));
        }
        fig.add_series(series_a);
        fig.add_series(series_b);
    }
    fig.add_series(expected);
    Ok((fig, notes))
}

/// Registry entry for this figure.
pub struct Fig07;

impl Experiment for Fig07 {
    fn name(&self) -> &'static str {
        "fig07_fcfs"
    }

    fn description(&self) -> &'static str {
        "Interfering versus FCFS serialization on Surveyor (Fig. 7)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let mut out = FigureOutput::new("Figure 7 — interfering vs FCFS on Surveyor");
    let (fig_a, notes_a) = panel(
        quick,
        2048,
        "Figure 7(a) — 2×2048 cores, 32 MB/process contiguous",
    )?;
    let (fig_b, notes_b) = panel(
        quick,
        1024,
        "Figure 7(b) — 2×1024 cores, 32 MB/process contiguous",
    )?;
    out.figures.push(fig_a);
    out.figures.push(fig_b);
    out.notes.extend(notes_a);
    out.notes.extend(notes_b);
    out.notes.push(
        "panel (b): the compound A+B tolerates the interference well (observed < expected), \
         so serialization only shifts the cost to the second application"
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_apps_interfere_small_apps_tolerate() {
        let out = run(true).unwrap();
        let a2048 = &out.figures[0];
        let a1024 = &out.figures[1];
        // 2048 cores: at dt=0 interference is close to the expected doubling.
        let interf = a2048
            .series("App B (interfering)")
            .unwrap()
            .y_at(0.0)
            .unwrap();
        let expected = a2048.series("Expected").unwrap().y_at(0.0).unwrap();
        assert!(
            interf > 0.85 * expected,
            "interf={interf} expected={expected}"
        );
        // 1024 cores: observed interference is clearly lower than expected.
        let interf = a1024
            .series("App B (interfering)")
            .unwrap()
            .y_at(0.0)
            .unwrap();
        let expected = a1024.series("Expected").unwrap().y_at(0.0).unwrap();
        assert!(
            interf < 0.85 * expected,
            "interf={interf} expected={expected}"
        );
        // FCFS protects the first arriver at positive dt.
        let x = *a2048.x_values().last().unwrap();
        let a_fcfs = a2048.series("App A (fcfs)").unwrap().y_at(x).unwrap();
        let a_interf = a2048
            .series("App A (interfering)")
            .unwrap()
            .y_at(x)
            .unwrap();
        assert!(a_fcfs <= a_interf + 1e-6);
    }
}
