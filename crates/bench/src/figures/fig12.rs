//! Figure 12 — when interference is low, delay instead of serializing.
//!
//! Two 1024-process applications write 32 MB per process contiguously on
//! Surveyor. At this size the applications are partly client-limited, so
//! the observed interference is much lower than the proportional-sharing
//! expectation (Fig. 7b); serializing the accesses is then a bad decision.
//! A bounded delay of one of the writes gives a trade-off between the
//! interfering and FCFS extremes.

use super::{dts, FigureOutput, MB};
use crate::experiment::Experiment;
use calciom::Error;
use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
use iobench::{run_delta_sweep, DeltaSweepConfig, FigureData, Series};

/// Registry entry for this figure.
pub struct Fig12;

impl Experiment for Fig12 {
    fn name(&self) -> &'static str {
        "fig12_delay"
    }

    fn description(&self) -> &'static str {
        "Bounded delay as an interference trade-off (Fig. 12)"
    }

    fn run(&self, quick: bool) -> Result<FigureOutput, Error> {
        run(quick)
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Result<FigureOutput, Error> {
    let pattern = AccessPattern::contiguous(32.0 * MB);
    let app_a = AppConfig::new(AppId(0), "App A", 1024, pattern);
    let app_b = AppConfig::new(AppId(1), "App B", 1024, pattern);
    let dt_values = dts(quick, -14.0, 14.0, 2.0);

    let mut fig = FigureData::new(
        "Figure 12 — 2×1024 cores, 32 MB/process contiguous",
        "dt (sec)",
        "write time of App B (sec)",
    );
    let mut sum_fig = FigureData::new(
        "Figure 12 (companion) — sum of write times of A and B",
        "dt (sec)",
        "A + B write time (sec)",
    );
    let mut notes = Vec::new();
    for (strategy, label) in [
        (Strategy::Interfere, "Interfering"),
        (Strategy::FcfsSerialize, "FCFS"),
        (Strategy::Delay { max_wait_secs: 4.0 }, "Delayed"),
    ] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::surveyor(),
            app_a.clone(),
            app_b.clone(),
            dt_values.clone(),
        )
        .with_strategy(strategy);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series_b = Series::new(label);
        let mut series_sum = Series::new(label);
        for p in &sweep.points {
            series_b.push(p.dt, p.b_io_time);
            series_sum.push(p.dt, p.a_io_time + p.b_io_time);
        }
        notes.push(format!(
            "{label}: worst B write time {:.1}s, mean A+B {:.1}s",
            series_b.max_y().unwrap_or(f64::NAN),
            series_sum.mean_y().unwrap_or(f64::NAN)
        ));
        fig.add_series(series_b);
        sum_fig.add_series(series_sum);
    }

    let mut out = FigureOutput::new("Figure 12 — bounded delay as a trade-off");
    out.figures.push(fig);
    out.figures.push(sum_fig);
    out.notes.extend(notes);
    out.notes.push(
        "the interference is lower than expected at this scale, so full FCFS serialization hurts \
         the second application more than it helps the pair; a bounded delay sits in between"
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_sits_between_interfering_and_fcfs_for_b() {
        let out = run(true).unwrap();
        let fig = &out.figures[0];
        let x = *fig
            .x_values()
            .iter()
            .find(|&&x| x >= 0.0)
            .expect("a non-negative dt");
        let interfering = fig.series("Interfering").unwrap().y_at(x).unwrap();
        let fcfs = fig.series("FCFS").unwrap().y_at(x).unwrap();
        let delayed = fig.series("Delayed").unwrap().y_at(x).unwrap();
        assert!(
            interfering <= delayed + 1e-6 && delayed <= fcfs + 1e-6,
            "expected interfering ({interfering}) <= delayed ({delayed}) <= fcfs ({fcfs})"
        );
        // FCFS is a genuinely bad deal for B at this scale: clearly worse
        // than just interfering.
        assert!(
            fcfs > 1.15 * interfering,
            "fcfs {fcfs} vs interfering {interfering}"
        );
    }
}
