//! Shared command-line entry points for the figure binaries.
//!
//! Every `src/bin/fig*` binary is a one-line call into [`figure_main`];
//! the `all_figures` binary goes through [`all_figures_main`]. Both
//! resolve experiments through the [`Registry`], so binaries never
//! duplicate argument handling or experiment wiring.

use crate::Registry;
use std::process::ExitCode;

/// Entry point of a single-figure binary: runs the named experiment,
/// honouring a `--quick` argument for the reduced sweep.
pub fn figure_main(name: &str) -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    run_named(&Registry::standard(), &[name], quick)
}

/// Runs the given experiments in order, printing each rendered figure.
/// Stops with a failure exit code at the first unknown name or failed run.
pub fn run_named(registry: &Registry, names: &[&str], quick: bool) -> ExitCode {
    for name in names {
        let Some(experiment) = registry.get(name) else {
            eprintln!(
                "unknown experiment '{name}'; run `all_figures list` for the available names"
            );
            return ExitCode::FAILURE;
        };
        match experiment.run(quick) {
            Ok(output) => println!("{}", output.render()),
            Err(error) => {
                eprintln!("{name}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Entry point of the `all_figures` binary.
///
/// * `all_figures` — run every registered experiment in paper order;
/// * `all_figures list` — print the registered names and descriptions;
/// * `all_figures <name>...` — run the named experiments only;
/// * `--quick` (combinable with the above) — reduced sweeps.
pub fn all_figures_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let registry = Registry::standard();

    if args.iter().any(|a| a == "list") {
        for experiment in registry.experiments() {
            println!("{:<32} {}", experiment.name(), experiment.description());
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<&str> = args
        .iter()
        .filter(|a| a.as_str() != "--quick")
        .map(String::as_str)
        .collect();
    if names.is_empty() {
        for name in registry.names() {
            eprintln!("running {name} ...");
            let code = run_named(&registry, &[name], quick);
            if code != ExitCode::SUCCESS {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }
    run_named(&registry, &names, quick)
}
