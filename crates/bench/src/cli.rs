//! Shared command-line entry points for the figure binaries.
//!
//! Every `src/bin/fig*` binary is a one-line call into [`figure_main`];
//! the `all_figures` binary goes through [`all_figures_main`]. Both
//! resolve experiments through the [`Registry`], so binaries never
//! duplicate argument handling or experiment wiring.
//!
//! Flags (combinable, honoured by every experiment that supports them):
//!
//! * `--quick` — reduced parameter sweeps (the CI configuration);
//! * `--trace` — record the experiment's key sessions, verify each trace
//!   survives its text codec exactly (replay being a pure fold, the
//!   decoded copy then also replays to the same report), and print a
//!   `codec round-trip OK` line per trace;
//! * `--timeline` — print the derived Gantt/bandwidth timeline of each
//!   key session;
//! * `--medium <label>` — run mix-based sweeps on the named
//!   bandwidth-sharing medium (`max-min` or `fair-fast`).

use crate::experiment::RunOptions;
use crate::Registry;
use calciom::{SharingModel, Trace};
use std::fmt;
use std::process::ExitCode;

/// Why the shared flag parser rejected an argument stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// A token starting with `--` that no entry point knows.
    UnknownFlag(String),
    /// `--policy` at the end of the stream, or followed by another flag.
    MissingPolicySpec,
    /// `--medium` at the end of the stream, or followed by another flag.
    MissingMediumLabel,
    /// `--medium` with a label no sharing medium carries.
    UnknownMedium(String),
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::UnknownFlag(flag) => write!(
                f,
                "bad flag '{flag}' (expected --quick, --trace, --timeline, \
                 --policy <spec>, --medium <label>)"
            ),
            FlagError::MissingPolicySpec => {
                write!(f, "--policy needs a <spec> argument, e.g. --policy rr(3s)")
            }
            FlagError::MissingMediumLabel => {
                write!(
                    f,
                    "--medium needs a <label> argument, e.g. --medium fair-fast"
                )
            }
            FlagError::UnknownMedium(label) => {
                write!(
                    f,
                    "unknown medium '{label}' (expected max-min or fair-fast)"
                )
            }
        }
    }
}

impl std::error::Error for FlagError {}

/// Entry point of a single-figure binary: runs the named experiment,
/// honouring the shared flags (`--quick`, `--trace`, `--timeline`).
pub fn figure_main(name: &str) -> ExitCode {
    let opts = match parse_options_or_fail(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    run_named(&Registry::standard(), &[name], &opts)
}

/// [`parse_options`] with the CLI error convention applied: a flag error
/// prints its canonical message ([`FlagError`]'s `Display`, the single
/// home of the flag list) and yields the failure exit code. Every binary
/// entry point goes through this.
pub fn parse_options_or_fail(args: impl Iterator<Item = String>) -> Result<RunOptions, ExitCode> {
    parse_options(args).map_err(|error| {
        eprintln!("{error}");
        ExitCode::FAILURE
    })
}

/// Parses the shared flags out of an argument stream. [`parse_args`]
/// with the leftover tokens discarded — for entry points that take no
/// positional arguments.
pub fn parse_options(args: impl Iterator<Item = String>) -> Result<RunOptions, FlagError> {
    parse_args(args).map(|(opts, _)| opts)
}

/// Parses the shared flags and returns them together with the leftover
/// non-flag tokens (experiment names / subcommands) — the *single* place
/// that knows which flags consume a value, so callers never re-derive
/// it. An *unknown* flag is an error — a typoed `--trcae` must fail
/// loudly, not silently run without tracing.
///
/// `--policy <spec>` is repeatable and takes the next token verbatim
/// (e.g. `--policy rr(3s) --policy fcfs`); experiments that compare
/// arbitration policies restrict their sweep to the named specs.
pub fn parse_args(
    mut args: impl Iterator<Item = String>,
) -> Result<(RunOptions, Vec<String>), FlagError> {
    let mut opts = RunOptions::default();
    let mut names = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trace" => opts.trace = true,
            "--timeline" => opts.timeline = true,
            "--policy" => match args.next() {
                Some(spec) if !spec.starts_with("--") => opts.policies.push(spec),
                _ => return Err(FlagError::MissingPolicySpec),
            },
            "--medium" => match args.next() {
                Some(label) if !label.starts_with("--") => match SharingModel::from_label(&label) {
                    Some(medium) => opts.medium = Some(medium),
                    None => return Err(FlagError::UnknownMedium(label)),
                },
                _ => return Err(FlagError::MissingMediumLabel),
            },
            other if other.starts_with("--") => {
                return Err(FlagError::UnknownFlag(other.to_string()))
            }
            _ => names.push(arg),
        }
    }
    Ok((opts, names))
}

/// Runs the given experiments in order, printing each rendered figure and
/// any requested observability artifacts. Stops with a failure exit code
/// at the first unknown name, failed run, or trace that does not survive
/// its own codec.
pub fn run_named(registry: &Registry, names: &[&str], opts: &RunOptions) -> ExitCode {
    for name in names {
        let Some(experiment) = registry.get(name) else {
            eprintln!(
                "unknown experiment '{name}'; run `all_figures list` for the available names"
            );
            return ExitCode::FAILURE;
        };
        match experiment.run_with(opts) {
            Ok(output) => {
                println!("{}", output.figure.render());
                for (label, trace) in &output.traces {
                    if !verify_trace(name, label, trace) {
                        return ExitCode::FAILURE;
                    }
                }
                for (label, timeline) in &output.timelines {
                    println!("==== {name} timeline [{label}] ====");
                    println!("{}", timeline.render_text());
                }
            }
            Err(error) => {
                eprintln!("{name}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Round-trips a recorded trace through the text codec and checks the
/// decoded copy is identical (which, replay being a pure fold of the
/// trace, also guarantees it replays to the same report). Prints one
/// status line.
fn verify_trace(name: &str, label: &str, trace: &Trace) -> bool {
    let text = trace.to_text();
    match Trace::from_text(&text) {
        Ok(decoded) if &decoded == trace => {
            println!(
                "trace {name} [{label}]: {} events, codec round-trip OK",
                trace.len()
            );
            true
        }
        Ok(_) => {
            eprintln!("trace {name} [{label}]: codec round-trip diverged");
            false
        }
        Err(error) => {
            eprintln!("trace {name} [{label}]: codec round-trip failed: {error}");
            false
        }
    }
}

/// Entry point of the `all_figures` binary.
///
/// * `all_figures` — run every registered experiment in paper order;
/// * `all_figures list` — print the registered names and descriptions;
/// * `all_figures list-policies` — print the arbitration-policy registry;
/// * `all_figures <name>...` — run the named experiments only;
/// * `--quick` / `--trace` / `--timeline` (combinable with the above) —
///   reduced sweeps / recorded+verified traces / printed timelines;
/// * `--policy <spec>` (repeatable) — restrict policy-comparison
///   experiments to the named arbitration policies;
/// * `--medium <label>` — run mix-based sweeps on the named
///   bandwidth-sharing medium.
pub fn all_figures_main() -> ExitCode {
    let (opts, tokens) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let registry = Registry::standard();

    if tokens.iter().any(|a| a == "list") {
        for experiment in registry.experiments() {
            println!("{:<32} {}", experiment.name(), experiment.description());
        }
        return ExitCode::SUCCESS;
    }

    if tokens.iter().any(|a| a == "list-policies") {
        let policies = calciom::PolicyRegistry::standard();
        for name in policies.names() {
            println!(
                "{:<18} {}",
                name,
                policies.description(name).unwrap_or_default()
            );
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<&str> = tokens.iter().map(String::as_str).collect();
    if names.is_empty() {
        for name in registry.names() {
            eprintln!("running {name} ...");
            let code = run_named(&registry, &[name], &opts);
            if code != ExitCode::SUCCESS {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }
    run_named(&registry, &names, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_in_any_mix() {
        let parse = |args: &[&str]| parse_options(args.iter().map(|a| a.to_string()));
        assert_eq!(parse(&[]), Ok(RunOptions::default()));
        let all = parse(&["fig05_timeline", "--quick", "--timeline", "--trace"]).unwrap();
        assert!(all.quick && all.trace && all.timeline);
        let quick = parse(&["--quick"]).unwrap();
        assert!(quick.quick && !quick.trace && !quick.timeline);
        // A typoed flag fails loudly instead of silently running the full
        // sweep without the requested observation.
        assert_eq!(
            parse(&["--trcae"]),
            Err(FlagError::UnknownFlag("--trcae".to_string()))
        );
    }

    #[test]
    fn policy_flags_collect_their_specs() {
        let parse = |args: &[&str]| parse_options(args.iter().map(|a| a.to_string()));
        let opts = parse(&[
            "fig14_policies",
            "--policy",
            "rr(3s)",
            "--quick",
            "--policy",
            "fcfs",
        ])
        .unwrap();
        assert!(opts.quick);
        assert_eq!(
            opts.policies,
            vec!["rr(3s)".to_string(), "fcfs".to_string()]
        );
        // The collected texts parse into real specs…
        let specs = opts.parsed_policies().unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].to_text(), "rr(3s)");
        // …and a missing argument fails loudly, with its own error case.
        assert_eq!(parse(&["--policy"]), Err(FlagError::MissingPolicySpec));
        assert_eq!(
            parse(&["--policy", "--quick"]),
            Err(FlagError::MissingPolicySpec)
        );
    }

    #[test]
    fn medium_flag_parses_and_validates_its_label() {
        let parse = |args: &[&str]| parse_options(args.iter().map(|a| a.to_string()));
        let opts = parse(&["fig14_policies", "--medium", "fair-fast", "--quick"]).unwrap();
        assert_eq!(opts.medium, Some(SharingModel::FairFast));
        assert_eq!(
            parse(&["--medium", "max-min"]).unwrap().medium,
            Some(SharingModel::MaxMin)
        );
        assert_eq!(parse(&[]).unwrap().medium, None);
        // A typoed label fails loudly, as does a missing one.
        assert_eq!(
            parse(&["--medium", "warp"]),
            Err(FlagError::UnknownMedium("warp".to_string()))
        );
        assert_eq!(parse(&["--medium"]), Err(FlagError::MissingMediumLabel));
        assert_eq!(
            parse(&["--medium", "--quick"]),
            Err(FlagError::MissingMediumLabel)
        );
    }

    #[test]
    fn run_named_honours_the_medium_override() {
        // fig14 restricted to one policy on the fair-fast medium runs
        // through the same CLI path the CI smoke uses.
        let registry = Registry::standard();
        let opts = RunOptions::new(true)
            .with_policy("fcfs")
            .with_medium(SharingModel::FairFast);
        let code = run_named(&registry, &["fig14_policies"], &opts);
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn parse_args_separates_names_from_policy_specs() {
        // A `--policy` spec is the flag's argument, never an experiment
        // name — the one parser owns that rule for every entry point.
        let (opts, names) = parse_args(
            [
                "fig14_policies",
                "--policy",
                "rr(3s)",
                "--quick",
                "sec2b_probability",
            ]
            .iter()
            .map(|a| a.to_string()),
        )
        .unwrap();
        assert_eq!(names, vec!["fig14_policies", "sec2b_probability"]);
        assert_eq!(opts.policies, vec!["rr(3s)".to_string()]);
        assert!(opts.quick);
    }

    #[test]
    fn run_named_honours_policy_restriction() {
        // fig14 restricted to two policies runs quickly through the same
        // CLI path CI uses.
        let registry = Registry::standard();
        let opts = RunOptions::new(true)
            .with_policy("fcfs")
            .with_policy("rr(5s)");
        let code = run_named(&registry, &["fig14_policies"], &opts);
        assert_eq!(code, ExitCode::SUCCESS);
        // A malformed spec surfaces as a failing exit code, not a crash.
        let bad = RunOptions::new(true).with_policy("rr(5s");
        let code = run_named(&registry, &["fig14_policies"], &bad);
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn run_named_rejects_unknown_experiments() {
        let registry = Registry::standard();
        let code = run_named(&registry, &["fig99_warp"], &RunOptions::new(true));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn run_named_prints_observed_fig05() {
        // Exercises the full CLI path CI uses, including trace
        // verification (failure would return a failing exit code).
        let registry = Registry::standard();
        let opts = RunOptions::new(true).with_trace().with_timeline();
        let code = run_named(&registry, &["fig05_timeline"], &opts);
        assert_eq!(code, ExitCode::SUCCESS);
    }
}
