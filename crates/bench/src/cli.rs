//! Shared command-line entry points for the figure binaries.
//!
//! Every `src/bin/fig*` binary is a one-line call into [`figure_main`];
//! the `all_figures` binary goes through [`all_figures_main`]. Both
//! resolve experiments through the [`Registry`], so binaries never
//! duplicate argument handling or experiment wiring.
//!
//! Flags (combinable, honoured by every experiment that supports them):
//!
//! * `--quick` — reduced parameter sweeps (the CI configuration);
//! * `--trace` — record the experiment's key sessions, verify each trace
//!   survives its text codec exactly (replay being a pure fold, the
//!   decoded copy then also replays to the same report), and print a
//!   `codec round-trip OK` line per trace;
//! * `--timeline` — print the derived Gantt/bandwidth timeline of each
//!   key session.

use crate::experiment::RunOptions;
use crate::Registry;
use calciom::Trace;
use std::process::ExitCode;

/// Entry point of a single-figure binary: runs the named experiment,
/// honouring the shared flags (`--quick`, `--trace`, `--timeline`).
pub fn figure_main(name: &str) -> ExitCode {
    let opts = match parse_options_or_fail(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    run_named(&Registry::standard(), &[name], &opts)
}

/// [`parse_options`] with the CLI error convention applied: an unknown
/// flag prints the one canonical message and yields the failure exit
/// code. Every binary entry point goes through this, so the flag list in
/// the message has a single home.
pub fn parse_options_or_fail(args: impl Iterator<Item = String>) -> Result<RunOptions, ExitCode> {
    parse_options(args).map_err(|unknown| {
        eprintln!("unknown flag '{unknown}' (expected --quick, --trace, --timeline)");
        ExitCode::FAILURE
    })
}

/// Parses the shared flags out of an argument stream. Non-flag tokens are
/// left for the caller (experiment names); an *unknown* flag is an error —
/// a typoed `--trcae` must fail loudly, not silently run without tracing.
pub fn parse_options(args: impl Iterator<Item = String>) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    for arg in args {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trace" => opts.trace = true,
            "--timeline" => opts.timeline = true,
            other if other.starts_with("--") => return Err(other.to_string()),
            _ => {}
        }
    }
    Ok(opts)
}

/// Runs the given experiments in order, printing each rendered figure and
/// any requested observability artifacts. Stops with a failure exit code
/// at the first unknown name, failed run, or trace that does not survive
/// its own codec.
pub fn run_named(registry: &Registry, names: &[&str], opts: &RunOptions) -> ExitCode {
    for name in names {
        let Some(experiment) = registry.get(name) else {
            eprintln!(
                "unknown experiment '{name}'; run `all_figures list` for the available names"
            );
            return ExitCode::FAILURE;
        };
        match experiment.run_with(opts) {
            Ok(output) => {
                println!("{}", output.figure.render());
                for (label, trace) in &output.traces {
                    if !verify_trace(name, label, trace) {
                        return ExitCode::FAILURE;
                    }
                }
                for (label, timeline) in &output.timelines {
                    println!("==== {name} timeline [{label}] ====");
                    println!("{}", timeline.render_text());
                }
            }
            Err(error) => {
                eprintln!("{name}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Round-trips a recorded trace through the text codec and checks the
/// decoded copy is identical (which, replay being a pure fold of the
/// trace, also guarantees it replays to the same report). Prints one
/// status line.
fn verify_trace(name: &str, label: &str, trace: &Trace) -> bool {
    let text = trace.to_text();
    match Trace::from_text(&text) {
        Ok(decoded) if &decoded == trace => {
            println!(
                "trace {name} [{label}]: {} events, codec round-trip OK",
                trace.len()
            );
            true
        }
        Ok(_) => {
            eprintln!("trace {name} [{label}]: codec round-trip diverged");
            false
        }
        Err(error) => {
            eprintln!("trace {name} [{label}]: codec round-trip failed: {error}");
            false
        }
    }
}

/// Entry point of the `all_figures` binary.
///
/// * `all_figures` — run every registered experiment in paper order;
/// * `all_figures list` — print the registered names and descriptions;
/// * `all_figures <name>...` — run the named experiments only;
/// * `--quick` / `--trace` / `--timeline` (combinable with the above) —
///   reduced sweeps / recorded+verified traces / printed timelines.
pub fn all_figures_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options_or_fail(args.iter().cloned()) {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    let registry = Registry::standard();

    if args.iter().any(|a| a == "list") {
        for experiment in registry.experiments() {
            println!("{:<32} {}", experiment.name(), experiment.description());
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if names.is_empty() {
        for name in registry.names() {
            eprintln!("running {name} ...");
            let code = run_named(&registry, &[name], &opts);
            if code != ExitCode::SUCCESS {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }
    run_named(&registry, &names, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_in_any_mix() {
        let parse = |args: &[&str]| parse_options(args.iter().map(|a| a.to_string()));
        assert_eq!(parse(&[]), Ok(RunOptions::default()));
        let all = parse(&["fig05_timeline", "--quick", "--timeline", "--trace"]).unwrap();
        assert!(all.quick && all.trace && all.timeline);
        let quick = parse(&["--quick"]).unwrap();
        assert!(quick.quick && !quick.trace && !quick.timeline);
        // A typoed flag fails loudly instead of silently running the full
        // sweep without the requested observation.
        assert_eq!(parse(&["--trcae"]), Err("--trcae".to_string()));
    }

    #[test]
    fn run_named_rejects_unknown_experiments() {
        let registry = Registry::standard();
        let code = run_named(&registry, &["fig99_warp"], &RunOptions::new(true));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn run_named_prints_observed_fig05() {
        // Exercises the full CLI path CI uses, including trace
        // verification (failure would return a failing exit code).
        let registry = Registry::standard();
        let opts = RunOptions::new(true).with_trace().with_timeline();
        let code = run_named(&registry, &["fig05_timeline"], &opts);
        assert_eq!(code, ExitCode::SUCCESS);
    }
}
