//! # calciom-bench — figure reproduction harness
//!
//! One module per figure of the paper's evaluation. Each module exposes a
//! `run(quick: bool)` function that executes the experiment and returns a
//! [`FigureOutput`] (the same curves/rows the paper plots, plus free-form
//! notes) or a typed [`calciom::Error`], and an [`Experiment`]
//! implementation that plugs it into the [`Registry`]. The binaries in
//! `src/bin/` are thin [`cli`] entry points over the registry; the
//! Criterion benches in `benches/` measure the cost of representative
//! slices of each experiment.
//!
//! `quick = true` runs a reduced parameter sweep (fewer `dt` points, fewer
//! iterations) so that the whole suite stays fast in CI; `quick = false`
//! reproduces the figures at full resolution.

#![warn(missing_docs)]

pub mod cli;
pub mod experiment;
pub mod figures;

pub use experiment::{Experiment, ExperimentOutput, Registry, RunOptions};
pub use figures::FigureOutput;
