//! # calciom-bench — figure reproduction harness
//!
//! One module per figure of the paper's evaluation. Each module exposes a
//! `run(quick: bool)` function that executes the experiment and returns a
//! [`FigureOutput`]: the same curves/rows the paper plots, plus free-form
//! notes (headline numbers, decision boundaries). The binaries in
//! `src/bin/` print these tables; the Criterion benches in `benches/`
//! measure the cost of representative slices of each experiment.
//!
//! `quick = true` runs a reduced parameter sweep (fewer `dt` points, fewer
//! iterations) so that the whole suite stays fast in CI; `quick = false`
//! reproduces the figures at full resolution.

#![warn(missing_docs)]

pub mod figures;

pub use figures::FigureOutput;

/// A figure experiment entry point: `quick` in, rendered output out.
pub type ExperimentFn = fn(bool) -> FigureOutput;

/// All figure experiments, in paper order, as `(identifier, runner)` pairs.
/// Used by the `all_figures` binary and by integration tests.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig01_workload", figures::fig01::run as ExperimentFn),
        ("sec2b_probability", figures::sec2b::run),
        ("fig02_delta_equal", figures::fig02::run),
        ("fig03_cache", figures::fig03::run),
        ("fig04_small_vs_big", figures::fig04::run),
        ("fig06_split_delta", figures::fig06::run),
        ("fig07_fcfs", figures::fig07::run),
        ("fig08_collective", figures::fig08::run),
        ("fig09_policies", figures::fig09::run),
        ("fig10_interrupt_granularity", figures::fig10::run),
        ("fig11_dynamic", figures::fig11::run),
        ("fig12_delay", figures::fig12::run),
        ("ablation_gamma", figures::ablation::run_gamma),
        ("ablation_share_policy", figures::ablation::run_share_policy),
        (
            "ablation_coordination_overhead",
            figures::ablation::run_overhead,
        ),
    ]
}
