//! Synthetic Intrepid-like job-trace generator.
//!
//! The original `ANL-Intrepid-2009-1` trace from the Parallel Workload
//! Archive cannot be redistributed with this repository, so Fig. 1 is
//! reproduced from a synthetic trace whose marginal distributions are
//! calibrated to the published plots: job sizes are powers of two between
//! 256 and 131072 cores with roughly half of the jobs (and half of the
//! machine time) at or below 2048 cores, and enough jobs run concurrently
//! that the machine hosts tens of jobs at any instant.

use crate::trace::{Job, JobTrace};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticTraceConfig {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Total machine size in cores (Intrepid: 163 840).
    pub machine_cores: u32,
    /// Mean inter-arrival time between job starts, in seconds.
    pub mean_interarrival_secs: f64,
    /// Log-normal run-time parameters (mean / sigma of the underlying
    /// normal, in log-seconds).
    pub runtime_log_mean: f64,
    /// Log-normal run-time sigma.
    pub runtime_log_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticTraceConfig {
    fn default() -> Self {
        SyntheticTraceConfig {
            jobs: 20_000,
            machine_cores: 163_840,
            // ~8 months of trace with 20k jobs → about 1000 s between starts;
            // shortened so the default generation stays fast while keeping
            // tens of concurrent jobs.
            mean_interarrival_secs: 600.0,
            runtime_log_mean: 8.6, // median ≈ 5.4 ks ≈ 1.5 h
            runtime_log_sigma: 1.3,
            seed: 42,
        }
    }
}

/// Job-size buckets (cores) and their probabilities, calibrated to the
/// histogram of Fig. 1(a): half of the jobs are at or below 2048 cores.
pub const SIZE_BUCKETS: [(u32, f64); 10] = [
    (256, 0.17),
    (512, 0.13),
    (1024, 0.11),
    (2048, 0.12),
    (4096, 0.16),
    (8192, 0.12),
    (16384, 0.09),
    (32768, 0.05),
    (65536, 0.03),
    (131072, 0.02),
];

/// Generates a synthetic Intrepid-like trace.
pub fn generate(cfg: &SyntheticTraceConfig) -> JobTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut clock = 0.0_f64;
    let total_weight: f64 = SIZE_BUCKETS.iter().map(|(_, w)| w).sum();

    for id in 0..cfg.jobs {
        // Poisson arrivals of job starts.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        clock += -cfg.mean_interarrival_secs * u.ln();

        // Categorical job size.
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut procs = SIZE_BUCKETS[0].0;
        for (size, weight) in SIZE_BUCKETS {
            if pick < weight {
                procs = size;
                break;
            }
            pick -= weight;
        }
        let procs = procs.min(cfg.machine_cores);

        // Log-normal run time, with larger jobs running somewhat longer
        // (weak positive correlation, as in production traces).
        let normal: f64 = {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let size_boost = (procs as f64 / 2048.0).ln().max(0.0) * 0.15;
        let run_time = (cfg.runtime_log_mean + size_boost + cfg.runtime_log_sigma * normal).exp();
        let run_time = run_time.clamp(60.0, 7.0 * 86_400.0);

        jobs.push(Job {
            id: id as u64,
            submit: clock,
            start: clock,
            run_time,
            procs,
        });
    }
    JobTrace::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SyntheticTraceConfig {
        SyntheticTraceConfig {
            jobs: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_number_of_jobs() {
        let t = generate(&small_cfg());
        assert_eq!(t.len(), 5_000);
        assert!(t.span() > 0.0);
    }

    #[test]
    fn half_of_jobs_are_small() {
        // The paper: "half the jobs on this platform run on less than 2048
        // cores", and the same holds when weighting by duration.
        let t = generate(&small_cfg());
        let frac = t.fraction_of_jobs_at_most(2048);
        assert!((0.42..=0.62).contains(&frac), "fraction was {frac}");
        let tw = t.time_weighted_fraction_at_most(2048);
        assert!(
            (0.35..=0.65).contains(&tw),
            "time-weighted fraction was {tw}"
        );
    }

    #[test]
    fn sizes_are_valid_buckets() {
        let t = generate(&small_cfg());
        let valid: std::collections::BTreeSet<u32> = SIZE_BUCKETS.iter().map(|(s, _)| *s).collect();
        assert!(t.jobs().iter().all(|j| valid.contains(&j.procs)));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a, b);
        let c = generate(&SyntheticTraceConfig {
            seed: 7,
            ..small_cfg()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn run_times_are_bounded() {
        let t = generate(&small_cfg());
        assert!(t
            .jobs()
            .iter()
            .all(|j| j.run_time >= 60.0 && j.run_time <= 7.0 * 86_400.0));
    }

    #[test]
    fn bucket_weights_sum_to_one() {
        let total: f64 = SIZE_BUCKETS.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
