//! # workloads — job traces and the case for coordination
//!
//! Section II of the CALCioM paper motivates cross-application coordination
//! with scheduler traces from Argonne's Intrepid: many relatively small
//! jobs run concurrently at any instant, so the probability that two of
//! them perform I/O at the same time is high. This crate reproduces that
//! analysis:
//!
//! * [`trace`] — job-trace representation and a parser for the Standard
//!   Workload Format used by the Parallel Workload Archive.
//! * [`synthetic`] — a synthetic Intrepid-like trace generator calibrated
//!   to the published Fig. 1 distributions (the original trace is not
//!   redistributable).
//! * [`concurrency`] — the time-weighted distribution of the number of
//!   concurrently running jobs (Fig. 1b).
//! * [`probability`] — the Section II-B model:
//!   `P(another is doing I/O) = 1 − Σ_n P(X=n)(1−E[µ])^n`.
//! * [`machine_mix`] — the [`MachineMix`] generator: N-application
//!   machine-level mixes (seeded-random sizes, periods, start jitter)
//!   packaged as runnable `calciom` scenarios — the scale input of the
//!   `fig13_scale` experiment.
//! * [`cluster_mix`] — the [`ClusterMix`] generator: M machines ×
//!   N applications over one shared PFS, packaged either flat or as a
//!   hierarchical arbiter tree — the input of the `fig15_cluster`
//!   experiment.
//!
//! ## Example
//!
//! ```
//! use workloads::{
//!     concurrency::ConcurrencyDistribution,
//!     probability::probability_concurrent_io,
//!     synthetic::{generate, SyntheticTraceConfig},
//! };
//!
//! let trace = generate(&SyntheticTraceConfig { jobs: 2_000, ..Default::default() });
//! let concurrency = ConcurrencyDistribution::from_trace(&trace);
//! let p = probability_concurrent_io(&concurrency, 0.05);
//! assert!(p > 0.2, "interference should be frequent, got {p}");
//! ```

#![warn(missing_docs)]

pub mod cluster_mix;
pub mod concurrency;
pub mod machine_mix;
pub mod probability;
pub mod synthetic;
pub mod trace;

pub use cluster_mix::ClusterMix;
pub use concurrency::ConcurrencyDistribution;
pub use machine_mix::MachineMix;
pub use probability::{probability_concurrent_io, probability_second_arrives_during_first};
pub use synthetic::{generate, SyntheticTraceConfig, SIZE_BUCKETS};
pub use trace::{Job, JobTrace, TraceParseError};
