//! Job traces.
//!
//! The paper motivates cross-application interference with eight months of
//! job-scheduler traces from Argonne's Intrepid (`ANL-Intrepid-2009-1` from
//! the Parallel Workload Archive), showing that half of the jobs use at
//! most 2048 cores and that many jobs run concurrently at any instant
//! (Fig. 1). This module provides the trace representation, a parser for
//! the Standard Workload Format (SWF) used by the archive, and the derived
//! statistics.

use serde::{Deserialize, Serialize};

/// A problem found while parsing a Standard Workload Format document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A non-comment line had fewer than the five mandatory SWF fields.
    TooFewFields {
        /// 1-based line number of the offending line.
        line: usize,
        /// Number of fields actually present.
        got: usize,
    },
    /// A field could not be parsed as a number.
    InvalidNumber {
        /// 1-based line number of the offending line.
        line: usize,
        /// The unparsable field text.
        value: String,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::TooFewFields { line, got } => {
                write!(f, "line {line}: expected at least 5 SWF fields, got {got}")
            }
            TraceParseError::InvalidNumber { line, value } => {
                write!(f, "line {line}: invalid number '{value}'")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// One job from a scheduler trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identifier.
    pub id: u64,
    /// Submission time in seconds since the start of the trace.
    pub submit: f64,
    /// Start time in seconds since the start of the trace.
    pub start: f64,
    /// Wall-clock run time in seconds.
    pub run_time: f64,
    /// Number of allocated processors (cores).
    pub procs: u32,
}

impl Job {
    /// End time of the job.
    pub fn end(&self) -> f64 {
        self.start + self.run_time
    }
}

/// A collection of jobs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    jobs: Vec<Job>,
}

impl JobTrace {
    /// Creates a trace from a list of jobs.
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        JobTrace { jobs }
    }

    /// The jobs, sorted by start time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total core-seconds consumed by the trace.
    pub fn core_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.procs as f64 * j.run_time).sum()
    }

    /// Time span covered by the trace (first start to last end).
    pub fn span(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let first = self
            .jobs
            .iter()
            .map(|j| j.start)
            .fold(f64::INFINITY, f64::min);
        let last = self.jobs.iter().map(|j| j.end()).fold(0.0, f64::max);
        (last - first).max(0.0)
    }

    /// Fraction of jobs with at most `procs` processors.
    pub fn fraction_of_jobs_at_most(&self, procs: u32) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.procs <= procs).count() as f64 / self.jobs.len() as f64
    }

    /// Fraction of machine time (job duration weighted) used by jobs with
    /// at most `procs` processors — the paper notes that half of Intrepid's
    /// machine time goes to jobs of at most 2048 cores.
    pub fn time_weighted_fraction_at_most(&self, procs: u32) -> f64 {
        let total: f64 = self.jobs.iter().map(|j| j.run_time).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.jobs
            .iter()
            .filter(|j| j.procs <= procs)
            .map(|j| j.run_time)
            .sum::<f64>()
            / total
    }

    /// Parses a Standard Workload Format (SWF) document. Lines starting
    /// with `;` are comments. Fields (whitespace separated, 1-based as in
    /// the SWF specification): 1 job id, 2 submit time, 3 wait time, 4 run
    /// time, 5 allocated processors. Jobs with non-positive run time or
    /// processor count are skipped (failed/cancelled entries).
    pub fn parse_swf(text: &str) -> Result<JobTrace, TraceParseError> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 5 {
                return Err(TraceParseError::TooFewFields {
                    line: lineno + 1,
                    got: fields.len(),
                });
            }
            let parse = |idx: usize| -> Result<f64, TraceParseError> {
                fields[idx]
                    .parse::<f64>()
                    .map_err(|_| TraceParseError::InvalidNumber {
                        line: lineno + 1,
                        value: fields[idx].to_string(),
                    })
            };
            let id = parse(0)? as u64;
            let submit = parse(1)?;
            let wait = parse(2)?.max(0.0);
            let run_time = parse(3)?;
            let procs = parse(4)?;
            if run_time <= 0.0 || procs <= 0.0 {
                continue;
            }
            jobs.push(Job {
                id,
                submit,
                start: submit + wait,
                run_time,
                procs: procs as u32,
            });
        }
        Ok(JobTrace::new(jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> JobTrace {
        JobTrace::new(vec![
            Job {
                id: 1,
                submit: 0.0,
                start: 0.0,
                run_time: 100.0,
                procs: 256,
            },
            Job {
                id: 2,
                submit: 10.0,
                start: 20.0,
                run_time: 50.0,
                procs: 2048,
            },
            Job {
                id: 3,
                submit: 30.0,
                start: 60.0,
                run_time: 200.0,
                procs: 8192,
            },
            Job {
                id: 4,
                submit: 40.0,
                start: 90.0,
                run_time: 10.0,
                procs: 512,
            },
        ])
    }

    #[test]
    fn basic_statistics() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.span(), 260.0);
        assert_eq!(
            t.core_seconds(),
            256.0 * 100.0 + 2048.0 * 50.0 + 8192.0 * 200.0 + 512.0 * 10.0
        );
    }

    #[test]
    fn job_size_fractions() {
        let t = sample_trace();
        assert_eq!(t.fraction_of_jobs_at_most(2048), 0.75);
        assert_eq!(t.fraction_of_jobs_at_most(100), 0.0);
        let tw = t.time_weighted_fraction_at_most(2048);
        assert!((tw - 160.0 / 360.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = JobTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.span(), 0.0);
        assert_eq!(t.fraction_of_jobs_at_most(1024), 0.0);
        assert_eq!(t.time_weighted_fraction_at_most(1024), 0.0);
    }

    #[test]
    fn parses_swf_with_comments_and_skips_invalid_jobs() {
        let text = "\
; UnixStartTime: 1231135224
; MaxNodes: 40960
1 0 5 3600 1024 0 0 0 0 0 1 1 1 0 0 0 0 0
2 100 0 -1 512 0 0 0 0 0 0 1 1 0 0 0 0 0
3 200 10 120 0 0 0 0 0 0 1 1 1 0 0 0 0 0
4 300 60 7200 16384 0 0 0 0 0 1 1 1 0 0 0 0 0
";
        let t = JobTrace::parse_swf(text).unwrap();
        assert_eq!(t.len(), 2, "jobs 2 (failed) and 3 (zero procs) skipped");
        assert_eq!(t.jobs()[0].id, 1);
        assert_eq!(t.jobs()[0].start, 5.0);
        assert_eq!(t.jobs()[1].procs, 16384);
        assert_eq!(t.jobs()[1].start, 360.0);
    }

    #[test]
    fn swf_parser_reports_errors() {
        assert!(JobTrace::parse_swf("1 2 3").is_err());
        assert!(JobTrace::parse_swf("a b c d e").is_err());
        assert!(JobTrace::parse_swf("").unwrap().is_empty());
    }
}
