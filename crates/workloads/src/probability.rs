//! Probability of concurrent I/O accesses (Section II-B).
//!
//! With `X` the number of concurrently running applications and `µ` the
//! fraction of its time an application spends doing I/O, the probability
//! that *at least one* application is doing I/O at an arbitrary instant is
//!
//! ```text
//! P(another is doing I/O) = 1 − Σ_n P(X = n) · (1 − E[µ])^n
//! ```
//!
//! The paper evaluates this with the Intrepid concurrency distribution and
//! `E[µ] = 5%`, obtaining ≈ 64% — frequent enough to motivate
//! cross-application coordination.

use crate::concurrency::ConcurrencyDistribution;

/// Probability that at least one of the concurrently running applications
/// is performing I/O when the system is observed at an arbitrary instant,
/// given the concurrency distribution and the mean fraction of time spent
/// in I/O (`E[µ]`, in `[0, 1]`).
pub fn probability_concurrent_io(dist: &ConcurrencyDistribution, mean_io_fraction: f64) -> f64 {
    let mu = mean_io_fraction.clamp(0.0, 1.0);
    let none_doing_io: f64 = dist
        .probabilities()
        .iter()
        .enumerate()
        .map(|(n, p)| p * (1.0 - mu).powi(n as i32))
        .sum();
    (1.0 - none_doing_io).clamp(0.0, 1.0)
}

/// Probability (Section IV-B) that application B starts its I/O phase while
/// application A is already writing, given that both complete exactly one
/// I/O phase during a window of `window_secs` seconds and A's stand-alone
/// write takes `t_a_alone_secs`:
///
/// ```text
/// P(dt < 0) = T_A(alone) / (t2 − t1)
/// ```
///
/// (The paper names the event `dt < 0` from B's perspective.) The result is
/// clamped to `[0, 1]`.
pub fn probability_second_arrives_during_first(t_a_alone_secs: f64, window_secs: f64) -> f64 {
    if window_secs <= 0.0 {
        return 1.0;
    }
    (t_a_alone_secs / window_secs).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_io_fraction_means_no_interference() {
        let dist = ConcurrencyDistribution::from_probabilities(vec![0.0, 0.5, 0.5]);
        assert_eq!(probability_concurrent_io(&dist, 0.0), 0.0);
    }

    #[test]
    fn always_in_io_with_at_least_one_job_means_certain_interference() {
        let dist = ConcurrencyDistribution::from_probabilities(vec![0.0, 1.0]);
        assert_eq!(probability_concurrent_io(&dist, 1.0), 1.0);
    }

    #[test]
    fn matches_hand_computed_example() {
        // P(X=0)=0.2, P(X=1)=0.5, P(X=2)=0.3, E[µ]=0.1:
        // Σ = 0.2·1 + 0.5·0.9 + 0.3·0.81 = 0.893 → P = 0.107.
        let dist = ConcurrencyDistribution::from_probabilities(vec![0.2, 0.5, 0.3]);
        let p = probability_concurrent_io(&dist, 0.1);
        assert!((p - 0.107).abs() < 1e-12);
    }

    #[test]
    fn paper_magnitude_with_many_concurrent_jobs() {
        // With tens of concurrent jobs (Fig. 1b shows the mode around 20-40)
        // and E[µ] = 5%, the probability should be well above 50% — the
        // paper reports 64%.
        let mut probs = vec![0.0; 41];
        for (n, p) in probs.iter_mut().enumerate().take(41).skip(10) {
            *p = if n < 30 { 0.04 } else { 0.02 };
        }
        let dist = ConcurrencyDistribution::from_probabilities(probs);
        let p = probability_concurrent_io(&dist, 0.05);
        assert!(p > 0.5 && p < 0.95, "p = {p}");
    }

    #[test]
    fn more_io_time_or_more_jobs_increases_probability() {
        let light = ConcurrencyDistribution::from_probabilities(vec![0.5, 0.5]);
        let heavy = ConcurrencyDistribution::from_probabilities(vec![0.0, 0.0, 0.0, 1.0]);
        assert!(probability_concurrent_io(&light, 0.05) < probability_concurrent_io(&heavy, 0.05));
        assert!(probability_concurrent_io(&heavy, 0.02) < probability_concurrent_io(&heavy, 0.2));
    }

    #[test]
    fn probability_is_bounded_in_unit_interval() {
        // Section II-B output is a probability for every input, including
        // out-of-range io fractions (which clamp) and degenerate
        // distributions.
        let dists = [
            ConcurrencyDistribution::from_probabilities(vec![1.0]), // always idle
            ConcurrencyDistribution::from_probabilities(vec![0.0, 1.0]),
            ConcurrencyDistribution::from_probabilities(vec![0.1, 0.2, 0.3, 0.4]),
        ];
        for dist in &dists {
            for mu in [-1.0, 0.0, 1e-6, 0.05, 0.5, 1.0, 2.5] {
                let p = probability_concurrent_io(dist, mu);
                assert!((0.0..=1.0).contains(&p), "mu={mu}: p={p}");
            }
        }
    }

    #[test]
    fn probability_is_monotone_in_concurrency() {
        // Shifting probability mass toward higher concurrency levels can
        // only increase the chance that someone is doing I/O: P under
        // X+1 dominates P under X for any fixed E[µ] in (0, 1).
        let mu = 0.05;
        let mut prev = -1.0;
        for n in 0..40 {
            // Point mass at exactly n concurrent jobs.
            let mut probs = vec![0.0; n + 1];
            probs[n] = 1.0;
            let p =
                probability_concurrent_io(&ConcurrencyDistribution::from_probabilities(probs), mu);
            assert!(p >= prev - 1e-12, "n={n}: p={p} < prev={prev}");
            prev = p;
        }
        // And the limit is certainty: with enough concurrent jobs the
        // probability approaches 1.
        assert!(prev > 0.85, "P at 39 concurrent jobs was only {prev}");
    }

    #[test]
    fn empty_machine_never_interferes() {
        // All mass at X = 0: nobody is running, so nobody does I/O,
        // whatever the io fraction.
        let dist = ConcurrencyDistribution::from_probabilities(vec![1.0]);
        for mu in [0.0, 0.05, 1.0] {
            assert_eq!(probability_concurrent_io(&dist, mu), 0.0);
        }
    }

    #[test]
    fn arrival_probability_is_ratio_of_times() {
        assert_eq!(probability_second_arrives_during_first(10.0, 100.0), 0.1);
        assert_eq!(probability_second_arrives_during_first(200.0, 100.0), 1.0);
        assert_eq!(probability_second_arrives_during_first(10.0, 0.0), 1.0);
        assert_eq!(probability_second_arrives_during_first(0.0, 100.0), 0.0);
    }
}
