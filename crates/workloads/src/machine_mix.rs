//! Machine-level application mixes: N concurrent applications on one PFS.
//!
//! The paper's evaluation coordinates 2–4 applications, but its premise —
//! a parallel file system shares bandwidth per request stream, so
//! coordination pays off machine-wide — only becomes a *systems* question
//! when dozens to hundreds of applications contend. [`MachineMix`] turns
//! the Section II workload analysis into runnable scenarios: it draws N
//! applications with seeded-random sizes (the Fig. 1(a)
//! [`SIZE_BUCKETS`] marginal), per-process
//! write volumes, periodic phase structure, and start jitter, and packages
//! them as a [`Scenario`] ready for any [`Strategy`].
//!
//! Generation is deterministic per seed, so a mix is a reproducible
//! experiment input: the same configuration always yields the same
//! scenario, the same simulation, the same report.
//!
//! ```
//! use workloads::machine_mix::MachineMix;
//! use calciom::Strategy;
//!
//! let mix = MachineMix {
//!     apps: 32,
//!     seed: 7,
//!     ..MachineMix::default()
//! };
//! let scenario = mix.scenario(Strategy::FcfsSerialize);
//! assert_eq!(scenario.apps.len(), 32);
//! let report = scenario.run().unwrap();
//! assert_eq!(report.apps.len(), 32);
//! ```

use crate::synthetic::SIZE_BUCKETS;
use crate::trace::{Job, JobTrace};
use calciom::{PolicySpec, Scenario, SharingModel, Strategy};
use mpiio::{AccessPattern, AppConfig};
use pfs::{AppId, PfsConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Generator of N-application machine mixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineMix {
    /// Number of applications.
    pub apps: usize,
    /// RNG seed; the whole mix is a pure function of the configuration.
    pub seed: u64,
    /// The shared file system.
    pub pfs: PfsConfig,
    /// Cap on the per-application process count (the Fig. 1(a) size
    /// buckets reach 131 072 cores; a mix usually caps lower so no single
    /// job dwarfs the file system).
    pub max_procs: u32,
    /// Per-process write volume range in bytes, sampled log-uniformly.
    pub bytes_per_proc: (f64, f64),
    /// Every application runs `1..=max_phases` periodic I/O phases.
    pub max_phases: u32,
    /// Phase period range in seconds, sampled uniformly.
    pub period_secs: (f64, f64),
    /// Applications start uniformly at random inside this window
    /// (seconds) — the paper's `dt` offset generalized to N arrivals.
    pub start_window_secs: f64,
    /// The bandwidth-sharing medium the scenarios run on. The default
    /// exact max-min solver re-rates a whole component per flow mutation;
    /// machine-scale mixes (tens of thousands of applications) switch to
    /// [`SharingModel::FairFast`] for `O(log n)` mutations.
    #[serde(default)]
    pub medium: SharingModel,
}

impl Default for MachineMix {
    /// Grid'5000 Rennes sizing, with one machine-scale adjustment: the
    /// locality-breakage penalty γ is disabled (γ = 1). The penalty
    /// compounds per concurrent request stream (`server_bw × γ^(k−1)`) and
    /// is calibrated on the paper's 2–4-application experiments; at
    /// machine-level concurrency it collapses server bandwidth to zero
    /// (0.85³¹ ≈ 0.006 at N = 32) and the uncoordinated schedule stops
    /// being simulable. Request-stream-proportional sharing — the paper's
    /// primary interference mechanism — is unaffected. Callers studying
    /// locality effects at small N can put γ back via the `pfs` field.
    fn default() -> Self {
        MachineMix {
            apps: 32,
            seed: 2014,
            pfs: PfsConfig {
                interference_gamma: 1.0,
                ..PfsConfig::grid5000_rennes()
            },
            max_procs: 2048,
            bytes_per_proc: (1.0e6, 8.0e6),
            max_phases: 2,
            period_secs: (20.0, 60.0),
            start_window_secs: 30.0,
            medium: SharingModel::default(),
        }
    }
}

impl MachineMix {
    /// The generated applications, in id order. Deterministic per
    /// configuration.
    pub fn applications(&self) -> Vec<AppConfig> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let total_weight: f64 = SIZE_BUCKETS.iter().map(|(_, w)| w).sum();
        let (lo, hi) = self.bytes_per_proc;
        assert!(lo > 0.0 && hi >= lo, "bytes_per_proc must be positive");

        (0..self.apps)
            .map(|i| {
                // Job size: the Fig. 1(a) categorical, capped for the mix.
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut procs = SIZE_BUCKETS[0].0;
                for (size, weight) in SIZE_BUCKETS {
                    if pick < weight {
                        procs = size;
                        break;
                    }
                    pick -= weight;
                }
                let procs = procs.min(self.max_procs).max(1);

                // Per-process volume: log-uniform across the range.
                let bytes = if hi > lo {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    lo * (hi / lo).powf(u)
                } else {
                    lo
                };

                let phases = if self.max_phases > 1 {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    (1 + (u * self.max_phases as f64) as u32).min(self.max_phases)
                } else {
                    1
                };
                let (plo, phi) = self.period_secs;
                let period = if phi > plo {
                    rng.gen_range(plo..phi)
                } else {
                    plo
                };
                let start = if self.start_window_secs > 0.0 {
                    rng.gen_range(0.0..self.start_window_secs)
                } else {
                    0.0
                };

                AppConfig::new(
                    AppId(i),
                    format!("mix-{i}"),
                    procs,
                    AccessPattern::contiguous(bytes),
                )
                .starting_at_secs(start)
                .with_periodic_phases(phases, SimDuration::from_secs(period))
            })
            .collect()
    }

    /// Packages the mix as a runnable [`Scenario`] under the given
    /// strategy. The horizon is sized from the analytic stand-alone
    /// estimates so even a fully serialized N-application schedule fits.
    pub fn scenario(&self, strategy: Strategy) -> Scenario {
        let mut scenario = self.base_scenario();
        scenario.strategy = strategy;
        scenario
    }

    /// Packages the mix as a runnable [`Scenario`] under a *named*
    /// arbitration policy ([`PolicySpec`]) — the machine-scale testbed
    /// for schedules the [`Strategy`] enum cannot express (the
    /// `fig14_policies` experiment feeds these). The applications and
    /// horizon are identical to [`MachineMix::scenario`]'s, so a policy
    /// comparison varies nothing but the arbitration.
    pub fn scenario_with_policy(&self, spec: PolicySpec) -> Scenario {
        let mut scenario = self.base_scenario();
        scenario.arbitration = Some(spec);
        scenario
    }

    fn base_scenario(&self) -> Scenario {
        let apps = self.applications();
        let total_alone: f64 = apps
            .iter()
            .map(|a| a.estimate_alone_seconds(&self.pfs) * a.phases.max(1) as f64)
            .sum();
        let longest_period: f64 = apps
            .iter()
            .map(|a| a.phase_interval.as_secs() * a.phases.max(1) as f64)
            .fold(0.0, f64::max);
        let horizon = self.start_window_secs + longest_period + total_alone * 4.0 + 3600.0;
        let mut scenario = Scenario::new(self.pfs.clone(), apps);
        scenario.horizon = SimDuration::from_secs(horizon);
        scenario.medium = self.medium;
        scenario
    }

    /// The mix viewed as a scheduler trace (arrival = start jitter,
    /// run time = analytic stand-alone I/O estimate), so the Section II
    /// concurrency analysis
    /// ([`ConcurrencyDistribution`](crate::ConcurrencyDistribution),
    /// [`probability_concurrent_io`](crate::probability_concurrent_io))
    /// applies to generated mixes as well as to archived traces.
    pub fn as_job_trace(&self) -> JobTrace {
        let jobs = self
            .applications()
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let run_time =
                    (a.estimate_alone_seconds(&self.pfs) * a.phases.max(1) as f64).max(1.0);
                Job {
                    id: i as u64,
                    submit: a.start.as_secs(),
                    start: a.start.as_secs(),
                    run_time,
                    procs: a.procs,
                }
            })
            .collect();
        JobTrace::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::ConcurrencyDistribution;
    use pfs::PfsConfig;

    fn mix(apps: usize, seed: u64) -> MachineMix {
        MachineMix {
            apps,
            seed,
            ..MachineMix::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mix(64, 1).applications();
        let b = mix(64, 1).applications();
        assert_eq!(a, b);
        let c = mix(64, 2).applications();
        assert_ne!(a, c);
    }

    #[test]
    fn generates_valid_scenarios_at_scale() {
        let scenario = mix(256, 3).scenario(Strategy::Interfere);
        assert_eq!(scenario.apps.len(), 256);
        scenario.validate().expect("mix scenarios validate");
        // Ids are unique and in order; sizes respect the cap.
        for (i, app) in scenario.apps.iter().enumerate() {
            assert_eq!(app.id, AppId(i));
            assert!(app.procs >= 1 && app.procs <= 2048);
            assert!(app.phases >= 1 && app.phases <= 2);
            assert!(app.start.as_secs() < 30.0);
        }
    }

    #[test]
    fn draws_sizes_from_the_fig1_buckets() {
        let apps = mix(512, 4).applications();
        let valid: std::collections::BTreeSet<u32> =
            SIZE_BUCKETS.iter().map(|(s, _)| (*s).min(2048)).collect();
        assert!(apps.iter().all(|a| valid.contains(&a.procs)));
        // The cap folds the heavy tail onto 2048, so at least the capped
        // bucket and a couple of smaller ones must appear.
        let distinct: std::collections::BTreeSet<u32> = apps.iter().map(|a| a.procs).collect();
        assert!(distinct.len() >= 3, "degenerate size draw: {distinct:?}");
    }

    #[test]
    fn small_mix_runs_under_coordination() {
        let mix = mix(8, 5);
        let interfering = mix.scenario(Strategy::Interfere).run().unwrap();
        let fcfs = mix.scenario(Strategy::FcfsSerialize).run().unwrap();
        assert_eq!(interfering.apps.len(), 8);
        assert_eq!(fcfs.apps.len(), 8);
        assert!(fcfs.coordination_messages > 0);
        // Serialization trades concurrency for per-app protection: the
        // machine-wide CPU waste must not explode versus interference.
        let alone = std::collections::BTreeMap::new();
        let waste = |r: &calciom::SessionReport| {
            r.metric(calciom::EfficiencyMetric::CpuSecondsWasted, &alone)
        };
        assert!(waste(&fcfs).is_finite() && waste(&interfering).is_finite());
    }

    #[test]
    fn policy_scenarios_share_the_applications_and_run() {
        let mix = mix(8, 5);
        let by_strategy = mix.scenario(Strategy::FcfsSerialize);
        let by_policy = mix.scenario_with_policy(PolicySpec::with_arg("rr", "5s"));
        assert_eq!(
            by_strategy.apps, by_policy.apps,
            "only the arbitration may differ"
        );
        assert_eq!(by_strategy.horizon, by_policy.horizon);
        assert_eq!(by_policy.policy_label(), "rr(5s)");
        let report = by_policy.run().unwrap();
        assert_eq!(report.apps.len(), 8);
        assert_eq!(report.policy_label, "rr(5s)");
        assert!(report.apps.iter().all(|a| !a.phases.is_empty()));
    }

    #[test]
    fn mix_runs_on_the_virtual_time_medium() {
        // The machine-scale medium drives the same coordination machinery;
        // on the mix's near-equal-share topology its schedule lands within
        // a few percent of the exact solver's.
        let base = mix(8, 5);
        let fair = MachineMix {
            medium: SharingModel::FairFast,
            ..base.clone()
        };
        let scenario = fair.scenario(Strategy::FcfsSerialize);
        assert!(
            scenario.to_text().contains("medium = fair-fast"),
            "the medium must survive the scenario codec"
        );
        let exact = base.scenario(Strategy::FcfsSerialize).run().unwrap();
        let quick = scenario.run().unwrap();
        assert_eq!(quick.apps.len(), 8);
        let (a, b) = (exact.makespan.as_secs(), quick.makespan.as_secs());
        assert!(
            (a - b).abs() / a < 0.05,
            "makespans diverged: max-min {a} vs fair-fast {b}"
        );
    }

    #[test]
    fn job_trace_bridge_feeds_the_concurrency_analysis() {
        let mix = mix(128, 6);
        let trace = mix.as_job_trace();
        assert_eq!(trace.len(), 128);
        let dist = ConcurrencyDistribution::from_trace(&trace);
        // A 30 s start window with ~second-long jobs keeps several in
        // flight at once — the Section II premise holds for the mix.
        assert!(dist.mean() > 1.0, "mean concurrency {}", dist.mean());
    }

    #[test]
    fn scenario_horizon_fits_a_fully_serialized_schedule() {
        let mix = mix(96, 7);
        let scenario = mix.scenario(Strategy::FcfsSerialize);
        let total_alone: f64 = scenario
            .apps
            .iter()
            .map(|a| a.estimate_alone_seconds(&mix.pfs) * a.phases as f64)
            .sum();
        assert!(scenario.horizon.as_secs() > total_alone * 2.0);
    }

    #[test]
    fn default_pfs_is_rennes_without_the_compounding_locality_penalty() {
        let pfs = MachineMix::default().pfs;
        assert_eq!(pfs.interference_gamma, 1.0, "γ compounds per stream");
        assert_eq!(
            PfsConfig {
                interference_gamma: PfsConfig::grid5000_rennes().interference_gamma,
                ..pfs
            },
            PfsConfig::grid5000_rennes()
        );
    }
}
