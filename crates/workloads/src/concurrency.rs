//! Concurrency analysis (Fig. 1b).
//!
//! Given a job trace, compute the time-weighted distribution of the number
//! of jobs running concurrently: for how large a fraction of the observed
//! time were exactly `n` jobs active? This is the distribution of the
//! random variable `X` used by the Section II-B probability model.

use crate::trace::JobTrace;
use serde::{Deserialize, Serialize};

/// Time-weighted distribution of the number of concurrently running jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyDistribution {
    /// `probability[n]` is the fraction of time during which exactly `n`
    /// jobs were running.
    probability: Vec<f64>,
    /// Mean number of concurrently running jobs.
    mean: f64,
}

impl ConcurrencyDistribution {
    /// Builds the distribution from a trace by sweeping start/end events.
    pub fn from_trace(trace: &JobTrace) -> Self {
        if trace.is_empty() {
            return ConcurrencyDistribution {
                probability: vec![1.0],
                mean: 0.0,
            };
        }
        // Event sweep: +1 at each start, -1 at each end.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(trace.len() * 2);
        for job in trace.jobs() {
            events.push((job.start, 1));
            events.push((job.end(), -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });

        let mut time_at: Vec<f64> = Vec::new();
        let mut current: i64 = 0;
        let mut last_t = events[0].0;
        let mut total_time = 0.0;
        for (t, delta) in events {
            let dt = (t - last_t).max(0.0);
            if dt > 0.0 {
                let idx = current.max(0) as usize;
                if time_at.len() <= idx {
                    time_at.resize(idx + 1, 0.0);
                }
                time_at[idx] += dt;
                total_time += dt;
            }
            current += delta as i64;
            last_t = t;
        }

        if total_time <= 0.0 {
            return ConcurrencyDistribution {
                probability: vec![1.0],
                mean: 0.0,
            };
        }
        let probability: Vec<f64> = time_at.iter().map(|&t| t / total_time).collect();
        let mean = probability
            .iter()
            .enumerate()
            .map(|(n, p)| n as f64 * p)
            .sum();
        ConcurrencyDistribution { probability, mean }
    }

    /// Builds a distribution directly from probabilities (used in tests and
    /// by the probability model when published numbers are supplied).
    /// The probabilities are normalized.
    pub fn from_probabilities(probability: Vec<f64>) -> Self {
        let total: f64 = probability.iter().sum();
        let probability: Vec<f64> = if total > 0.0 {
            probability.iter().map(|p| p / total).collect()
        } else {
            vec![1.0]
        };
        let mean = probability
            .iter()
            .enumerate()
            .map(|(n, p)| n as f64 * p)
            .sum();
        ConcurrencyDistribution { probability, mean }
    }

    /// `P(X = n)`: fraction of time with exactly `n` running jobs.
    pub fn probability_of(&self, n: usize) -> f64 {
        self.probability.get(n).copied().unwrap_or(0.0)
    }

    /// The full probability vector, indexed by the number of running jobs.
    pub fn probabilities(&self) -> &[f64] {
        &self.probability
    }

    /// Largest observed concurrency level.
    pub fn max_concurrency(&self) -> usize {
        self.probability.len().saturating_sub(1)
    }

    /// Mean number of concurrently running jobs.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Job;

    fn job(id: u64, start: f64, run: f64) -> Job {
        Job {
            id,
            submit: start,
            start,
            run_time: run,
            procs: 1024,
        }
    }

    #[test]
    fn simple_overlap() {
        // Job 1: [0, 10), Job 2: [5, 15): concurrency 1 on [0,5)∪[10,15),
        // concurrency 2 on [5,10).
        let trace = JobTrace::new(vec![job(1, 0.0, 10.0), job(2, 5.0, 10.0)]);
        let dist = ConcurrencyDistribution::from_trace(&trace);
        assert!((dist.probability_of(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist.probability_of(2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(dist.probability_of(0), 0.0);
        assert_eq!(dist.max_concurrency(), 2);
        assert!((dist.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gap_counts_as_zero_concurrency() {
        let trace = JobTrace::new(vec![job(1, 0.0, 10.0), job(2, 20.0, 10.0)]);
        let dist = ConcurrencyDistribution::from_trace(&trace);
        assert!((dist.probability_of(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dist.probability_of(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero_concurrency() {
        let dist = ConcurrencyDistribution::from_trace(&JobTrace::default());
        assert_eq!(dist.probability_of(0), 1.0);
        assert_eq!(dist.mean(), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let trace = JobTrace::new(vec![
            job(1, 0.0, 100.0),
            job(2, 10.0, 30.0),
            job(3, 20.0, 60.0),
            job(4, 120.0, 5.0),
        ]);
        let dist = ConcurrencyDistribution::from_trace(&trace);
        let total: f64 = dist.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_probabilities_normalizes() {
        let dist = ConcurrencyDistribution::from_probabilities(vec![2.0, 2.0]);
        assert_eq!(dist.probability_of(0), 0.5);
        assert_eq!(dist.probability_of(1), 0.5);
        assert_eq!(dist.mean(), 0.5);
        let degenerate = ConcurrencyDistribution::from_probabilities(vec![]);
        assert_eq!(degenerate.probability_of(0), 1.0);
    }

    #[test]
    fn synthetic_trace_has_many_concurrent_jobs() {
        let cfg = crate::synthetic::SyntheticTraceConfig {
            jobs: 3_000,
            ..Default::default()
        };
        let trace = crate::synthetic::generate(&cfg);
        let dist = ConcurrencyDistribution::from_trace(&trace);
        assert!(
            dist.mean() > 4.0,
            "expected many concurrent jobs, mean was {}",
            dist.mean()
        );
    }
}
