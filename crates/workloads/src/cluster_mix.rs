//! Multi-machine application mixes: M machines × N applications over one
//! shared parallel file system.
//!
//! The paper coordinates applications *within* one machine; the
//! hierarchical arbitration layer (`calciom::cluster`) extends the
//! mechanism across machines that share a center-wide PFS. [`ClusterMix`]
//! generates the matching workload: each machine draws its own
//! [`MachineMix`] (seed-offset per machine, so machines differ but the
//! whole cluster is a pure function of the configuration), application
//! ids are remapped into one global namespace, and the result packages
//! either as a *hierarchical* scenario (a [`ClusterSpec`] tree: one leaf
//! arbiter per machine under a slot-owning root) or as the *flat*
//! baseline (every application talks to one arbiter) — identical
//! applications, identical horizon, so a flat-vs-hierarchical comparison
//! varies nothing but the coordination topology.
//!
//! ```
//! use workloads::cluster_mix::ClusterMix;
//! use calciom::Strategy;
//!
//! let mix = ClusterMix { machines: 2, apps_per_machine: 4, ..ClusterMix::default() };
//! let hier = mix.scenario_hierarchical(Strategy::FcfsSerialize);
//! let flat = mix.scenario_flat(Strategy::FcfsSerialize);
//! assert_eq!(hier.apps, flat.apps);
//! assert!(hier.cluster.is_some() && flat.cluster.is_none());
//! ```

use crate::machine_mix::MachineMix;
use calciom::cluster::{ClusterSpec, MachineSpec};
use calciom::{PolicySpec, Scenario, Strategy};
use mpiio::AppConfig;
use pfs::AppId;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Seed offset between consecutive machines' draws (a prime, so machine
/// streams never collide for any base seed).
const MACHINE_SEED_STRIDE: u64 = 10_007;

/// Generator of M-machine cluster mixes over a shared PFS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMix {
    /// Number of machines (leaf arbiters).
    pub machines: usize,
    /// Applications drawn per machine.
    pub apps_per_machine: usize,
    /// Per-machine draw template: PFS sizing, size buckets, phase
    /// structure, start jitter, medium. Its `apps` and `seed` fields are
    /// overridden per machine (`apps_per_machine`, `seed + m × stride`).
    pub template: MachineMix,
    /// Shared-PFS bandwidth slots the root arbiter owns (how many
    /// machines may access the file system concurrently).
    pub slots: u32,
    /// Cross-arbiter message latency per machine edge, in seconds —
    /// every escalation, grant and slot return between a leaf and the
    /// root is delayed by this much of simulated time.
    pub latency_secs: f64,
    /// Rotation quantum in seconds: how long a machine may hold a
    /// contended slot before the root revokes it. Rotation traffic is
    /// `makespan / quantum` messages, so studies that grow the cluster
    /// (and with it the makespan) scale this with the machine count to
    /// keep root traffic proportional to M rather than to the aggregate
    /// offered load.
    pub quantum_secs: f64,
}

impl Default for ClusterMix {
    fn default() -> Self {
        ClusterMix {
            machines: 2,
            apps_per_machine: 8,
            template: MachineMix::default(),
            slots: 1,
            latency_secs: 0.001,
            quantum_secs: 30.0,
        }
    }
}

impl ClusterMix {
    /// The per-machine generator for machine `m`: the template with the
    /// per-machine application count and a seed-stride offset.
    fn machine_mix(&self, m: usize) -> MachineMix {
        MachineMix {
            apps: self.apps_per_machine,
            seed: self
                .template
                .seed
                .wrapping_add(m as u64 * MACHINE_SEED_STRIDE),
            ..self.template.clone()
        }
    }

    /// All generated applications in global id order: machine `m`'s `i`-th
    /// application becomes `AppId(m × apps_per_machine + i)`, named
    /// `m{m}.mix-{i}`. Deterministic per configuration.
    pub fn applications(&self) -> Vec<AppConfig> {
        let n = self.apps_per_machine;
        (0..self.machines)
            .flat_map(|m| {
                self.machine_mix(m)
                    .applications()
                    .into_iter()
                    .map(move |mut app| {
                        app.id = AppId(m * n + app.id.0);
                        app.name = format!("m{m}.{}", app.name);
                        app
                    })
            })
            .collect()
    }

    /// The arbiter-tree topology: one [`MachineSpec`] per machine with
    /// its global application ids and the uniform edge latency.
    pub fn spec(&self) -> ClusterSpec {
        let n = self.apps_per_machine;
        let mut spec = ClusterSpec::new(
            self.slots,
            (0..self.machines)
                .map(|m| MachineSpec {
                    latency: SimDuration::from_secs(self.latency_secs),
                    apps: (0..n).map(|i| AppId(m * n + i)).collect(),
                })
                .collect(),
        );
        spec.quantum = SimDuration::from_secs(self.quantum_secs);
        spec
    }

    /// The hierarchical scenario: the mix's applications under an
    /// arbiter tree ([`spec`](Self::spec)).
    pub fn scenario_hierarchical(&self, strategy: Strategy) -> Scenario {
        let mut scenario = self.base_scenario();
        scenario.strategy = strategy;
        scenario.cluster = Some(self.spec());
        scenario
    }

    /// The flat baseline: the exact same applications and horizon, every
    /// application coordinating through one machine-wide arbiter.
    pub fn scenario_flat(&self, strategy: Strategy) -> Scenario {
        let mut scenario = self.base_scenario();
        scenario.strategy = strategy;
        scenario
    }

    /// The hierarchical scenario under a *named* arbitration policy: the
    /// leaves run the policy unchanged, the tree only adds the slot layer.
    pub fn scenario_hierarchical_with_policy(&self, spec: PolicySpec) -> Scenario {
        let mut scenario = self.base_scenario();
        scenario.arbitration = Some(spec);
        scenario.cluster = Some(self.spec());
        scenario
    }

    fn base_scenario(&self) -> Scenario {
        let pfs = &self.template.pfs;
        let apps = self.applications();
        // Same horizon rule as `MachineMix`, over the whole cluster: wide
        // enough that even a fully serialized schedule (every machine
        // waiting its turn for the shared PFS) fits.
        let total_alone: f64 = apps
            .iter()
            .map(|a| a.estimate_alone_seconds(pfs) * a.phases.max(1) as f64)
            .sum();
        let longest_period: f64 = apps
            .iter()
            .map(|a| a.phase_interval.as_secs() * a.phases.max(1) as f64)
            .fold(0.0, f64::max);
        let horizon = self.template.start_window_secs
            + longest_period
            + total_alone * 4.0
            + self.latency_secs * 8.0 * self.machines as f64
            + 3600.0;
        let mut scenario = Scenario::new(pfs.clone(), apps);
        scenario.horizon = SimDuration::from_secs(horizon);
        scenario.medium = self.template.medium;
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calciom::SharingModel;

    fn mix(machines: usize, n: usize, seed: u64) -> ClusterMix {
        ClusterMix {
            machines,
            apps_per_machine: n,
            template: MachineMix {
                seed,
                max_procs: 512,
                bytes_per_proc: (0.5e6, 2.0e6),
                ..MachineMix::default()
            },
            ..ClusterMix::default()
        }
    }

    #[test]
    fn ids_are_globally_contiguous_and_machines_differ() {
        let mix = mix(3, 4, 11);
        let apps = mix.applications();
        assert_eq!(apps.len(), 12);
        for (i, app) in apps.iter().enumerate() {
            assert_eq!(app.id, AppId(i));
        }
        assert!(apps[0].name.starts_with("m0."));
        assert!(apps[4].name.starts_with("m1."));
        // Different seed offsets: the machines draw different mixes.
        let m0: Vec<_> = apps[0..4].iter().map(|a| (a.procs, a.start)).collect();
        let m1: Vec<_> = apps[4..8].iter().map(|a| (a.procs, a.start)).collect();
        assert_ne!(m0, m1, "machine draws must not be clones");
        // Deterministic per configuration.
        assert_eq!(apps, mix.applications());
    }

    #[test]
    fn spec_matches_the_applications_and_validates() {
        let mix = mix(3, 4, 11);
        let scenario = mix.scenario_hierarchical(Strategy::FcfsSerialize);
        scenario.validate().expect("cluster scenarios validate");
        let spec = scenario.cluster.as_ref().expect("hierarchical has a tree");
        assert_eq!(spec.machines.len(), 3);
        assert_eq!(spec.slots, 1);
        assert_eq!(
            spec.machines[1].apps,
            vec![AppId(4), AppId(5), AppId(6), AppId(7)]
        );
        assert_eq!(
            spec.machines[0].latency,
            SimDuration::from_secs(mix.latency_secs)
        );
    }

    #[test]
    fn flat_and_hierarchical_share_everything_but_the_tree() {
        let mix = mix(2, 6, 7);
        let flat = mix.scenario_flat(Strategy::FcfsSerialize);
        let hier = mix.scenario_hierarchical(Strategy::FcfsSerialize);
        assert_eq!(flat.apps, hier.apps);
        assert_eq!(flat.horizon, hier.horizon);
        assert!(flat.cluster.is_none());
        assert!(hier.cluster.is_some());
        // The cluster key survives the scenario codec.
        let text = hier.to_text();
        assert!(text.contains("cluster = "), "missing cluster key:\n{text}");
        assert_eq!(Scenario::from_text(&text).unwrap(), hier);
    }

    #[test]
    fn hierarchical_mix_runs_to_completion() {
        let mix = mix(2, 3, 5);
        let hier = mix.scenario_hierarchical(Strategy::FcfsSerialize);
        let report = hier.run().unwrap();
        assert_eq!(report.apps.len(), 6);
        for (cfg, app) in hier.apps.iter().zip(&report.apps) {
            assert_eq!(
                app.phases.len(),
                cfg.phases as usize,
                "app {} starved",
                cfg.id
            );
        }
        // Cross-machine serialization through one slot costs more wall
        // time than the flat arbiter's single queue would, never less.
        let flat = mix.scenario_flat(Strategy::FcfsSerialize).run().unwrap();
        assert!(report.makespan >= flat.makespan);
    }

    #[test]
    fn policy_scenarios_run_on_the_fast_medium() {
        let mut mix = mix(2, 3, 9);
        mix.template.medium = SharingModel::FairFast;
        let scenario = mix.scenario_hierarchical_with_policy(PolicySpec::with_arg("delay", "30s"));
        assert_eq!(scenario.medium, SharingModel::FairFast);
        let report = scenario.run().unwrap();
        assert_eq!(report.apps.len(), 6);
        assert_eq!(report.policy_label, "delay(30s)");
    }
}
