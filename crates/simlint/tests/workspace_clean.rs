//! The self-check CI relies on: the real workspace lints clean under its
//! checked-in allowlist, every suppression carries a justification, and
//! the event-coverage rule actually sees the real `SimEvent`.

use simlint::{find_workspace_root, lint_workspace, load_default_allowlist};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&manifest).expect("simlint lives inside the workspace")
}

#[test]
fn the_workspace_is_finding_free() {
    let root = workspace_root();
    let allowlist = load_default_allowlist(&root).expect("simlint.allow parses");
    let report = lint_workspace(&root, allowlist.as_ref()).expect("workspace lints");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; active findings:\n{}",
        report.to_text()
    );
    // Sanity on the scan itself: this is the whole stack, not a subset.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn suppressions_exist_and_are_attributed() {
    // The fix pass deliberately kept justified panics (arena access,
    // parser invariants) and the bench allowlist entry — the report must
    // show them as suppressed, not silently dropped.
    let root = workspace_root();
    let allowlist = load_default_allowlist(&root).expect("simlint.allow parses");
    assert!(
        allowlist.is_some(),
        "the workspace allowlist must be checked in"
    );
    let report = lint_workspace(&root, allowlist.as_ref()).expect("workspace lints");
    assert!(
        !report.suppressed.is_empty(),
        "expected justified suppressions in the workspace"
    );
    let json = report.to_json();
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"suppressed_by\""));
}

#[test]
fn event_coverage_sees_the_real_enum() {
    // Guard against R6 rotting into a tautology: the real SimEvent must
    // be found and have a double-digit variant count.
    let root = workspace_root();
    let source = std::fs::read_to_string(root.join("crates/core/src/observe.rs"))
        .expect("observe.rs readable");
    let count = source.matches("SimEvent::").count();
    assert!(
        count >= 10,
        "ReportBuilder should mention SimEvent:: variants many times, saw {count}"
    );
}
