//! Fixture corpus: every rule has a known-bad snippet under
//! `tests/fixtures/` asserting the rule fires at exactly the marked
//! lines (`//~ RX` trailing markers), and nowhere else.

use simlint::findings::Finding;
use simlint::lexer::lex;
use simlint::lint_source;
use simlint::rules::{check_event_coverage, EventCoverageConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Extracts the `(line, rule)` expectations from `//~ RX` markers.
fn expected_markers(source: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        if let Some(pos) = line.find("//~ ") {
            let rule = line[pos + 4..]
                .split_whitespace()
                .next()
                .expect("marker names a rule")
                .to_string();
            out.push((idx as u32 + 1, rule));
        }
    }
    assert!(!out.is_empty(), "fixture has no //~ markers");
    out
}

fn found_pairs(findings: &[Finding]) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = findings
        .iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    out.sort();
    out
}

/// Lints `fixture_name` as if it lived in `crate_name` and asserts the
/// resolved findings are exactly the marked ones.
fn assert_fires_exactly(fixture_name: &str, crate_name: &str) {
    let source = fixture(fixture_name);
    let mut expected = expected_markers(&source);
    expected.sort();
    let findings = lint_source(
        &format!("crates/{crate_name}/src/bad.rs"),
        crate_name,
        &source,
    );
    assert_eq!(
        found_pairs(&findings),
        expected,
        "fixture {fixture_name} (findings: {findings:#?})"
    );
}

#[test]
fn r1_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r1_hashmap.rs", "simcore");
}

#[test]
fn r2_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r2_wallclock.rs", "core");
}

#[test]
fn r2_fixture_fires_in_every_sim_crate_and_stays_quiet_in_serve() {
    let source = fixture("r2_wallclock.rs");
    // Still enforced across the simulation stack …
    for sim_crate in ["simcore", "core", "pfs", "mpiio", "workloads"] {
        let findings = lint_source(
            &format!("crates/{sim_crate}/src/bad.rs"),
            sim_crate,
            &source,
        );
        assert_eq!(
            findings.iter().filter(|f| f.rule == "R2").count(),
            3,
            "{sim_crate}: {findings:#?}"
        );
    }
    // … but scoped out for the serving layer by ScopeConfig (the source
    // carries no inline allows — the exemption lives in configuration).
    assert!(!source.contains("simlint: allow"));
    let findings = lint_source("crates/serve/src/bad.rs", "serve", &source);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r3_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r3_stringly.rs", "workloads");
}

#[test]
fn r4_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r4_panic.rs", "pfs");
}

#[test]
fn r5_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r5_float_accum.rs", "simcore");
}

#[test]
fn r7_fixture_fires_on_marked_lines() {
    assert_fires_exactly("r7_rng.rs", "workloads");
}

#[test]
fn r6_fixture_reports_the_uncovered_variant() {
    // R6 is workspace-level: feed the definition/codec pair through the
    // coverage check directly.
    let def = fixture("r6_event_def.rs");
    let codec = fixture("r6_event_codec.rs");
    let def_line = def
        .lines()
        .position(|l| l.contains("Finished"))
        .expect("fixture defines Finished") as u32
        + 1;
    let mut files = BTreeMap::new();
    files.insert("def.rs".to_string(), lex(&def));
    files.insert("codec.rs".to_string(), lex(&codec));
    let cfg = EventCoverageConfig {
        enum_name: "SimEvent".to_string(),
        def_path: "def.rs".to_string(),
        coverage_paths: vec!["codec.rs".to_string()],
    };
    let findings = check_event_coverage(&cfg, &files);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "R6");
    assert_eq!(findings[0].line, def_line);
    assert!(findings[0].message.contains("SimEvent::Finished"));
    assert!(
        !findings[0].message.contains("SimEvent::Started"),
        "the covered variant must not be reported"
    );
}

#[test]
fn fixtures_outside_a_rules_scope_stay_quiet() {
    // The same hash-collection source is fine in a crate whose iteration
    // order is never observable (bench renders figures).
    let source = fixture("r1_hashmap.rs");
    let findings = lint_source("crates/bench/src/bad.rs", "bench", &source);
    assert!(findings.is_empty(), "{findings:#?}");
}
