// Fixture: R4 must fire on unchecked panics in non-test library code and
// stay quiet inside #[cfg(test)]. Linted as crates/pfs/src/bad.rs.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ R4
}

pub fn pick(xs: &[u32]) -> u32 {
    *xs.get(1).expect("has two elements") //~ R4
}

pub fn boom() {
    panic!("library code must not panic"); //~ R4
}

pub fn fine(xs: &[u32]) -> u32 {
    // unwrap_or and friends are checked handling, not panics.
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
