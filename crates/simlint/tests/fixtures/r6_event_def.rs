// Fixture: the event-enum definition half of the R6 pair. The codec
// fixture (r6_event_codec.rs) covers the first variant but omits the
// second, so R6 must report exactly one missing variant.

pub enum SimEvent {
    Started { app: u32 },
    Finished { app: u32, bytes: f64 },
}
