// Fixture: R5 must fire on bare float accumulation into remaining/residual
// counters in simcore. Linted as crates/simcore/src/bad.rs.

pub struct Flow {
    pub remaining: f64,
    pub residual_bytes: f64,
}

impl Flow {
    pub fn advance(&mut self, moved: f64) {
        self.remaining -= moved; //~ R5
        self.residual_bytes += moved; //~ R5
    }
}
