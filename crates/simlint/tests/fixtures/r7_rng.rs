// Fixture: R7 must fire on unseeded randomness anywhere, tests included.
// Linted as crates/workloads/src/bad.rs.

pub fn jitter() -> f64 {
    rand::random::<f64>() //~ R7
}

#[cfg(test)]
mod tests {
    use rand::thread_rng; //~ R7
    use rand::SeedableRng;

    #[test]
    fn seeded_is_fine() {
        // from_seed / seed_from_u64 are the reproducible constructors.
        let _rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let _bad = thread_rng(); //~ R7
    }
}
