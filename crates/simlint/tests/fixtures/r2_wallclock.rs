// Fixture: R2 must fire on wall-clock reads in a simulated-time crate.
// Linted as crates/core/src/bad.rs.
use std::time::Instant; //~ R2

pub fn measure() -> f64 {
    let start = Instant::now(); //~ R2
    let t = std::time::SystemTime::now(); //~ R2
    let _ = t;
    start.elapsed().as_secs_f64()
}
