// Fixture: R3 must fire on stringly-typed error returns in any crate.
// Linted as crates/workloads/src/bad.rs.

pub fn parse(input: &str) -> Result<u32, String> { //~ R3
    input.parse().map_err(|_| "bad".to_string())
}

pub fn qualified(input: &str) -> Result<u32, std::string::String> { //~ R3
    parse(input)
}

// Not a finding: a typed error enum.
pub fn fine(input: &str) -> Result<u32, std::num::ParseIntError> {
    input.parse()
}
