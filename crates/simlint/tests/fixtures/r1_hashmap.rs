// Fixture: R1 must fire on hash collections in an order-sensitive crate.
// Linted as crates/simcore/src/bad.rs. Expected findings are marked with
// trailing tilde-comments read by the fixture test.
use std::collections::HashMap; //~ R1

pub struct Registry {
    by_name: HashMap<String, u32>, //~ R1
}

impl Registry {
    pub fn total(&self) -> u32 {
        // Iteration order leaks straight into any accumulated float or
        // emitted event sequence.
        self.by_name.values().sum()
    }
}
