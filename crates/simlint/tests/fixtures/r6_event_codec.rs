// Fixture: the codec half of the R6 pair — mentions Started, omits
// Finished.

pub fn encode(event: &super::SimEvent) -> String {
    match event {
        SimEvent::Started { app } => format!("started {app}"),
        _ => String::new(),
    }
}
