//! `simlint` — a workspace invariant checker for the CALCioM stack.
//!
//! Every guarantee this reproduction rests on — bit-identical golden
//! traces, byte-identical codecs, cross-thread reproducibility — is
//! enforced dynamically by tests that compare hashes *after* a
//! divergence has happened. `simlint` rejects the code patterns that
//! cause those divergences statically, before they compile into a flaky
//! trace: nondeterministic iteration, wall-clock reads under simulated
//! time, stringly-typed errors, unchecked panics, drift-prone float
//! accumulation, event variants missing from the codec, and unseeded
//! randomness. See [`rules`] for the rule table.
//!
//! The tool is dependency-free by design: a hand-rolled [`lexer`]
//! produces a token stream (comments and string contents never reach the
//! rules), and each rule is a token-walker. Findings can be suppressed
//! two ways, both requiring a written justification:
//!
//! * inline, on or directly above the offending line:
//!   `// simlint: allow(R4, reason)`;
//! * workspace-wide, via an [`allowlist`] file (`simlint.allow`).
//!
//! Run `cargo run -p simlint -- --workspace` for the human report, add
//! `--json` for the CI artifact.

pub mod allowlist;
pub mod error;
pub mod findings;
pub mod lexer;
pub mod rules;

use crate::allowlist::Allowlist;
use crate::error::LintError;
use crate::findings::{Disposition, Finding, Report};
use crate::lexer::Lexed;
use crate::rules::{
    check_event_coverage, rule_by_ref, EventCoverageConfig, FileInput, ScopeConfig, RULES,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Pseudo-rule id for broken suppression machinery (malformed or
/// unjustified annotations). Not suppressible — fix the annotation.
pub const ANNOTATION_RULE_ID: &str = "R0";
/// Pseudo-rule name matching [`ANNOTATION_RULE_ID`].
pub const ANNOTATION_RULE_NAME: &str = "bad-annotation";

/// Lints one source text as if it lived at `path` in crate `crate_name`,
/// returning the *resolved* findings (inline allows applied, no
/// allowlist). This is the entry point the fixture tests drive.
pub fn lint_source(path: &str, crate_name: &str, source: &str) -> Vec<Finding> {
    let input = FileInput {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        lexed: lexer::lex(source),
    };
    let raw = rules::scan_file(&input, &ScopeConfig::workspace_default());
    let mut report = Report::default();
    resolve(raw, &input.lexed, &input.path, None, &mut report);
    report.findings
}

/// Applies inline allows and the allowlist to raw findings, splitting
/// them into active and suppressed, and reports annotation hygiene
/// problems (malformed annotations, unknown rules, empty reasons).
fn resolve(
    raw: Vec<Finding>,
    lexed: &Lexed,
    path: &str,
    allowlist: Option<&Allowlist>,
    report: &mut Report,
) {
    for f in raw {
        let inline = lexed
            .allows_for(f.line)
            .find(|a| a.rule == f.rule || a.rule == f.name);
        match inline {
            Some(a) if !a.reason.is_empty() => {
                report.suppressed.push((f, Disposition::AllowedInline));
            }
            _ => {
                if allowlist.is_some_and(|l| l.covers(f.rule, path)) {
                    report.suppressed.push((f, Disposition::AllowedByFile));
                } else {
                    report.findings.push(f);
                }
            }
        }
    }
    for (line, text) in &lexed.malformed_allows {
        report.findings.push(Finding {
            rule: ANNOTATION_RULE_ID,
            name: ANNOTATION_RULE_NAME,
            file: path.to_string(),
            line: *line,
            message: format!(
                "malformed simlint annotation `{text}`; expected \
                 `simlint: allow(RULE, reason)` with a non-empty reason"
            ),
        });
    }
    for a in &lexed.allows {
        if rule_by_ref(&a.rule).is_none() {
            report.findings.push(Finding {
                rule: ANNOTATION_RULE_ID,
                name: ANNOTATION_RULE_NAME,
                file: path.to_string(),
                line: a.comment_line,
                message: format!("allow annotation references unknown rule `{}`", a.rule),
            });
        } else if a.reason.is_empty() {
            report.findings.push(Finding {
                rule: ANNOTATION_RULE_ID,
                name: ANNOTATION_RULE_NAME,
                file: path.to_string(),
                line: a.comment_line,
                message: "allow annotation has an empty reason; allows must be justified"
                    .to_string(),
            });
        }
    }
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|source| LintError::Io {
                path: manifest.display().to_string(),
                source,
            })?;
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(LintError::WorkspaceNotFound {
        start: start.display().to_string(),
    })
}

/// The scan set of a workspace: every `.rs` under `crates/<crate>/src`
/// plus the umbrella crate's own `src/`, as sorted
/// `(relative_path, crate_name)` pairs. `vendor/` (stand-in
/// dependencies) and `target/` are never scanned.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, String)>, LintError> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let src = entry.join("src");
            if !src.is_dir() {
                continue;
            }
            let crate_name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(root, &src, &crate_name, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, "calciom-stack", &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut entries = Vec::new();
    for e in rd {
        let e = e.map_err(|source| LintError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, String)>,
) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, crate_name.to_string()));
        }
    }
    Ok(())
}

/// Lints a whole workspace: per-file rules over the scan set, the
/// workspace-level event-coverage rule, and allow resolution against
/// `allowlist`.
pub fn lint_workspace(root: &Path, allowlist: Option<&Allowlist>) -> Result<Report, LintError> {
    let mut report = Report {
        rules: RULES.iter().map(|r| (r.id, r.name)).collect(),
        ..Report::default()
    };
    let mut lexed_files: BTreeMap<String, Lexed> = BTreeMap::new();
    let scope = ScopeConfig::workspace_default();

    for (rel, crate_name) in workspace_files(root)? {
        let abs = root.join(&rel);
        let source = std::fs::read_to_string(&abs).map_err(|source| LintError::Io {
            path: abs.display().to_string(),
            source,
        })?;
        let input = FileInput {
            path: rel.clone(),
            crate_name,
            lexed: lexer::lex(&source),
        };
        let raw = rules::scan_file(&input, &scope);
        resolve(raw, &input.lexed, &rel, allowlist, &mut report);
        lexed_files.insert(rel, input.lexed);
        report.files_scanned += 1;
    }

    // R6 is workspace-level: it needs the enum definition and the codec
    // files together. Its findings go through the allowlist too (inline
    // allows make no sense for a cross-file property).
    let coverage = EventCoverageConfig::workspace_default();
    for f in check_event_coverage(&coverage, &lexed_files) {
        if allowlist.is_some_and(|l| l.covers(f.rule, &f.file)) {
            report.suppressed.push((f, Disposition::AllowedByFile));
        } else {
            report.findings.push(f);
        }
    }

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .partial_cmp(&(&b.file, b.line, b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(report)
}

/// Loads the allowlist next to the workspace root (`simlint.allow`), if
/// present.
pub fn load_default_allowlist(root: &Path) -> Result<Option<Allowlist>, LintError> {
    let path = root.join("simlint.allow");
    if !path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
        path: path.display().to_string(),
        source,
    })?;
    Allowlist::parse(&text, &path.display().to_string()).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_suppresses_matching_rule_only() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // simlint: allow(R4, checked by caller)
}
fn g(x: Option<u32>) -> u32 {
    x.unwrap() // simlint: allow(R1, wrong rule)
}";
        let found = lint_source("crates/core/src/x.rs", "core", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn allow_by_name_also_works() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // simlint: allow(unchecked-panic, infallible by construction)\n    x.unwrap()\n}";
        assert!(lint_source("crates/core/src/x.rs", "core", src).is_empty());
    }

    #[test]
    fn empty_reason_does_not_suppress_and_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() // simlint: allow(R4, )\n}";
        let found = lint_source("crates/core/src/x.rs", "core", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.rule == "R4"));
        assert!(found.iter().any(|f| f.rule == ANNOTATION_RULE_ID));
    }

    #[test]
    fn unknown_rule_in_annotation_is_flagged() {
        let src = "// simlint: allow(R42, nope)\nfn f() {}";
        let found = lint_source("crates/core/src/x.rs", "core", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, ANNOTATION_RULE_ID);
    }
}
