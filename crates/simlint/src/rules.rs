//! The rule set: each rule walks a file's token stream and reports
//! violations of one workspace invariant.
//!
//! | id | name | scope | invariant |
//! |----|------|-------|-----------|
//! | R1 | nondeterministic-collections | order-sensitive crates (incl. tests) | no `HashMap`/`HashSet` — iteration order breaks golden traces |
//! | R2 | wall-clock | every crate except the exempt list | no `Instant`/`SystemTime` — sim time is kernel-owned |
//! | R3 | stringly-errors | all crates | no `Result<_, String>` — errors are typed enums |
//! | R4 | unchecked-panic | all crates, non-test | no `.unwrap()`/`.expect()`/`panic!` family without an allow |
//! | R5 | raw-float-accumulation | simcore | no bare `+=`/`-=` on `remaining`/`residual` fields without an allow |
//! | R6 | event-variant-coverage | workspace | every `SimEvent` variant appears in the report fold and the trace codec |
//! | R7 | unseeded-rng | all crates (incl. tests) | no `thread_rng`/`from_entropy`/`OsRng`/`rand::random` |
//!
//! Scopes are crate-directory names, configured by [`ScopeConfig`]
//! (single source of truth, documented in DESIGN.md). R2 is an
//! *exempt*-list: a crate that legitimately reads host clocks must be
//! listed **with a written reason**, and every crate added to the
//! workspace later is checked by default.

use crate::findings::Finding;
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeMap;

/// Static description of a rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Short id (`R1`).
    pub id: &'static str,
    /// Kebab-case name (`nondeterministic-collections`).
    pub name: &'static str,
    /// One-line summary for `--rules` output.
    pub summary: &'static str,
}

/// Every rule simlint implements, in id order.
pub const RULES: [RuleInfo; 7] = [
    RuleInfo {
        id: "R1",
        name: "nondeterministic-collections",
        summary:
            "no HashMap/HashSet in order-sensitive crates (iteration order breaks golden traces)",
    },
    RuleInfo {
        id: "R2",
        name: "wall-clock",
        summary: "no Instant/SystemTime in simulation crates (sim time is kernel-owned)",
    },
    RuleInfo {
        id: "R3",
        name: "stringly-errors",
        summary: "no Result<_, String>: errors are typed enums",
    },
    RuleInfo {
        id: "R4",
        name: "unchecked-panic",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in non-test code without an allow",
    },
    RuleInfo {
        id: "R5",
        name: "raw-float-accumulation",
        summary: "no bare +=/-= on remaining/residual fields in media (drift must be controlled)",
    },
    RuleInfo {
        id: "R6",
        name: "event-variant-coverage",
        summary: "every SimEvent variant is handled by the report fold and the trace codec",
    },
    RuleInfo {
        id: "R7",
        name: "unseeded-rng",
        summary: "no thread_rng/from_entropy/OsRng/rand::random: randomness must be seeded",
    },
];

/// Resolves a rule reference (id or name) to its canonical info.
pub fn rule_by_ref(r: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|info| info.id == r || info.name == r)
}

/// Which crates each crate-scoped rule covers.
///
/// R1 and R5 are *include*-lists (the property they protect only exists
/// in specific crates). R2 is deliberately the inverse — an
/// *exempt*-list with a mandatory written reason per entry — because
/// "reads the host clock" is a property a new crate should have to
/// argue for, not one it silently gets by being absent from a list.
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// R1: crates whose event schedules feed golden-trace hashes — any
    /// observable iteration-order nondeterminism is a reproducibility
    /// bug, and test code that iterates a hash map flakes the suite, so
    /// R1 covers tests too.
    pub order_sensitive: Vec<String>,
    /// R2: `(crate, reason)` pairs exempt from the wall-clock rule.
    /// Every crate *not* listed here executes under simulated time as
    /// far as simlint is concerned.
    pub wall_clock_exempt: Vec<(String, String)>,
    /// R5: crates holding `Medium` implementations whose byte
    /// integration must not regress the PR 6 drift fix.
    pub float_accum: Vec<String>,
}

impl ScopeConfig {
    /// The workspace's real configuration.
    pub fn workspace_default() -> Self {
        let own = |names: &[&str]| names.iter().map(|n| n.to_string()).collect();
        ScopeConfig {
            order_sensitive: own(&[
                "simcore",
                "core",
                "pfs",
                "mpiio",
                "iobench",
                "simlint",
                // serve promises byte-identical response bodies for
                // identical requests; hash-order iteration would leak
                // into JSON rendering.
                "serve",
                // workloads generates scenarios (MachineMix/ClusterMix)
                // whose app order feeds golden-trace determinism.
                "workloads",
            ]),
            wall_clock_exempt: vec![
                (
                    "iobench".to_string(),
                    "measures host wall-clock for scale-trajectory throughput".to_string(),
                ),
                (
                    "bench".to_string(),
                    "figure/scale binaries report host wall-clock runtimes".to_string(),
                ),
                (
                    "serve".to_string(),
                    "HTTP service: request-log latency, socket timeouts, and the \
                     reactor/connection idle, slow-loris, and shutdown deadlines \
                     are host time"
                        .to_string(),
                ),
            ],
            float_accum: own(&["simcore"]),
        }
    }

    /// Whether R1 covers `crate_name`.
    pub fn is_order_sensitive(&self, crate_name: &str) -> bool {
        self.order_sensitive.iter().any(|c| c == crate_name)
    }

    /// Whether R2 covers `crate_name` (i.e. it is *not* exempt).
    pub fn is_wall_clock_checked(&self, crate_name: &str) -> bool {
        self.wall_clock_exempt_reason(crate_name).is_none()
    }

    /// The written justification for a crate's R2 exemption, if any.
    pub fn wall_clock_exempt_reason(&self, crate_name: &str) -> Option<&str> {
        self.wall_clock_exempt
            .iter()
            .find(|(c, _)| c == crate_name)
            .map(|(_, reason)| reason.as_str())
    }

    /// Whether R5 covers `crate_name`.
    pub fn is_float_accum(&self, crate_name: &str) -> bool {
        self.float_accum.iter().any(|c| c == crate_name)
    }
}

/// Per-file input to the per-file rules.
pub struct FileInput {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name (`simcore`, `core`, …; the root umbrella
    /// crate is `calciom-stack`).
    pub crate_name: String,
    /// Lexed source.
    pub lexed: Lexed,
}

/// Runs every per-file rule over one file under the given scope
/// configuration, returning raw findings (before allow resolution).
pub fn scan_file(input: &FileInput, scope: &ScopeConfig) -> Vec<Finding> {
    let mut out = Vec::new();

    if scope.is_order_sensitive(&input.crate_name) {
        r1_nondeterministic_collections(input, &mut out);
    }
    if scope.is_wall_clock_checked(&input.crate_name) {
        r2_wall_clock(input, &mut out);
    }
    r3_stringly_errors(input, &mut out);
    r4_unchecked_panic(input, &mut out);
    if scope.is_float_accum(&input.crate_name) {
        r5_raw_float_accumulation(input, &mut out);
    }
    r7_unseeded_rng(input, &mut out);
    out
}

fn finding(rule: &'static RuleInfo, input: &FileInput, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.id,
        name: rule.name,
        file: input.path.clone(),
        line,
        message,
    }
}

/// R1: `HashMap`/`HashSet` anywhere in an order-sensitive crate,
/// including tests (a test that iterates one flakes the suite).
fn r1_nondeterministic_collections(input: &FileInput, out: &mut Vec<Finding>) {
    for t in &input.lexed.tokens {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(finding(
                &RULES[0],
                input,
                t.line,
                format!(
                    "`{}` iterates in nondeterministic order; use BTreeMap/BTreeSet \
                     or an index-keyed structure (crate `{}` feeds golden traces)",
                    t.text, input.crate_name
                ),
            ));
        }
    }
}

/// R2: `Instant` / `SystemTime` in non-test code of a simulation crate.
fn r2_wall_clock(input: &FileInput, out: &mut Vec<Finding>) {
    for t in &input.lexed.tokens {
        if input.lexed.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(finding(
                &RULES[1],
                input,
                t.line,
                format!(
                    "wall-clock type `{}` in a simulation crate; simulated time \
                     is owned by the kernel (`simcore::SimTime`)",
                    t.text
                ),
            ));
        }
    }
}

/// R3: `Result<_, String>` in non-test code (any crate).
fn r3_stringly_errors(input: &FileInput, out: &mut Vec<Finding>) {
    let toks = &input.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("Result") && !input.lexed.is_test_line(toks[i].line) {
            // Optional turbofish `::` then `<`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct(":"))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
            {
                j += 2;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                if let Some(err_ty) = stringly_error_type(toks, j) {
                    out.push(finding(
                        &RULES[2],
                        input,
                        toks[i].line,
                        format!(
                            "`Result<_, {err_ty}>` breaks the typed-error contract; \
                             use (or extend) the crate's error enum"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

/// Scans a `Result<…>` generic list starting at the `<` token and returns
/// the error type's rendered text when it is `String`. Gives up (returns
/// `None`) on anything that stops looking like a type.
fn stringly_error_type(toks: &[Tok], open: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut err_start: Option<usize> = None;
    // Bounded scan: generic argument lists in this workspace are short;
    // 120 tokens is far beyond any real signature.
    for (k, t) in toks.iter().enumerate().skip(open).take(120) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        let start = err_start?;
                        let err: Vec<&str> =
                            toks[start..k].iter().map(|t| t.text.as_str()).collect();
                        return match err.as_slice() {
                            ["String"]
                            | ["std", ":", ":", "string", ":", ":", "String"]
                            | ["alloc", ":", ":", "string", ":", ":", "String"] => {
                                Some("String".to_string())
                            }
                            _ => None,
                        };
                    }
                }
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "," if angle == 1 && paren == 0 => err_start = Some(k + 1),
                ";" | "{" => return None, // ran out of the type position
                _ => {}
            }
        }
    }
    None
}

/// R4: `.unwrap()` / `.expect(…)` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in non-test code.
fn r4_unchecked_panic(input: &FileInput, out: &mut Vec<Finding>) {
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || input.lexed.is_test_line(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => i > 0 && toks[i - 1].is_punct("."),
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            }
            _ => false,
        };
        if hit {
            let call = if t.text == "unwrap" || t.text == "expect" {
                format!(".{}()", t.text)
            } else {
                format!("{}!", t.text)
            };
            out.push(finding(
                &RULES[3],
                input,
                t.line,
                format!(
                    "`{call}` in non-test library code; return a typed error, or \
                     justify with `// simlint: allow(R4, reason)`"
                ),
            ));
        }
    }
}

/// R5: bare `+=` / `-=` on a `remaining`/`residual`-named field in a
/// crate that hosts `Medium` implementations.
fn r5_raw_float_accumulation(input: &FileInput, out: &mut Vec<Finding>) {
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || input.lexed.is_test_line(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let accum_field = name == "remaining"
            || name == "residual"
            || name.starts_with("remaining_")
            || name.starts_with("residual_");
        if !accum_field {
            continue;
        }
        if let Some(op) = toks.get(i + 1) {
            if op.is_punct("+=") || op.is_punct("-=") {
                out.push(finding(
                    &RULES[4],
                    input,
                    t.line,
                    format!(
                        "bare `{} {}` accumulation drifts; clamp or compensate, and \
                         state the scheme in `// simlint: allow(R5, reason)`",
                        t.text, op.text
                    ),
                ));
            }
        }
    }
}

/// R7: unseeded randomness anywhere (tests included — an unseeded test is
/// a flaky test).
fn r7_unseeded_rng(input: &FileInput, out: &mut Vec<Finding>) {
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" => true,
            "random" => {
                // `rand::random` only; a field or method named `random`
                // elsewhere is fine.
                i >= 3
                    && toks[i - 1].is_punct(":")
                    && toks[i - 2].is_punct(":")
                    && toks[i - 3].is_ident("rand")
            }
            _ => false,
        };
        if hit {
            out.push(finding(
                &RULES[6],
                input,
                t.line,
                format!(
                    "`{}` draws unseeded randomness; use a seeded generator \
                     (`simcore::rng`) so runs reproduce",
                    t.text
                ),
            ));
        }
    }
}

/// Configuration of the workspace-level R6 check.
#[derive(Debug, Clone)]
pub struct EventCoverageConfig {
    /// Enum whose variants are checked (`SimEvent`).
    pub enum_name: String,
    /// File holding the enum definition.
    pub def_path: String,
    /// Files in which every variant must appear as `Enum::Variant`
    /// (the report fold and the trace codec).
    pub coverage_paths: Vec<String>,
}

impl EventCoverageConfig {
    /// The workspace's real configuration: `SimEvent` must be folded by
    /// `ReportBuilder` (observe.rs) and encoded/decoded by the trace
    /// codec (trace.rs).
    pub fn workspace_default() -> Self {
        EventCoverageConfig {
            enum_name: "SimEvent".to_string(),
            def_path: "crates/core/src/observe.rs".to_string(),
            coverage_paths: vec![
                "crates/core/src/observe.rs".to_string(),
                "crates/core/src/trace.rs".to_string(),
            ],
        }
    }
}

/// R6: every variant of the configured enum appears as `Enum::Variant`
/// in each coverage file. Inside the enum definition variants are bare
/// idents, so the definition itself never satisfies coverage.
pub fn check_event_coverage(
    cfg: &EventCoverageConfig,
    files: &BTreeMap<String, Lexed>,
) -> Vec<Finding> {
    let rule = &RULES[5];
    let mut out = Vec::new();
    let Some(def) = files.get(&cfg.def_path) else {
        out.push(Finding {
            rule: rule.id,
            name: rule.name,
            file: cfg.def_path.clone(),
            line: 1,
            message: format!(
                "enum `{}` definition file not found in scan set",
                cfg.enum_name
            ),
        });
        return out;
    };
    let variants = enum_variants(&def.tokens, &cfg.enum_name);
    if variants.is_empty() {
        out.push(Finding {
            rule: rule.id,
            name: rule.name,
            file: cfg.def_path.clone(),
            line: 1,
            message: format!("enum `{}` not found or has no variants", cfg.enum_name),
        });
        return out;
    }
    for path in &cfg.coverage_paths {
        let Some(lexed) = files.get(path) else {
            out.push(Finding {
                rule: rule.id,
                name: rule.name,
                file: path.clone(),
                line: 1,
                message: format!(
                    "coverage file for `{}` not found in scan set",
                    cfg.enum_name
                ),
            });
            continue;
        };
        for (variant, def_line) in &variants {
            if !mentions_variant(&lexed.tokens, &cfg.enum_name, variant) {
                out.push(Finding {
                    rule: rule.id,
                    name: rule.name,
                    file: cfg.def_path.clone(),
                    line: *def_line,
                    message: format!(
                        "`{}::{}` is not handled in {} — report fold and trace \
                         codec must cover every variant",
                        cfg.enum_name, variant, path
                    ),
                });
            }
        }
    }
    out
}

/// Extracts `(variant, line)` pairs from `enum <name> { … }`.
fn enum_variants(toks: &[Tok], enum_name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(enum_name)) {
            // Skip to the opening brace (no generics on event enums, but
            // tolerate them).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        return variants; // closed the enum body
                    }
                } else if depth == 1 && t.kind == TokKind::Ident {
                    // First ident at depth 1 after `{` or `,` is the
                    // variant name; skip its payload to the next `,`.
                    variants.push((t.text.clone(), t.line));
                    let mut k = j + 1;
                    let mut inner = 0i32;
                    while k < toks.len() {
                        let u = &toks[k];
                        if u.is_punct("{") || u.is_punct("(") || u.is_punct("[") {
                            inner += 1;
                        } else if u.is_punct("}") || u.is_punct(")") || u.is_punct("]") {
                            if inner == 0 {
                                return variants; // enum body closed
                            }
                            inner -= 1;
                        } else if u.is_punct(",") && inner == 0 {
                            break;
                        }
                        k += 1;
                    }
                    j = k;
                }
                j += 1;
            }
            return variants;
        }
        i += 1;
    }
    variants
}

/// True when `Enum::Variant` appears in the token stream.
fn mentions_variant(toks: &[Tok], enum_name: &str, variant: &str) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident(enum_name)
            && w[1].is_punct(":")
            && w[2].is_punct(":")
            && w[3].is_ident(variant)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn input(crate_name: &str, src: &str) -> FileInput {
        FileInput {
            path: format!("crates/{crate_name}/src/test_input.rs"),
            crate_name: crate_name.to_string(),
            lexed: lex(src),
        }
    }

    fn scan_file(input: &FileInput) -> Vec<Finding> {
        super::scan_file(input, &ScopeConfig::workspace_default())
    }

    #[test]
    fn r1_only_fires_in_order_sensitive_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}";
        assert_eq!(scan_file(&input("simcore", src)).len(), 2);
        assert_eq!(scan_file(&input("workloads", src)).len(), 2);
        assert!(scan_file(&input("bench", src)).is_empty());
    }

    #[test]
    fn r1_covers_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}";
        let found = scan_file(&input("core", src));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "R1");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn r2_skips_tests_and_exempt_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(scan_file(&input("pfs", src)).len(), 1);
        assert!(scan_file(&input("iobench", src)).is_empty());
        let test_src = "#[test]\nfn t() { let t = Instant::now(); }";
        assert!(scan_file(&input("pfs", test_src)).is_empty());
    }

    #[test]
    fn r2_exemptions_are_reasoned_and_new_crates_are_checked_by_default() {
        let scope = ScopeConfig::workspace_default();
        // Every exemption carries a written justification.
        for (krate, reason) in &scope.wall_clock_exempt {
            assert!(
                !reason.trim().is_empty(),
                "{krate} exemption needs a reason"
            );
        }
        let src = "fn f() { let t = Instant::now(); }";
        // serve is exempt (host-time request logs) …
        assert!(scope.wall_clock_exempt_reason("serve").is_some());
        assert!(scan_file(&input("serve", src)).is_empty());
        // … but a crate added to the workspace tomorrow is checked until
        // someone argues its exemption here.
        assert!(scope.is_wall_clock_checked("some-future-crate"));
        assert_eq!(scan_file(&input("some-future-crate", src)).len(), 1);
    }

    #[test]
    fn serve_stays_covered_by_r3_and_r4() {
        let bad = "pub fn f(x: Option<u32>) -> Result<u32, String> { Ok(x.unwrap()) }";
        let found = scan_file(&input("serve", bad));
        assert!(found.iter().any(|f| f.rule == "R3"), "{found:?}");
        assert!(found.iter().any(|f| f.rule == "R4"), "{found:?}");
    }

    #[test]
    fn r3_matches_string_error_types_only() {
        let bad = "pub fn f() -> Result<u32, String> { Ok(1) }";
        let found = scan_file(&input("workloads", bad));
        assert!(found.iter().any(|f| f.rule == "R3"), "{found:?}");
        let nested = "pub fn g() -> Result<Vec<(u32, String)>, Error> { todo() }";
        assert!(!scan_file(&input("workloads", nested))
            .iter()
            .any(|f| f.rule == "R3"));
        let qualified = "pub fn h() -> Result<(), std::string::String> { Ok(()) }";
        assert!(scan_file(&input("workloads", qualified))
            .iter()
            .any(|f| f.rule == "R3"));
    }

    #[test]
    fn r4_catches_the_panic_family_outside_tests() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a > b { panic!(\"boom\") }
    unreachable!()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}";
        let found = scan_file(&input("core", src));
        let r4: Vec<_> = found.iter().filter(|f| f.rule == "R4").collect();
        assert_eq!(r4.len(), 4, "{r4:?}");
        assert!(r4.iter().all(|f| f.line <= 5));
    }

    #[test]
    fn r4_does_not_fire_on_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }";
        assert!(!scan_file(&input("core", src))
            .iter()
            .any(|f| f.rule == "R4"));
    }

    #[test]
    fn r5_fires_on_remaining_accumulation_in_simcore_only() {
        let src = "fn advance(&mut self) { self.remaining -= moved; self.other += 1.0; }";
        let found = scan_file(&input("simcore", src));
        assert_eq!(found.iter().filter(|f| f.rule == "R5").count(), 1);
        assert!(!scan_file(&input("core", src))
            .iter()
            .any(|f| f.rule == "R5"));
    }

    #[test]
    fn r7_fires_on_unseeded_rng_even_in_tests() {
        let src = "#[test]\nfn t() { let x: u8 = rand::random(); let r = thread_rng(); }";
        let found = scan_file(&input("workloads", src));
        assert_eq!(found.iter().filter(|f| f.rule == "R7").count(), 2);
        // A method merely *named* random is fine.
        let ok = "fn f(d: &Dist) -> f64 { d.random() }";
        assert!(scan_file(&input("workloads", ok)).is_empty());
    }

    #[test]
    fn r6_reports_missing_variant_coverage() {
        let def = "pub enum Ev { A { x: u32 }, B(u8), C, }";
        let codec_missing_c =
            "fn enc(e: &Ev) { match e { Ev::A { .. } => {}, Ev::B(_) => {}, _ => {} } }";
        let mut files = BTreeMap::new();
        files.insert("def.rs".to_string(), lex(def));
        files.insert("codec.rs".to_string(), lex(codec_missing_c));
        let cfg = EventCoverageConfig {
            enum_name: "Ev".to_string(),
            def_path: "def.rs".to_string(),
            coverage_paths: vec!["codec.rs".to_string()],
        };
        let found = check_event_coverage(&cfg, &files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Ev::C"));
    }

    #[test]
    fn r6_passes_on_full_coverage() {
        let def = "pub enum Ev { A, B, }";
        let codec = "fn enc(e: &Ev) { match e { Ev::A => {}, Ev::B => {} } }";
        let mut files = BTreeMap::new();
        files.insert("def.rs".to_string(), lex(def));
        files.insert("codec.rs".to_string(), lex(codec));
        let cfg = EventCoverageConfig {
            enum_name: "Ev".to_string(),
            def_path: "def.rs".to_string(),
            coverage_paths: vec!["codec.rs".to_string()],
        };
        assert!(check_event_coverage(&cfg, &files).is_empty());
    }

    #[test]
    fn enum_variants_parses_payload_shapes() {
        let toks = lex("enum E { Unit, Tuple(u8, Vec<u32>), Struct { a: u8, b: B }, Last }").tokens;
        let names: Vec<String> = enum_variants(&toks, "E")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["Unit", "Tuple", "Struct", "Last"]);
    }
}
