//! A lightweight Rust lexer: just enough tokenization for invariant
//! linting.
//!
//! The output is a flat list of [`Tok`]ens carrying their source line.
//! Comments, string/char literal *contents*, and doc examples never
//! produce tokens, so a rule that matches the ident `unwrap` cannot be
//! fooled by `// .unwrap()` in prose or by `"unwrap"` in a message.
//!
//! Two side channels come out of the same pass:
//!
//! * **allow annotations** — `// simlint: allow(RULE, reason)` comments
//!   are parsed into [`AllowAnnotation`]s and resolved to the line of
//!   code they cover (the same line for a trailing comment, the next
//!   code line for a standalone one);
//! * **test regions** — `#[cfg(test)]` / `#[test]` attributed items are
//!   tracked so rules can skip test code; [`Lexed::is_test_line`]
//!   answers per line.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A literal (number, string, char, byte string). String-ish literals
    /// keep only a placeholder text, never their contents.
    Literal,
    /// A lifetime such as `'a` (kept distinct so `'static` is not a char).
    Lifetime,
    /// Punctuation. Multi-character operators that matter for parsing
    /// (`->`, `=>`, `+=`, `-=`) are fused into one token; everything else
    /// is a single character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token text (`"unwrap"`, `"::"` is two `:` tokens, `"+="` one).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Lexeme class.
    pub kind: TokKind,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `// simlint: allow(RULE, reason)` annotation, resolved to the code
/// line it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// Rule id (`R4`) or rule name (`unchecked-panic`) as written.
    pub rule: String,
    /// Free-text justification (may be empty — rules reject that).
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Code line the annotation covers.
    pub target_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// All well-formed allow annotations, resolved to target lines.
    pub allows: Vec<AllowAnnotation>,
    /// Comments that look like simlint annotations but do not parse
    /// (reported as findings so a typo cannot silently disable a rule).
    pub malformed_allows: Vec<(u32, String)>,
    /// Sorted, disjoint (start, end) inclusive line ranges of test code
    /// (`#[cfg(test)]` modules, `#[test]` functions).
    test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The allow annotations covering `line`, if any.
    pub fn allows_for(&self, line: u32) -> impl Iterator<Item = &AllowAnnotation> {
        self.allows.iter().filter(move |a| a.target_line == line)
    }
}

/// Pending annotation whose target line is the next code line.
struct PendingAllow {
    rule: String,
    reason: String,
    comment_line: u32,
    /// True when tokens were already emitted on the comment's own line
    /// (trailing comment): the target is that same line.
    trailing: bool,
}

/// Lexes Rust source. Never fails: unterminated constructs simply end the
/// token stream (rules then see a truncated but well-formed prefix).
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut pending: Vec<PendingAllow> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Resolves pending standalone annotations once a code token appears.
    fn flush_pending(pending: &mut Vec<PendingAllow>, out: &mut Lexed, code_line: u32) {
        for p in pending.drain(..) {
            let target = if p.trailing {
                p.comment_line
            } else {
                code_line
            };
            out.allows.push(AllowAnnotation {
                rule: p.rule,
                reason: p.reason,
                comment_line: p.comment_line,
                target_line: target,
            });
        }
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): scan to end of line,
                // harvesting a possible simlint annotation.
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let trailing = out.tokens.last().is_some_and(|t| t.line == line);
                harvest_annotation(&text, line, trailing, &mut pending, &mut out);
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                // Block comment, nesting as in Rust.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                flush_pending(&mut pending, &mut out, line);
                let start_line = line;
                i = skip_string(&bytes, i, &mut line);
                out.tokens.push(Tok {
                    text: "\"…\"".to_string(),
                    line: start_line,
                    kind: TokKind::Literal,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                flush_pending(&mut pending, &mut out, line);
                let start_line = line;
                i = skip_raw_or_byte_string(&bytes, i, &mut line);
                out.tokens.push(Tok {
                    text: "\"…\"".to_string(),
                    line: start_line,
                    kind: TokKind::Literal,
                });
            }
            '\'' => {
                flush_pending(&mut pending, &mut out, line);
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident not closed by `'`.
                if bytes
                    .get(i + 1)
                    .is_some_and(|c| c.is_alphabetic() || *c == '_')
                {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'\'') {
                        // Char literal like 'a'.
                        out.tokens.push(Tok {
                            text: "'…'".to_string(),
                            line,
                            kind: TokKind::Literal,
                        });
                        i = j + 1;
                    } else {
                        let text: String = bytes[i..j].iter().collect();
                        out.tokens.push(Tok {
                            text,
                            line,
                            kind: TokKind::Lifetime,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: 'x', '\n', '\''.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'\\') {
                        j += 2; // skip the escaped character
                    } else {
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        text: "'…'".to_string(),
                        line,
                        kind: TokKind::Literal,
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                flush_pending(&mut pending, &mut out, line);
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                out.tokens.push(Tok {
                    text,
                    line,
                    kind: TokKind::Ident,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                flush_pending(&mut pending, &mut out, line);
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // `1.5`, but not the `.` of `1.method()` or `1..2`.
                        j += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(bytes.get(j.wrapping_sub(1)), Some('e') | Some('E'))
                    {
                        // exponent sign: 1e-6
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = bytes[i..j].iter().collect();
                out.tokens.push(Tok {
                    text,
                    line,
                    kind: TokKind::Literal,
                });
                i = j;
            }
            _ => {
                flush_pending(&mut pending, &mut out, line);
                // Fuse the few multi-char operators parsing cares about:
                // `->` / `=>` (so `>` depth tracking works inside generics)
                // and `+=` / `-=` (rule R5 matches them as one token).
                let two: Option<&str> = match (c, bytes.get(i + 1)) {
                    ('-', Some('>')) => Some("->"),
                    ('=', Some('>')) => Some("=>"),
                    ('+', Some('=')) => Some("+="),
                    ('-', Some('=')) => Some("-="),
                    _ => None,
                };
                if let Some(op) = two {
                    out.tokens.push(Tok {
                        text: op.to_string(),
                        line,
                        kind: TokKind::Punct,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Tok {
                        text: c.to_string(),
                        line,
                        kind: TokKind::Punct,
                    });
                    i += 1;
                }
            }
        }
    }
    // Standalone annotations at EOF cover nothing; resolve them to their
    // own line so they at least show up deterministically.
    flush_pending(&mut pending, &mut out, line);

    out.test_ranges = find_test_ranges(&out.tokens);
    out
}

/// Parses a line comment body for a simlint annotation and records it.
fn harvest_annotation(
    comment: &str,
    line: u32,
    trailing: bool,
    pending: &mut Vec<PendingAllow>,
    out: &mut Lexed,
) {
    // Doc comments start with an extra `/` or `!`; strip before matching.
    let body = comment.trim_start_matches(['/', '!']).trim();
    let Some(rest) = body.strip_prefix("simlint:") else {
        return;
    };
    let rest = rest.trim();
    let parsed = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
        .and_then(|inner| {
            let (rule, reason) = inner.split_once(',')?;
            let rule = rule.trim();
            let reason = reason.trim();
            if rule.is_empty() {
                return None;
            }
            Some((rule.to_string(), reason.to_string()))
        });
    match parsed {
        Some((rule, reason)) => pending.push(PendingAllow {
            rule,
            reason,
            comment_line: line,
            trailing,
        }),
        None => out.malformed_allows.push((line, body.to_string())),
    }
}

fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    // r"…", r#"…"#, br"…", b"…", br#"…"#
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&'"');
    }
    bytes[i] == 'b' && bytes.get(j) == Some(&'"')
}

fn skip_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], '"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == 'b' {
        i += 1;
    }
    if bytes.get(i) != Some(&'r') {
        // Plain byte string b"…": same escape rules as a normal string.
        return skip_string(bytes, i, line);
    }
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&'"') {
        return i;
    }
    i += 1;
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Computes the line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// An attribute is a test marker when its first ident is `test`, or its
/// first ident is `cfg` and `test` appears among its tokens (covers
/// `#[cfg(test)]` and `#[cfg(all(test, …))]`). The marked item's region
/// runs from the attribute to the matching `}` of the first `{` that
/// follows it (or to the terminating `;` for item declarations).
fn find_test_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute tokens up to the matching `]`.
            let attr_start = i;
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let attr = &tokens[i + 2..j.min(tokens.len())];
            let first = attr.first();
            let is_test_attr = match first {
                Some(t) if t.is_ident("test") => true,
                Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
                _ => false,
            };
            if is_test_attr {
                // Find the item's body: first `{` after the attribute
                // (skipping nested attributes), matched to its `}`.
                let mut k = j + 1;
                let mut brace = 0i32;
                let mut opened = false;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        brace += 1;
                        opened = true;
                    } else if tokens[k].is_punct("}") {
                        brace -= 1;
                        if opened && brace == 0 {
                            break;
                        }
                    } else if tokens[k].is_punct(";") && !opened {
                        break; // `#[cfg(test)] mod tests;` — no inline body
                    }
                    k += 1;
                }
                let end_line = tokens
                    .get(k.min(tokens.len().saturating_sub(1)))
                    .map(|t| t.line)
                    .unwrap_or(u32::MAX);
                ranges.push((tokens[attr_start].line, end_line));
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* SystemTime in /* nested */ block */
            let s = "Instant::now() in a string";
            let r = r#"HashSet in a raw "string""#;
            let c = 'x';
            let esc = '\'';
            fn real() {}
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "c", "let", "esc", "fn", "real"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { x }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        // And the idents after the lifetimes are still seen.
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn compound_operators_are_fused() {
        let toks = lex("a += 1; b -= 2; fn f() -> u8 { match x { _ => 0 } }").tokens;
        assert!(toks.iter().any(|t| t.is_punct("+=")));
        assert!(toks.iter().any(|t| t.is_punct("-=")));
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert!(toks.iter().any(|t| t.is_punct("=>")));
    }

    #[test]
    fn numbers_with_exponents_and_floats_lex_as_one_literal() {
        let toks = lex("let x = 1.5e-6 + 0xFF + 1_000.25;").tokens;
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["1.5e-6", "0xFF", "1_000.25"]);
        // `1.0.min(x)` keeps the method call separate.
        let toks = lex("let y = 1.0.min(z);").tokens;
        assert!(toks.iter().any(|t| t.is_ident("min")));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let a = 1; // simlint: allow(R4, known safe)\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "R4");
        assert_eq!(a.reason, "known safe");
        assert_eq!(a.target_line, 1);
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// simlint: allow(wall-clock, timing a host benchmark)\n\nlet t = now();";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].target_line, 3);
    }

    #[test]
    fn malformed_allow_is_reported() {
        let lexed = lex("// simlint: allow(R4)\nlet x = 1;");
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.malformed_allows.len(), 1);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = "\
fn lib() {}                  // 1
#[cfg(test)]                 // 2
mod tests {                  // 3
    use super::*;            // 4
    #[test]                  // 5
    fn t() { lib(); }        // 6
}                            // 7
fn lib2() {}                 // 8
#[test]
fn top_level_test() {
}";
        let lexed = lex(src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(4));
        assert!(lexed.is_test_line(6));
        assert!(!lexed.is_test_line(8));
        assert!(lexed.is_test_line(10));
    }

    #[test]
    fn non_test_attributes_do_not_open_regions() {
        let src = "#[derive(Debug)]\nstruct S { x: u8 }\nfn f() {}";
        let lexed = lex(src);
        assert!(!lexed.is_test_line(2));
        assert!(!lexed.is_test_line(3));
    }
}
