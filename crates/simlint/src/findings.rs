//! Findings: what a rule reports, and how reports are rendered.

use std::fmt::Write as _;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `R1`.
    pub rule: &'static str,
    /// Rule name, e.g. `nondeterministic-collections`.
    pub name: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// How a raw finding was disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Reported: fails the run.
    Active,
    /// Suppressed by an inline `// simlint: allow(…)` annotation.
    AllowedInline,
    /// Suppressed by an allowlist-file entry.
    AllowedByFile,
}

/// The complete outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that fail the run, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by inline annotations or the allowlist file.
    pub suppressed: Vec<(Finding, Disposition)>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Rules that ran.
    pub rules: Vec<(&'static str, &'static str)>,
}

impl Report {
    /// True when the run is clean (no active findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {}({}) {}",
                f.file, f.line, f.rule, f.name, f.message
            );
        }
        let _ = writeln!(
            out,
            "simlint: {} finding{} ({} suppressed by allows) across {} files",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned
        );
        out
    }

    /// Renders the machine-readable report (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_finding(&mut out, f, None);
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, (f, d)) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_finding(&mut out, f, Some(*d));
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        );
        out
    }
}

fn write_finding(out: &mut String, f: &Finding, disposition: Option<Disposition>) {
    let _ = write!(
        out,
        "{{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
        json_str(f.rule),
        json_str(f.name),
        json_str(&f.file),
        f.line,
        json_str(&f.message)
    );
    if let Some(d) = disposition {
        let label = match d {
            Disposition::Active => "active",
            Disposition::AllowedInline => "inline-allow",
            Disposition::AllowedByFile => "allowlist",
        };
        let _ = write!(out, ", \"suppressed_by\": {}", json_str(label));
    }
    out.push('}');
}

/// Minimal JSON string escaping (the only JSON this tool emits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "R1",
            name: "nondeterministic-collections",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "said \"hello\"\tand left".to_string(),
        }
    }

    #[test]
    fn text_report_lists_findings_and_summary() {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.findings.push(finding());
        let text = r.to_text();
        assert!(text.contains("crates/x/src/lib.rs:7: R1(nondeterministic-collections)"));
        assert!(text.contains("1 finding (0 suppressed by allows) across 3 files"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = Report::default();
        r.findings.push(finding());
        let json = r.to_json();
        assert!(json.contains(r#"said \"hello\"\tand left"#));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"clean\": true"));
    }
}
