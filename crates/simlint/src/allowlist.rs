//! The allowlist file: workspace-level suppressions.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! # rule        path-prefix          reason…
//! R4            crates/bench/src/    experiment drivers may abort a figure run
//! unchecked-panic crates/foo/src/bar.rs generated code
//! ```
//!
//! An entry suppresses every finding of its rule whose file path starts
//! with the given prefix. The reason is mandatory — an entry without one
//! is a parse error, for the same reason inline allows require one.

use crate::error::LintError;
use crate::rules::rule_by_ref;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Canonical rule id (`R4`), resolved from id or name.
    pub rule_id: &'static str,
    /// Path prefix the entry covers (workspace-relative, `/` separators).
    pub path_prefix: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line in the allowlist file (for error reporting).
    pub line: u32,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format. `source_name` labels parse errors.
    pub fn parse(text: &str, source_name: &str) -> Result<Allowlist, LintError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule_ref = parts.next().unwrap_or_default();
            let prefix = parts.next().unwrap_or_default().trim();
            let reason = parts.next().unwrap_or_default().trim();
            let Some(rule) = rule_by_ref(rule_ref) else {
                return Err(LintError::Allowlist {
                    file: source_name.to_string(),
                    line: line_no,
                    problem: format!("unknown rule `{rule_ref}`"),
                });
            };
            if prefix.is_empty() {
                return Err(LintError::Allowlist {
                    file: source_name.to_string(),
                    line: line_no,
                    problem: "missing path prefix".to_string(),
                });
            }
            if reason.is_empty() {
                return Err(LintError::Allowlist {
                    file: source_name.to_string(),
                    line: line_no,
                    problem: "missing reason (allows must be justified)".to_string(),
                });
            }
            entries.push(AllowEntry {
                rule_id: rule.id,
                path_prefix: prefix.to_string(),
                reason: reason.to_string(),
                line: line_no,
            });
        }
        Ok(Allowlist { entries })
    }

    /// True when an entry covers `(rule_id, file)`.
    pub fn covers(&self, rule_id: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule_id == rule_id && file.starts_with(&e.path_prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_prefixes() {
        let text = "\
# drivers may abort
R4 crates/bench/src/ experiment drivers abort the figure run, not a simulation
unchecked-panic crates/foo/src/gen.rs generated code
";
        let list = Allowlist::parse(text, "simlint.allow").unwrap();
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[1].rule_id, "R4");
        assert!(list.covers("R4", "crates/bench/src/figures/fig01.rs"));
        assert!(list.covers("R4", "crates/foo/src/gen.rs"));
        assert!(!list.covers("R4", "crates/core/src/session.rs"));
        assert!(!list.covers("R1", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_missing_reasons() {
        assert!(matches!(
            Allowlist::parse("R99 crates/x/ because", "f"),
            Err(LintError::Allowlist { line: 1, .. })
        ));
        assert!(matches!(
            Allowlist::parse("R4 crates/x/", "f"),
            Err(LintError::Allowlist { .. })
        ));
        assert!(matches!(
            Allowlist::parse("R4", "f"),
            Err(LintError::Allowlist { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let list = Allowlist::parse("\n# only comments\n\n", "f").unwrap();
        assert!(list.entries.is_empty());
    }
}
