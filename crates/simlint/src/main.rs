//! Command-line front-end for the workspace invariant checker.
//!
//! ```text
//! simlint [--workspace] [--root DIR] [--allowlist FILE] [--json] [--rules]
//! ```
//!
//! Exit codes: 0 = clean, 1 = active findings, 2 = usage or I/O error.

use simlint::allowlist::Allowlist;
use simlint::error::LintError;
use simlint::rules::RULES;
use simlint::{find_workspace_root, lint_workspace, load_default_allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, LintError> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        json: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // --workspace is the only (and default) scan mode; accepted
            // so the CI invocation is self-describing.
            "--workspace" => {}
            "--json" => opts.json = true,
            "--rules" => opts.list_rules = true,
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".to_string()))?;
                opts.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--allowlist needs a file".to_string()))?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                opts.list_rules = true;
            }
            other => {
                return Err(LintError::Usage(format!(
                    "unrecognized argument `{other}` (see --help)"
                )))
            }
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
simlint — static invariant checker for the CALCioM workspace

USAGE:
    simlint [--workspace] [--root DIR] [--allowlist FILE] [--json] [--rules]

OPTIONS:
    --workspace        Scan the whole workspace (the default and only mode)
    --root DIR         Start the workspace-root search from DIR (default: cwd)
    --allowlist FILE   Allowlist file (default: <root>/simlint.allow if present)
    --json             Emit the machine-readable report instead of text
    --rules            List the rules and exit
";

fn run(opts: &Options) -> Result<ExitCode, LintError> {
    if opts.list_rules {
        for r in &RULES {
            println!("{:<4} {:<32} {}", r.id, r.name, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let start = match &opts.root {
        Some(dir) => dir.clone(),
        None => std::env::current_dir().map_err(|source| LintError::Io {
            path: ".".to_string(),
            source,
        })?,
    };
    let root = find_workspace_root(&start)?;
    let allowlist: Option<Allowlist> = match &opts.allowlist {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|source| LintError::Io {
                path: path.display().to_string(),
                source,
            })?;
            Some(Allowlist::parse(&text, &path.display().to_string())?)
        }
        None => load_default_allowlist(&root)?,
    };
    let report = lint_workspace(&root, allowlist.as_ref())?;
    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|opts| run(&opts)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
