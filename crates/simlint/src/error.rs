//! Typed errors for the linter itself (simlint is subject to its own R3).

use std::fmt;

/// Everything that can go wrong while running the linter (findings are
/// not errors — they are the product).
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// No workspace root (a `Cargo.toml` containing `[workspace]`) was
    /// found above the starting directory.
    WorkspaceNotFound {
        /// Where the upward search started.
        start: String,
    },
    /// The allowlist file does not parse.
    Allowlist {
        /// The allowlist file.
        file: String,
        /// 1-based line of the offending entry.
        line: u32,
        /// What is wrong with it.
        problem: String,
    },
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            LintError::WorkspaceNotFound { start } => write!(
                f,
                "no workspace root found above {start} (looked for a Cargo.toml with [workspace])"
            ),
            LintError::Allowlist {
                file,
                line,
                problem,
            } => write!(f, "{file}:{line}: bad allowlist entry: {problem}"),
            LintError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LintError::Allowlist {
            file: "simlint.allow".to_string(),
            line: 3,
            problem: "missing reason".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "simlint.allow:3: bad allowlist entry: missing reason"
        );
        let e = LintError::WorkspaceNotFound {
            start: "/tmp".to_string(),
        };
        assert!(e.to_string().contains("/tmp"));
    }
}
