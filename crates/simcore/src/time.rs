//! Simulated time.
//!
//! The engine uses an integer tick clock (1 tick = 1 microsecond) so that
//! event ordering is exact and runs are bit-for-bit reproducible, while the
//! public API exposes convenient second-based conversions for the
//! experiment harnesses (the paper reports everything in seconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of ticks per simulated second (microsecond resolution).
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An absolute simulated time stamp, in integer microseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in integer microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time stamp; used as an "infinite horizon"
    /// sentinel when scheduling.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time stamp from raw microsecond ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Builds a time stamp from (possibly fractional) seconds.
    ///
    /// Negative inputs saturate to zero: experiment sweeps use signed `dt`
    /// offsets and clamp the earlier application to the epoch.
    pub fn from_secs(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond ticks since the epoch.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time stamp as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two time stamps.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microsecond ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Builds a duration from (possibly fractional) seconds, saturating at
    /// zero for negative inputs.
    pub fn from_secs(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Raw microsecond ticks.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_secs_round_trips() {
        let t = SimTime::from_secs(12.5);
        assert_eq!(t.ticks(), 12_500_000);
        assert!((t.as_secs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_secs(1.0);
        let d = SimDuration::from_secs(2.0);
        assert_eq!(t - d, SimTime::ZERO);
        assert_eq!(SimTime::MAX + d, SimTime::MAX);
    }

    #[test]
    fn saturating_since_orders_correctly() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2.0));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(2.0)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(
            SimDuration::from_millis(1500.0),
            SimDuration::from_secs(1.5)
        );
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_ticks(1).is_zero());
        assert_eq!(
            SimDuration::from_secs(1.0).saturating_sub(SimDuration::from_secs(2.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250.0)), "0.250000s");
    }
}
