//! Virtual-time fair-throughput-sharing network.
//!
//! [`VtFairNetwork`] is a second [`Medium`](crate::kernel::Medium)-capable
//! bandwidth model next to [`FluidNetwork`](crate::fluid::FluidNetwork).
//! Where the fluid model re-solves a whole constraint component after
//! every mutation (progressive filling — exact weighted max-min at
//! `O(component)` per change), this model predicts each flow's completion
//! *once*, at insert, in *virtual work* units, and keeps flows in a
//! priority queue per constraint group:
//!
//! * every group (one per capacity constraint) carries a cumulative
//!   **virtual time** `V` — bytes moved per unit of fair-share weight
//!   since the group was created;
//! * a flow inserted with `remaining` bytes and weight `w` is assigned
//!   the virtual finish tag `finish_v = V + remaining / w` and pushed on
//!   the group's min-heap;
//! * real time advances `V` at the group's *per-weight rate*
//!   `rv = min(C / W, k_min)` — capacity over total active weight, capped
//!   by the smallest member `rate_cap / weight` ratio (maintained as an
//!   ordered multiset);
//! * flows complete in `finish_v` order, popped from the heap.
//!
//! **The virtual-time invariant:** while every member's rate stays
//! proportional to its weight (`rate_i = w_i · rv`), a change of `rv`
//! rescales all completion times by the same factor and therefore never
//! reorders the heap. Insert, pause, resume and complete are `O(log n)`
//! (heap + multiset ops); advancing time is `O(groups)`; **no mutation
//! ever re-solves the allocation**.
//!
//! ## Exact vs. approximate
//!
//! The per-weight rate is the first progressive-filling increment of the
//! fluid solver, so this model reproduces weighted max-min *exactly* on
//! **equal-share topologies**: every flow is governed by one binding
//! constraint (its *home group*, fixed at insert as its smallest-capacity
//! finite constraint), and within a group the `rate_cap / weight` ratio is
//! uniform — then either the capacity binds for everyone (`rv = C/W`) or
//! every flow runs at its own cap (`rv = k`). That is precisely the shape
//! the PFS layer produces under request-stream-proportional sharing: each
//! server flow has `weight = procs` and `cap = procs · link_bw / servers`,
//! a uniform ratio of `link_bw / servers`. With heterogeneous ratios
//! inside a group, or when a non-home constraint would bind, the model is
//! a *conservative approximation*: it caps the whole group at the
//! tightest ratio rather than redistributing the capped flows' slack.
//! The differential property suite pins the exact regime against the
//! fluid solver.

use crate::fluid::{completion_threshold, ConstraintId, FlowId, FlowProgress, FlowSpec, EPS};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Which bandwidth-sharing model a file system (and everything above it)
/// runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SharingModel {
    /// The incremental weighted max-min solver
    /// ([`FluidNetwork`](crate::fluid::FluidNetwork)) — exact,
    /// `O(component)` per mutation.
    #[default]
    MaxMin,
    /// The virtual-time fair-throughput model ([`VtFairNetwork`]) —
    /// `O(log n)` per mutation, exact on equal-share topologies.
    FairFast,
}

impl SharingModel {
    /// Stable codec label (`max-min` / `fair-fast`).
    pub fn label(self) -> &'static str {
        match self {
            SharingModel::MaxMin => "max-min",
            SharingModel::FairFast => "fair-fast",
        }
    }

    /// Parses [`SharingModel::label`] output.
    pub fn from_label(s: &str) -> Option<SharingModel> {
        match s {
            "max-min" => Some(SharingModel::MaxMin),
            "fair-fast" => Some(SharingModel::FairFast),
            _ => None,
        }
    }
}

/// Where a flow currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    /// Active member of the group for the given constraint index.
    Group(u32),
    /// Active with no finite constraint: runs at its own (finite) cap,
    /// tracked in the lone pseudo-group.
    Lone,
    /// Active but unable to progress (no finite cap and no finite
    /// constraint): rate 0, produces no completion event.
    Starved,
    /// Paused by the coordination layer.
    Paused,
    /// All bytes transferred; stays registered until removed.
    Complete,
}

#[derive(Debug, Clone)]
struct Slot {
    /// Generation minted into this flow's public [`FlowId`].
    gen: u32,
    weight: f64,
    rate_cap: f64,
    bytes: f64,
    /// `rate_cap / weight`, this flow's key in the group ratio multiset.
    cap_ratio: f64,
    /// Settled bytes still to transfer (as of `settled_v`).
    remaining: f64,
    /// Settled bytes moved so far.
    transferred: f64,
    /// Group (or lone) virtual time at the last settlement. Meaningless
    /// while paused/starved/complete.
    settled_v: f64,
    /// Home group chosen at insert (kept across pause/resume).
    home: Option<u32>,
    residence: Residence,
}

/// Heap entry: virtual finish tag (positive, so IEEE bit order is value
/// order), slot index as a deterministic tie-break, and the slot epoch
/// that validates it (lazy deletion — the epoch bumps whenever the flow
/// leaves its group).
type HeapEntry = Reverse<(u64, u32, u32)>;

#[derive(Debug, Clone, Default)]
struct Group {
    /// Mirror of the constraint's capacity `C`.
    capacity: f64,
    /// Total weight `W` of active members.
    weight: f64,
    /// Number of active members.
    members: usize,
    /// Cumulative virtual time `V` (bytes per weight unit).
    virt: f64,
    /// Current per-weight rate `rv = min(C / W, k_min)`; `0` when empty
    /// or starved.
    rate_v: f64,
    /// Multiset of member `rate_cap / weight` ratios keyed by IEEE bits
    /// (ratios are positive, so bit order is numeric order).
    ratios: BTreeMap<u64, u32>,
    heap: BinaryHeap<HeapEntry>,
}

impl Group {
    fn k_min(&self) -> f64 {
        self.ratios
            .keys()
            .next()
            .map(|&bits| f64::from_bits(bits))
            .unwrap_or(f64::INFINITY)
    }

    /// Re-derives `rv` after a membership/capacity change. The quotient
    /// `C / W` and the cap ratio are the exact expressions of the fluid
    /// solver's first filling increment, which is what makes the two
    /// models agree on equal-share topologies.
    fn settle_rate(&mut self) {
        if self.members == 0 || self.weight <= EPS {
            self.rate_v = 0.0;
            return;
        }
        let rv = (self.capacity.max(0.0) / self.weight).min(self.k_min());
        self.rate_v = if rv.is_finite() && rv > EPS { rv } else { 0.0 };
    }

    fn add_member(&mut self, weight: f64, cap_ratio: f64) {
        self.weight += weight;
        self.members += 1;
        *self.ratios.entry(cap_ratio.to_bits()).or_insert(0) += 1;
        self.settle_rate();
    }

    fn remove_member(&mut self, weight: f64, cap_ratio: f64) {
        self.weight -= weight;
        self.members -= 1;
        if self.members == 0 {
            // Integer-valued weights subtract exactly; for fractional
            // weights this resync stops rounding residue from outliving
            // the members that produced it.
            self.weight = 0.0;
        }
        let bits = cap_ratio.to_bits();
        // simlint: allow(R4, members only leave with the cap ratio they entered with)
        let n = self.ratios.get_mut(&bits).expect("tracked cap ratio");
        *n -= 1;
        if *n == 0 {
            self.ratios.remove(&bits);
        }
        self.settle_rate();
    }
}

/// The lone pseudo-group holds flows with a finite cap but no finite
/// constraint. Its virtual time advances one second per second and a
/// member's "weight" is its own cap, so `finish_v − V` is exactly the
/// seconds left at full cap.
#[derive(Debug, Clone, Default)]
struct LoneGroup {
    virt: f64,
    members: usize,
    heap: BinaryHeap<HeapEntry>,
}

/// The virtual-time fair-throughput-sharing network. The public surface
/// mirrors [`FluidNetwork`](crate::fluid::FluidNetwork) so the PFS layer
/// can swap either in behind one dispatch point.
#[derive(Debug, Clone, Default)]
pub struct VtFairNetwork {
    capacities: Vec<f64>,
    groups: Vec<Group>,
    lone: LoneGroup,
    /// Flow arena. Indices recycle through `free`; external [`FlowId`]s
    /// stay unique because they carry the per-index generation.
    slots: Vec<Option<Slot>>,
    /// Per-index generation for the *next* insert (bumped on remove).
    gens: Vec<u32>,
    /// Per-index heap-entry validity counter (bumped whenever the tenant
    /// leaves a group, so stale heap entries never validate).
    epochs: Vec<u32>,
    free: Vec<u32>,
    /// Completions since the last [`VtFairNetwork::drain_completed`].
    newly_completed: Vec<FlowId>,
    /// Completed flows not yet removed.
    finished: BTreeSet<FlowId>,
    /// Active flows with no group at all (no finite cap, no finite
    /// constraint): pinned at rate zero.
    starved: BTreeSet<FlowId>,
}

fn make_id(idx: u32, gen: u32) -> FlowId {
    FlowId(((gen as u64) << 32) | idx as u64)
}

fn split_id(id: FlowId) -> (u32, u32) {
    (id.0 as u32, (id.0 >> 32) as u32)
}

// Arena access. Every `idx` that reaches these helpers came from
// `lookup` (which checks the generation against an occupied slot) or from
// a heap entry validated by `entry_live` — an empty slot here means the
// arena invariant itself is broken, and no simulation state can be
// trusted past that point. Funneling all slot access through three
// helpers keeps that justified panic in exactly one place per access
// mode. They are free functions (not methods) so callers can keep
// disjoint borrows of `groups` / `lone` alongside the slot.

/// Mutable access to an occupied arena slot.
fn live(slot: &mut Option<Slot>) -> &mut Slot {
    // simlint: allow(R4, arena indices are validated by lookup/entry_live before reaching here)
    slot.as_mut().expect("live slot")
}

/// Shared access to an occupied arena slot.
fn live_ref(slot: &Option<Slot>) -> &Slot {
    // simlint: allow(R4, arena indices are validated by lookup/entry_live before reaching here)
    slot.as_ref().expect("live slot")
}

/// Moves an occupied arena slot out, leaving `None`.
fn take_live(slot: &mut Option<Slot>) -> Slot {
    // simlint: allow(R4, arena indices are validated by lookup/entry_live before reaching here)
    slot.take().expect("live slot")
}

impl VtFairNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacity constraint (bytes/s) and returns its handle.
    pub fn add_constraint(&mut self, capacity: f64) -> ConstraintId {
        assert!(capacity >= 0.0, "constraint capacity must be non-negative");
        self.capacities.push(capacity);
        self.groups.push(Group {
            capacity,
            ..Group::default()
        });
        ConstraintId(self.capacities.len() - 1)
    }

    /// Number of constraints in the network.
    pub fn constraint_count(&self) -> usize {
        self.capacities.len()
    }

    /// Current capacity of a constraint.
    pub fn capacity(&self, id: ConstraintId) -> f64 {
        self.capacities[id.0]
    }

    /// Updates the capacity of a constraint. All members keep rates
    /// proportional to their weights, so the completion heap stays
    /// ordered and the update is `O(1)`.
    pub fn set_capacity(&mut self, id: ConstraintId, capacity: f64) {
        assert!(capacity >= 0.0, "constraint capacity must be non-negative");
        let old = self.capacities[id.0];
        let changed = if old.is_finite() && capacity.is_finite() {
            (old - capacity).abs() > EPS
        } else {
            old != capacity
        };
        if changed {
            self.capacities[id.0] = capacity;
            let g = &mut self.groups[id.0];
            g.capacity = capacity;
            g.settle_rate();
        }
    }

    /// Registers a new flow: `O(log n)` — one heap push plus one ratio
    /// multiset update on its home group; nobody's rate is re-solved.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.bytes >= 0.0, "flow volume must be non-negative");
        assert!(spec.weight > 0.0, "flow weight must be positive");
        assert!(
            spec.rate_cap > 0.0,
            "flow rate cap must be positive (use f64::INFINITY for uncapped)"
        );
        assert!(
            spec.rate_cap.is_finite() || !spec.constraints.is_empty(),
            "a flow must have a finite rate cap or at least one constraint"
        );
        for c in &spec.constraints {
            assert!(c.0 < self.capacities.len(), "unknown constraint {c:?}");
        }

        // Home group: the smallest-capacity finite constraint at insert.
        // On equal-share topologies this is the unique binding constraint;
        // the others are assumed slack (see module docs).
        let home = spec
            .constraints
            .iter()
            .filter(|c| self.capacities[c.0].is_finite())
            .min_by(|a, b| self.capacities[a.0].total_cmp(&self.capacities[b.0]))
            .map(|c| c.0 as u32);

        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.epochs.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.gens[idx as usize];
        let id = make_id(idx, gen);

        let mut slot = Slot {
            gen,
            weight: spec.weight,
            rate_cap: spec.rate_cap,
            bytes: spec.bytes,
            cap_ratio: spec.rate_cap / spec.weight,
            remaining: spec.bytes,
            transferred: 0.0,
            settled_v: 0.0,
            home,
            residence: Residence::Starved,
        };

        if spec.bytes <= completion_threshold(spec.bytes) {
            slot.remaining = 0.0;
            slot.residence = Residence::Complete;
            self.slots[idx as usize] = Some(slot);
            self.finished.insert(id);
            return id;
        }

        self.enter(idx, &mut slot);
        let starved = slot.residence == Residence::Starved;
        self.slots[idx as usize] = Some(slot);
        if starved {
            self.starved.insert(id);
        }
        id
    }

    /// Puts an active-eligible flow into its group (or the lone group),
    /// assigning its virtual finish tag from its settled remaining bytes.
    fn enter(&mut self, idx: u32, slot: &mut Slot) {
        let epoch = self.epochs[idx as usize];
        match slot.home {
            Some(g) => {
                let group = &mut self.groups[g as usize];
                slot.settled_v = group.virt;
                let finish_v = group.virt + slot.remaining / slot.weight;
                group.add_member(slot.weight, slot.cap_ratio);
                group.heap.push(Reverse((finish_v.to_bits(), idx, epoch)));
                slot.residence = Residence::Group(g);
            }
            None if slot.rate_cap.is_finite() => {
                slot.settled_v = self.lone.virt;
                let finish_v = self.lone.virt + slot.remaining / slot.rate_cap;
                self.lone.members += 1;
                self.lone
                    .heap
                    .push(Reverse((finish_v.to_bits(), idx, epoch)));
                slot.residence = Residence::Lone;
            }
            None => {
                // No finite constraint and no finite cap: starved, like
                // the fluid model's degenerate infinite-on-infinite case.
                slot.residence = Residence::Starved;
            }
        }
    }

    /// Brings a flow's byte counters up to the present using the virtual
    /// time elapsed since its last settlement, then drops it from its
    /// group (`O(log n)`: one multiset update; the heap entry dies lazily
    /// via the epoch bump). No-op for inactive flows.
    fn settle_and_leave(&mut self, idx: u32) {
        let slot = live(&mut self.slots[idx as usize]);
        match slot.residence {
            Residence::Group(g) => {
                let group = &mut self.groups[g as usize];
                let dv = (group.virt - slot.settled_v).max(0.0);
                let moved = (slot.weight * dv).min(slot.remaining);
                // simlint: allow(R5, moved is clamped to remaining and completion snaps counters exactly)
                slot.remaining -= moved;
                slot.transferred += moved;
                slot.settled_v = group.virt;
                let (w, r) = (slot.weight, slot.cap_ratio);
                group.remove_member(w, r);
                self.epochs[idx as usize] = self.epochs[idx as usize].wrapping_add(1);
            }
            Residence::Lone => {
                let dv = (self.lone.virt - slot.settled_v).max(0.0);
                let moved = (slot.rate_cap * dv).min(slot.remaining);
                // simlint: allow(R5, moved is clamped to remaining and completion snaps counters exactly)
                slot.remaining -= moved;
                slot.transferred += moved;
                slot.settled_v = self.lone.virt;
                self.lone.members -= 1;
                self.epochs[idx as usize] = self.epochs[idx as usize].wrapping_add(1);
            }
            Residence::Starved | Residence::Paused | Residence::Complete => {}
        }
    }

    /// Removes a flow (complete or not) and returns its final progress.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<FlowProgress> {
        let idx = self.lookup(id)?;
        self.settle_and_leave(idx);
        let slot = take_live(&mut self.slots[idx as usize]);
        self.finished.remove(&id);
        self.starved.remove(&id);
        self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
        self.epochs[idx as usize] = self.epochs[idx as usize].wrapping_add(1);
        self.free.push(idx);
        Some(FlowProgress {
            remaining: slot.remaining,
            transferred: slot.transferred,
            rate: 0.0,
            paused: slot.residence == Residence::Paused,
        })
    }

    /// Pauses a flow: settles its bytes, removes its weight and cap ratio
    /// from the group, and lazily invalidates its heap entry. `O(log n)`.
    pub fn pause_flow(&mut self, id: FlowId) {
        let Some(idx) = self.lookup(id) else {
            return;
        };
        match live_ref(&self.slots[idx as usize]).residence {
            Residence::Paused | Residence::Complete => {}
            Residence::Starved => {
                self.starved.remove(&id);
                live(&mut self.slots[idx as usize]).residence = Residence::Paused;
            }
            Residence::Group(_) | Residence::Lone => {
                self.settle_and_leave(idx);
                live(&mut self.slots[idx as usize]).residence = Residence::Paused;
            }
        }
    }

    /// Resumes a paused flow: re-predicts its completion from its settled
    /// remaining bytes and pushes it back on the heap. `O(log n)`.
    pub fn resume_flow(&mut self, id: FlowId) {
        let Some(idx) = self.lookup(id) else {
            return;
        };
        if live_ref(&self.slots[idx as usize]).residence != Residence::Paused {
            return;
        }
        let mut slot = take_live(&mut self.slots[idx as usize]);
        if slot.remaining <= completion_threshold(slot.bytes) {
            slot.remaining = 0.0;
            slot.residence = Residence::Complete;
            self.slots[idx as usize] = Some(slot);
            self.finished.insert(id);
            self.newly_completed.push(id);
            return;
        }
        self.enter(idx, &mut slot);
        let starved = slot.residence == Residence::Starved;
        self.slots[idx as usize] = Some(slot);
        if starved {
            self.starved.insert(id);
        }
    }

    /// Returns the progress snapshot of a flow (settling it first).
    pub fn progress(&mut self, id: FlowId) -> Option<FlowProgress> {
        let idx = self.lookup(id)?;
        self.settle_in_place(idx);
        let slot = live_ref(&self.slots[idx as usize]);
        Some(FlowProgress {
            remaining: slot.remaining,
            transferred: slot.transferred,
            rate: self.slot_rate(slot),
            paused: slot.residence == Residence::Paused,
        })
    }

    /// Settles a flow's byte counters without leaving its group.
    fn settle_in_place(&mut self, idx: u32) {
        let lone_virt = self.lone.virt;
        let group_virts: &[Group] = &self.groups;
        let slot = live(&mut self.slots[idx as usize]);
        let dv_bytes = match slot.residence {
            Residence::Group(g) => {
                let v = group_virts[g as usize].virt;
                let dv = (v - slot.settled_v).max(0.0);
                slot.settled_v = v;
                slot.weight * dv
            }
            Residence::Lone => {
                let dv = (lone_virt - slot.settled_v).max(0.0);
                slot.settled_v = lone_virt;
                slot.rate_cap * dv
            }
            _ => 0.0,
        };
        let moved = dv_bytes.min(slot.remaining);
        // simlint: allow(R5, moved is clamped to remaining and completion snaps counters exactly)
        slot.remaining -= moved;
        slot.transferred += moved;
    }

    /// True if the flow has transferred all of its bytes.
    pub fn is_complete(&self, id: FlowId) -> bool {
        let Some(idx) = self.lookup(id) else {
            return false;
        };
        let slot = live_ref(&self.slots[idx as usize]);
        let remaining = match slot.residence {
            Residence::Complete => return true,
            Residence::Group(g) => {
                let v = self.groups[g as usize].virt;
                slot.remaining - slot.weight * (v - slot.settled_v).max(0.0)
            }
            Residence::Lone => {
                slot.remaining - slot.rate_cap * (self.lone.virt - slot.settled_v).max(0.0)
            }
            _ => slot.remaining,
        };
        remaining <= completion_threshold(slot.bytes)
    }

    /// Number of registered flows (complete flows stay registered until
    /// removed).
    pub fn flow_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Iterates over all flow ids in deterministic (arena index) order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| make_id(i as u32, s.gen)))
    }

    /// Current rate of a flow in bytes/s.
    pub fn rate(&mut self, id: FlowId) -> f64 {
        match self.lookup(id) {
            Some(idx) => self.slot_rate(live_ref(&self.slots[idx as usize])),
            None => 0.0,
        }
    }

    fn slot_rate(&self, slot: &Slot) -> f64 {
        match slot.residence {
            Residence::Group(g) => slot.weight * self.groups[g as usize].rate_v,
            Residence::Lone => slot.rate_cap,
            _ => 0.0,
        }
    }

    /// Aggregate rate (bytes/s) over all active flows: `O(groups)`, plus
    /// a slot scan only when lone flows exist.
    pub fn aggregate_rate(&mut self) -> f64 {
        let mut total: f64 = self.groups.iter().map(|g| g.weight * g.rate_v).sum();
        if self.lone.members > 0 {
            total += self
                .slots
                .iter()
                .flatten()
                .filter(|s| s.residence == Residence::Lone)
                .map(|s| s.rate_cap)
                .sum::<f64>();
        }
        total
    }

    /// Time until the earliest active flow completes at current rates, or
    /// `None` if no active flow is making progress: `O(groups)` plus
    /// amortized cleanup of lazily deleted heap entries.
    pub fn time_to_next_completion(&mut self) -> Option<SimDuration> {
        let mut best: Option<f64> = None;
        for g in 0..self.groups.len() {
            if let Some(t) = self.group_ttc(g) {
                best = Some(best.map_or(t, |b: f64| b.min(t)));
            }
        }
        if let Some(t) = self.lone_ttc() {
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
        best.map(SimDuration::from_secs)
    }

    /// Pops stale heap entries until the top is a live member, then
    /// converts its virtual deadline into seconds. Groups pinned at rate
    /// zero are skipped — their members never complete (see
    /// [`VtFairNetwork::stalled_flows`]).
    fn group_ttc(&mut self, g: usize) -> Option<f64> {
        let top = loop {
            let &Reverse((bits, idx, epoch)) = self.groups[g].heap.peek()?;
            if self.entry_live(idx, epoch, Residence::Group(g as u32)) {
                break f64::from_bits(bits);
            }
            self.groups[g].heap.pop();
        };
        let group = &self.groups[g];
        if group.rate_v <= EPS {
            return None;
        }
        Some((top - group.virt).max(0.0) / group.rate_v)
    }

    fn lone_ttc(&mut self) -> Option<f64> {
        let top = loop {
            let &Reverse((bits, idx, epoch)) = self.lone.heap.peek()?;
            if self.entry_live(idx, epoch, Residence::Lone) {
                break f64::from_bits(bits);
            }
            self.lone.heap.pop();
        };
        Some((top - self.lone.virt).max(0.0))
    }

    fn entry_live(&self, idx: u32, epoch: u32, expect: Residence) -> bool {
        self.epochs[idx as usize] == epoch
            && matches!(&self.slots[idx as usize], Some(s) if s.residence == expect)
    }

    /// Advances every active flow by `dt` at its current rate:
    /// `O(groups + completions · log n)` — one virtual-clock bump per
    /// group, then completions pop off the heaps in finish order.
    pub fn advance(&mut self, dt: SimDuration) {
        let secs = dt.as_secs();
        if secs <= 0.0 {
            return;
        }
        for g in 0..self.groups.len() {
            let group = &mut self.groups[g];
            if group.members > 0 && group.rate_v > EPS {
                group.virt += group.rate_v * secs;
            }
            self.pop_group_completions(g);
        }
        if self.lone.members > 0 {
            self.lone.virt += secs;
        }
        self.pop_lone_completions();
    }

    fn pop_group_completions(&mut self, g: usize) {
        loop {
            let Some(&Reverse((bits, idx, epoch))) = self.groups[g].heap.peek() else {
                return;
            };
            if !self.entry_live(idx, epoch, Residence::Group(g as u32)) {
                self.groups[g].heap.pop();
                continue;
            }
            let virt = self.groups[g].virt;
            let (weight, threshold) = {
                let s = live_ref(&self.slots[idx as usize]);
                (s.weight, completion_threshold(s.bytes))
            };
            if (f64::from_bits(bits) - virt) * weight > threshold {
                return;
            }
            self.groups[g].heap.pop();
            self.complete_slot(idx);
        }
    }

    fn pop_lone_completions(&mut self) {
        loop {
            let Some(&Reverse((bits, idx, epoch))) = self.lone.heap.peek() else {
                return;
            };
            if !self.entry_live(idx, epoch, Residence::Lone) {
                self.lone.heap.pop();
                continue;
            }
            let (cap, threshold) = {
                let s = live_ref(&self.slots[idx as usize]);
                (s.rate_cap, completion_threshold(s.bytes))
            };
            if (f64::from_bits(bits) - self.lone.virt) * cap > threshold {
                return;
            }
            self.lone.heap.pop();
            self.complete_slot(idx);
        }
    }

    /// Finalizes a completed flow: snap the byte counters, release its
    /// share of the group, queue it for
    /// [`VtFairNetwork::drain_completed`].
    fn complete_slot(&mut self, idx: u32) {
        self.settle_and_leave(idx);
        let slot = live(&mut self.slots[idx as usize]);
        slot.transferred = slot.bytes;
        slot.remaining = 0.0;
        slot.residence = Residence::Complete;
        let id = make_id(idx, slot.gen);
        self.finished.insert(id);
        self.newly_completed.push(id);
    }

    /// Flows that completed since the last call, in completion order.
    pub fn drain_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.newly_completed)
    }

    /// Flows that are complete but still registered.
    pub fn completed_flows(&self) -> Vec<FlowId> {
        self.finished.iter().copied().collect()
    }

    /// Active (unpaused, incomplete) flows currently pinned at rate zero:
    /// starved flows plus members of groups whose per-weight rate is zero
    /// (e.g. a zero-capacity constraint). Such flows never produce a
    /// completion event, so a session driving the network would hang
    /// without detecting them.
    pub fn stalled_flows(&self) -> Vec<FlowId> {
        let mut out: Vec<FlowId> = self.starved.iter().copied().collect();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            if let Residence::Group(g) = slot.residence {
                if self.groups[g as usize].rate_v <= EPS {
                    out.push(make_id(i as u32, slot.gen));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Forces a from-scratch resync of every group's aggregate state
    /// (normally maintained incrementally). Kept as a debugging aid and
    /// for API parity with the fluid solver's `recompute`.
    pub fn recompute(&mut self) {
        for g in &mut self.groups {
            g.weight = 0.0;
            g.members = 0;
            g.ratios.clear();
        }
        for slot in self.slots.iter().flatten() {
            if let Residence::Group(g) = slot.residence {
                let group = &mut self.groups[g as usize];
                group.weight += slot.weight;
                group.members += 1;
                *group.ratios.entry(slot.cap_ratio.to_bits()).or_insert(0) += 1;
            }
        }
        for g in &mut self.groups {
            g.settle_rate();
        }
    }

    /// Validates an external id against the arena.
    fn lookup(&self, id: FlowId) -> Option<u32> {
        let (idx, gen) = split_id(id);
        let slot = self.slots.get(idx as usize)?.as_ref()?;
        (slot.gen == gen).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::FluidNetwork;

    fn secs(d: Option<SimDuration>) -> f64 {
        d.expect("expected a completion time").as_secs()
    }

    #[test]
    fn sharing_model_labels_round_trip() {
        for m in [SharingModel::MaxMin, SharingModel::FairFast] {
            assert_eq!(SharingModel::from_label(m.label()), Some(m));
        }
        assert_eq!(SharingModel::from_label("bogus"), None);
        assert_eq!(SharingModel::default(), SharingModel::MaxMin);
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_constraint() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(1000.0, 1.0, 250.0, vec![c]));
        assert!((net.rate(f) - 100.0).abs() < 1e-9);
        let g = net.add_flow(FlowSpec::new(1000.0, 1.0, 30.0, vec![c]));
        // k_min = 30 now caps the whole group per unit weight.
        assert!((net.rate(g) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_split_capacity_evenly() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(90.0);
        let ids: Vec<_> = (0..3)
            .map(|_| net.add_flow(FlowSpec::new(900.0, 1.0, f64::INFINITY, vec![c])))
            .collect();
        for id in &ids {
            assert!((net.rate(*id) - 30.0).abs() < 1e-9);
        }
        assert!((net.aggregate_rate() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_flows_share_proportionally() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(120.0);
        let a = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![c]));
        let b = net.add_flow(FlowSpec::new(1e6, 2.0, f64::INFINITY, vec![c]));
        assert!((net.rate(a) - 40.0).abs() < 1e-9);
        assert!((net.rate(b) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn completion_happens_in_finish_tag_order() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let small = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        let big = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![c]));
        // Both run at 50; small finishes at t=2.
        let t = secs(net.time_to_next_completion());
        assert!((t - 2.0).abs() < 1e-9);
        net.advance(SimDuration::from_secs(t));
        assert_eq!(net.drain_completed(), vec![small]);
        assert!(net.is_complete(small));
        assert!(!net.is_complete(big));
        // Big now runs alone at 100 with 900 left.
        assert!((net.rate(big) - 100.0).abs() < 1e-9);
        let t2 = secs(net.time_to_next_completion());
        assert!((t2 - 9.0).abs() < 1e-6);
        net.advance(SimDuration::from_secs(t2));
        assert_eq!(net.drain_completed(), vec![big]);
    }

    #[test]
    fn late_insert_slows_the_incumbent() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![c]));
        net.advance(SimDuration::from_secs(2.0)); // a: 800 left
        let b = net.add_flow(FlowSpec::new(400.0, 1.0, f64::INFINITY, vec![c]));
        assert!((net.rate(a) - 50.0).abs() < 1e-9);
        assert!((net.rate(b) - 50.0).abs() < 1e-9);
        // b finishes first: 400 / 50 = 8s.
        let t = secs(net.time_to_next_completion());
        assert!((t - 8.0).abs() < 1e-6);
        net.advance(SimDuration::from_secs(t));
        assert_eq!(net.drain_completed(), vec![b]);
        let pa = net.progress(a).unwrap();
        assert!((pa.remaining - 400.0).abs() < 1e-3);
    }

    #[test]
    fn pause_resume_preserves_bytes_and_membership() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![c]));
        let b = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![c]));
        net.advance(SimDuration::from_secs(4.0)); // both at 50 → 800 left
        net.pause_flow(a);
        let pa = net.progress(a).unwrap();
        assert!(pa.paused);
        assert!((pa.remaining - 800.0).abs() < 1e-6);
        assert!(net.rate(a).abs() < 1e-12);
        // b now owns the full capacity.
        assert!((net.rate(b) - 100.0).abs() < 1e-9);
        net.advance(SimDuration::from_secs(2.0)); // b: 600 left, a frozen
        net.resume_flow(a);
        assert!((net.rate(a) - 50.0).abs() < 1e-9);
        let pa = net.progress(a).unwrap();
        assert!((pa.remaining - 800.0).abs() < 1e-6);
        let pb = net.progress(b).unwrap();
        assert!((pb.remaining - 600.0).abs() < 1e-6);
    }

    #[test]
    fn remove_returns_final_progress_and_recycles_the_slot() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![c]));
        net.advance(SimDuration::from_secs(3.0));
        let p = net.remove_flow(a).unwrap();
        assert!((p.transferred - 300.0).abs() < 1e-6);
        assert!((p.remaining - 700.0).abs() < 1e-6);
        assert_eq!(net.flow_count(), 0);
        // The recycled slot mints a distinct id; the old id is dead.
        let b = net.add_flow(FlowSpec::new(10.0, 1.0, f64::INFINITY, vec![c]));
        assert_ne!(a, b);
        assert!(net.remove_flow(a).is_none());
        assert!(net.progress(b).is_some());
    }

    #[test]
    fn zero_capacity_constraint_starves_flows() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(0.0);
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        assert!(net.rate(f).abs() < 1e-12);
        assert!(net.time_to_next_completion().is_none());
        assert_eq!(net.stalled_flows(), vec![f]);
        net.advance(SimDuration::from_secs(10.0));
        assert!(!net.is_complete(f));
    }

    #[test]
    fn uncapped_flow_on_infinite_constraint_is_starved_not_stuck() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(f64::INFINITY);
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        assert!(net.rate(f).abs() < 1e-12);
        assert!(net.time_to_next_completion().is_none());
        assert_eq!(net.stalled_flows(), vec![f]);
        // Pausing and resuming a starved flow keeps it tracked, not lost.
        net.pause_flow(f);
        assert!(net.stalled_flows().is_empty());
        net.resume_flow(f);
        assert_eq!(net.stalled_flows(), vec![f]);
    }

    #[test]
    fn capped_flow_without_constraint_runs_lone_at_cap() {
        let mut net = VtFairNetwork::new();
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, 20.0, vec![]));
        assert!((net.rate(f) - 20.0).abs() < 1e-9);
        let t = secs(net.time_to_next_completion());
        assert!((t - 5.0).abs() < 1e-9);
        net.advance(SimDuration::from_secs(t));
        assert_eq!(net.drain_completed(), vec![f]);
        assert!(net.is_complete(f));
    }

    #[test]
    fn zero_byte_flow_is_complete_immediately() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(0.0, 1.0, f64::INFINITY, vec![c]));
        assert!(net.is_complete(f));
        assert_eq!(net.completed_flows(), vec![f]);
        // It holds no share of the capacity.
        let g = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        assert!((net.rate(g) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn set_capacity_rescales_without_reordering() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let small = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        let big = net.add_flow(FlowSpec::new(300.0, 1.0, f64::INFINITY, vec![c]));
        net.set_capacity(c, 50.0);
        assert!((net.rate(small) - 25.0).abs() < 1e-9);
        let t = secs(net.time_to_next_completion());
        assert!((t - 4.0).abs() < 1e-9);
        net.advance(SimDuration::from_secs(t));
        assert_eq!(net.drain_completed(), vec![small]);
        assert!(!net.is_complete(big));
    }

    #[test]
    fn advance_past_all_completions_is_a_fixpoint() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![c]));
        net.advance(SimDuration::from_secs(100.0));
        assert!(net.is_complete(f));
        assert_eq!(net.drain_completed(), vec![f]);
        net.advance(SimDuration::from_secs(100.0));
        assert!(net.drain_completed().is_empty());
        let p = net.progress(f).unwrap();
        assert!((p.transferred - 100.0).abs() < 1e-9);
        assert_eq!(p.remaining, 0.0);
    }

    #[test]
    fn recompute_matches_incremental_state() {
        let mut net = VtFairNetwork::new();
        let c = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1000.0, 2.0, 80.0, vec![c]));
        let _b = net.add_flow(FlowSpec::new(1000.0, 3.0, 90.0, vec![c]));
        net.advance(SimDuration::from_secs(1.0));
        let before = net.rate(a);
        net.recompute();
        assert!((net.rate(a) - before).abs() < 1e-12);
    }

    /// Spot differential check against the fluid solver on an equal-share
    /// topology (the randomized version lives in tests/properties.rs).
    #[test]
    fn matches_fluid_on_an_equal_share_group() {
        let mut fair = VtFairNetwork::new();
        let mut fluid = FluidNetwork::new();
        let cf = fair.add_constraint(100.0);
        let cl = fluid.add_constraint(100.0);
        let specs = [(300.0, 2.0), (500.0, 1.0), (900.0, 3.0)];
        let fair_ids: Vec<_> = specs
            .iter()
            .map(|&(b, w)| fair.add_flow(FlowSpec::new(b, w, 40.0 * w, vec![cf])))
            .collect();
        let fluid_ids: Vec<_> = specs
            .iter()
            .map(|&(b, w)| fluid.add_flow(FlowSpec::new(b, w, 40.0 * w, vec![cl])))
            .collect();
        for _ in 0..6 {
            let tf = fair.time_to_next_completion().map(|d| d.as_secs());
            let tl = fluid.time_to_next_completion().map(|d| d.as_secs());
            match (tf, tl) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-6, "ttc diverged: {a} vs {b}");
                    let dt = SimDuration::from_secs(a.max(b));
                    fair.advance(dt);
                    fluid.advance(dt);
                    for (fa, fl) in fair_ids.iter().zip(&fluid_ids) {
                        let pa = fair.progress(*fa).unwrap();
                        let pb = fluid.progress(*fl).unwrap();
                        assert!(
                            (pa.remaining - pb.remaining).abs() < 1e-2,
                            "remaining diverged: {} vs {}",
                            pa.remaining,
                            pb.remaining
                        );
                    }
                }
                _ => panic!("one model sees a completion, the other does not"),
            }
        }
        assert!(fair_ids.iter().all(|f| fair.is_complete(*f)));
    }
}
