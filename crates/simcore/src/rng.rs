//! Small deterministic pseudo-random number generator.
//!
//! The simulation engine itself is deterministic; randomness is only used by
//! workload generators (jitter on start dates, synthetic job traces). A
//! self-contained SplitMix64/xoshiro-style generator keeps `simcore` free of
//! heavyweight dependencies while guaranteeing identical streams across
//! platforms.

/// A deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`. Returns `lo` if the range is empty or
    /// inverted.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below requires n > 0");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n which is
        // negligible for simulation workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Samples an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Samples a log-normal distribution parameterized by the underlying
    /// normal's mean `mu` and standard deviation `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Samples a standard normal via the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an index according to the given non-negative weights.
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index requires positive total weight"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(11);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn uniform_handles_degenerate_range() {
        let mut r = DetRng::new(3);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 4.0), 5.0);
        let x = r.uniform(2.0, 3.0);
        assert!((2.0..3.0).contains(&x));
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = DetRng::new(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut r = DetRng::new(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }
}
