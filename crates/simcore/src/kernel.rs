//! The discrete-event kernel: one owner for simulated time.
//!
//! A [`Kernel`] couples the two time sources every simulation in this
//! workspace has — a discrete [`EventQueue`] of scheduled occurrences and a
//! continuous [`Medium`] (a [`FluidNetwork`], or the `pfs` crate's file
//! system built on one) whose internal state evolves between events — behind
//! a single `schedule` / `cancel` / `advance_to_next` API. Drivers no
//! longer juggle two clocks and hand-merge "next queue event" with "next
//! flow completion": the kernel owns *the* clock, advances the medium
//! exactly to each decision point, and hands due events back one at a time.
//!
//! ```
//! use simcore::fluid::{FlowSpec, FluidNetwork};
//! use simcore::kernel::Kernel;
//! use simcore::time::SimTime;
//!
//! let mut net = FluidNetwork::new();
//! let server = net.add_constraint(100.0);
//! net.add_flow(FlowSpec::new(250.0, 1.0, f64::INFINITY, vec![server]));
//!
//! let mut kernel: Kernel<&str, _> = Kernel::new(net);
//! kernel.schedule(SimTime::from_secs(1.0), "tick");
//!
//! // First decision point: the queued event at t = 1 s...
//! assert_eq!(kernel.advance_to_next(), Some(SimTime::from_secs(1.0)));
//! assert_eq!(kernel.pop_due(), Some("tick"));
//! assert_eq!(kernel.pop_due(), None);
//! // ...then the medium's own next change: the flow completes at 2.5 s.
//! assert_eq!(kernel.advance_to_next(), Some(SimTime::from_secs(2.5)));
//! assert!(kernel.medium().is_complete(simcore::FlowId(0)));
//! // Nothing left on either axis.
//! assert_eq!(kernel.advance_to_next(), None);
//! ```

use crate::event::{EventId, EventQueue};
use crate::fair::VtFairNetwork;
use crate::fluid::FluidNetwork;
use crate::time::{SimDuration, SimTime};

/// The continuous half of a simulation: state that evolves on its own
/// between discrete events and occasionally produces decision points of its
/// own (a flow completing, a cache crossing a threshold).
///
/// Implementations keep *relative* time — the kernel owns the absolute
/// clock. [`FluidNetwork`] implements this directly; richer substrates
/// (the `pfs` crate's file system) implement it by delegating to their
/// internal stepping, and `()` is the trivial medium for purely discrete
/// simulations.
pub trait Medium {
    /// Time until the medium's next internal change, or `None` when
    /// nothing is in flight. Implementations must return a strictly
    /// positive duration so a driver looping on decision points always
    /// makes progress.
    fn time_to_next(&mut self) -> Option<SimDuration>;

    /// Advances the medium's internal state by `dt`.
    fn advance(&mut self, dt: SimDuration);
}

/// The trivial medium: no continuous state.
impl Medium for () {
    fn time_to_next(&mut self) -> Option<SimDuration> {
        None
    }
    fn advance(&mut self, _dt: SimDuration) {}
}

impl Medium for FluidNetwork {
    fn time_to_next(&mut self) -> Option<SimDuration> {
        // A completion remainder below half a tick rounds to a zero
        // duration; clamp to one tick so a driver looping on
        // `advance_to_next` always makes progress (the trait's
        // strictly-positive contract).
        self.time_to_next_completion()
            .map(|d| d.max(SimDuration::from_ticks(1)))
    }
    fn advance(&mut self, dt: SimDuration) {
        FluidNetwork::advance(self, dt);
    }
}

impl Medium for VtFairNetwork {
    fn time_to_next(&mut self) -> Option<SimDuration> {
        self.time_to_next_completion()
            .map(|d| d.max(SimDuration::from_ticks(1)))
    }
    fn advance(&mut self, dt: SimDuration) {
        VtFairNetwork::advance(self, dt);
    }
}

/// The event kernel: a deterministic clock driving an [`EventQueue`] and a
/// [`Medium`] in lockstep.
pub struct Kernel<E, M: Medium = ()> {
    queue: EventQueue<E>,
    medium: M,
    now: SimTime,
}

impl<E> Kernel<E> {
    /// A kernel with no continuous state (timers only).
    pub fn discrete() -> Self {
        Kernel::new(())
    }
}

impl<E, M: Medium> Kernel<E, M> {
    /// Wraps a medium; the clock starts at [`SimTime::ZERO`], which must
    /// match the medium's own notion of "now" for stateful media.
    pub fn new(medium: M) -> Self {
        Kernel {
            queue: EventQueue::new(),
            medium,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the medium.
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Mutable access to the medium (submit flows, poll completions, …).
    /// State changes are fine at any point; only the *clock* is
    /// kernel-owned.
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// Schedules `payload` at `at` (clamped to the present — the past is
    /// immutable) and returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        self.queue.schedule(at.max(self.now), payload)
    }

    /// Schedules `payload` after `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Cancels a scheduled event; `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of scheduled (live) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next decision point — the earlier of the next queued
    /// event and the medium's next internal change — or `None` when both
    /// axes are exhausted (for a coupled simulation: deadlock or
    /// completion).
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        let tq = self.queue.peek_time();
        let tm = self.medium.time_to_next().map(|d| self.now + d);
        match (tq, tm) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Advances the clock (and the medium) to `target`. Targets at or
    /// before the present are a no-op — time never goes backwards.
    pub fn advance_to(&mut self, target: SimTime) {
        if target > self.now {
            self.medium.advance(target.saturating_since(self.now));
            self.now = target;
        }
    }

    /// Advances to the next decision point and returns the new time, or
    /// `None` when no decision point exists. Due events are *not* popped:
    /// drain them with [`Kernel::pop_due`], which also picks up events
    /// that handlers schedule *at* the present.
    pub fn advance_to_next(&mut self) -> Option<SimTime> {
        let next = self.peek_next_time()?;
        self.advance_to(next);
        Some(next)
    }

    /// Pops the next event due at (or before) the present, if any.
    pub fn pop_due(&mut self) -> Option<E> {
        if self.queue.peek_time()? <= self.now {
            self.queue.pop().map(|(_, e)| e)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::FlowSpec;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn discrete_kernel_is_a_timer_wheel() {
        let mut kernel: Kernel<&str> = Kernel::discrete();
        kernel.schedule(t(2.0), "b");
        kernel.schedule(t(1.0), "a");
        let cancelled = kernel.schedule(t(1.5), "x");
        assert!(kernel.cancel(cancelled));
        assert_eq!(kernel.pending_events(), 2);

        assert_eq!(kernel.advance_to_next(), Some(t(1.0)));
        assert_eq!(kernel.pop_due(), Some("a"));
        assert_eq!(kernel.pop_due(), None);
        assert_eq!(kernel.advance_to_next(), Some(t(2.0)));
        assert_eq!(kernel.pop_due(), Some("b"));
        assert_eq!(kernel.advance_to_next(), None);
        assert_eq!(kernel.now(), t(2.0));
    }

    #[test]
    fn interleaves_queue_events_with_medium_changes() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let flow = net.add_flow(FlowSpec::new(300.0, 1.0, f64::INFINITY, vec![server]));

        let mut kernel: Kernel<u32, _> = Kernel::new(net);
        kernel.schedule(t(1.0), 1);
        kernel.schedule(t(5.0), 2);

        // Queue event at 1 s, completion at 3 s, queue event at 5 s.
        assert_eq!(kernel.advance_to_next(), Some(t(1.0)));
        assert_eq!(kernel.pop_due(), Some(1));
        assert_eq!(kernel.advance_to_next(), Some(t(3.0)));
        assert!(kernel.medium().is_complete(flow));
        assert_eq!(kernel.pop_due(), None, "no queue event due at 3 s");
        assert_eq!(kernel.advance_to_next(), Some(t(5.0)));
        assert_eq!(kernel.pop_due(), Some(2));
        assert_eq!(kernel.advance_to_next(), None);
    }

    #[test]
    fn medium_advances_exactly_to_each_decision_point() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(10.0);
        let flow = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![server]));
        let mut kernel: Kernel<(), _> = Kernel::new(net);
        kernel.schedule(t(4.0), ());

        assert_eq!(kernel.advance_to_next(), Some(t(4.0)));
        let p = kernel.medium_mut().progress(flow).unwrap();
        assert!((p.transferred - 40.0).abs() < 1e-6);
        // Handlers may schedule *at* the present; pop_due picks it up
        // without advancing the clock.
        kernel.schedule(kernel.now(), ());
        assert_eq!(kernel.pop_due(), Some(()));
        assert_eq!(kernel.pop_due(), Some(()));
        assert_eq!(kernel.now(), t(4.0));
    }

    #[test]
    fn sub_tick_completion_remainders_cannot_stall_the_kernel() {
        // A flow whose completion time rounds to the current tick leaves
        // a sub-tick byte remainder; the medium must still report a
        // strictly positive time-to-next so the loop below terminates
        // instead of spinning at a frozen clock.
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(100.000002, 1.0, f64::INFINITY, vec![server]));
        let mut kernel: Kernel<(), _> = Kernel::new(net);
        let mut steps = 0;
        while kernel.advance_to_next().is_some() {
            steps += 1;
            assert!(steps < 10, "kernel stalled on a sub-tick remainder");
        }
        assert!(kernel.medium().is_complete(f));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut kernel: Kernel<&str> = Kernel::discrete();
        kernel.schedule(t(3.0), "later");
        kernel.advance_to(t(3.0));
        kernel.schedule(t(1.0), "stale");
        // The stale event fires now, not in the past.
        assert_eq!(kernel.peek_next_time(), Some(t(3.0)));
        assert_eq!(kernel.pop_due(), Some("later"));
        assert_eq!(kernel.pop_due(), Some("stale"));
    }
}
