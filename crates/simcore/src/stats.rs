//! Measurement helpers: time series, online summaries and histograms.
//!
//! The experiment harnesses (Δ-graph sweeps, throughput-per-iteration plots,
//! machine-wide efficiency metrics) all record their observations through
//! these types so that the bench binaries can print the same rows/series the
//! paper reports.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A `(time, value)` series, e.g. observed throughput per write iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation at the given simulated time.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs(), value));
    }

    /// Appends an observation with an explicit x coordinate (e.g. `dt`).
    pub fn push_x(&mut self, x: f64, value: f64) {
        self.points.push((x, value));
    }

    /// The recorded `(x, value)` points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only, in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Mean of the recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }
}

/// Online summary statistics (count / mean / min / max / variance) using
/// Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets,
/// used for the job-size and concurrency distributions of Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<f64>,
    underflow: f64,
    overflow: f64,
    total_weight: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
            total_weight: 0.0,
        }
    }

    /// Records `x` with weight 1.
    pub fn record(&mut self, x: f64) {
        self.record_weighted(x, 1.0);
    }

    /// Records `x` with the given weight (e.g. job duration weighting).
    pub fn record_weighted(&mut self, x: f64, weight: f64) {
        self.total_weight += weight;
        if x < self.lo {
            self.underflow += weight;
        } else if x >= self.hi {
            self.overflow += weight;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += weight;
        }
    }

    /// Per-bin weights.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Per-bin fraction of the total weight.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total_weight <= 0.0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b / self.total_weight).collect()
    }

    /// Cumulative distribution across bins (fraction of total weight at or
    /// below each bin's upper edge, including underflow).
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = self.underflow;
        let mut out = Vec::with_capacity(self.bins.len());
        for &b in &self.bins {
            acc += b;
            out.push(if self.total_weight > 0.0 {
                acc / self.total_weight
            } else {
                0.0
            });
        }
        out
    }

    /// Total recorded weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn time_series_basic_stats() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        ts.push(SimTime::from_secs(1.0), 10.0);
        ts.push(SimTime::from_secs(2.0), 20.0);
        ts.push_x(-3.0, 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), Some(20.0));
        assert_eq!(ts.min(), Some(10.0));
        assert_eq!(ts.max(), Some(30.0));
        assert_eq!(ts.points()[2].0, -3.0);
        assert_eq!(ts.values(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_bins_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.5, -1.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2.0, 2.0, 0.0, 0.0, 1.0]);
        assert!((h.total_weight() - 7.0).abs() < 1e-12);
        let cdf = h.cdf();
        assert!(
            (cdf[4] - 6.0 / 7.0).abs() < 1e-12,
            "overflow not included in cdf"
        );
        let norm = h.normalized();
        assert!((norm.iter().sum::<f64>() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_weighted_records() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.record_weighted(1.0, 3.0);
        h.record_weighted(3.0, 1.0);
        assert_eq!(h.normalized(), vec![0.75, 0.25]);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
