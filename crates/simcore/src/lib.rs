//! # simcore — discrete-event / fluid-flow simulation engine
//!
//! This crate is the foundation of the CALCioM reproduction. It provides the
//! building blocks shared by every substrate:
//!
//! * [`time`] — integer-tick simulated clock ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic time-ordered [`EventQueue`].
//! * [`kernel`] — the [`Kernel`]: one owner for simulated time, coupling an
//!   [`EventQueue`] with a continuous [`Medium`] (a [`FluidNetwork`], or a
//!   richer substrate built on one) behind a single
//!   `schedule`/`cancel`/`advance_to_next` API.
//! * [`fluid`] — the [`FluidNetwork`] bandwidth-sharing model: transfers are
//!   *flows* draining bytes through shared capacity *constraints* with
//!   weighted max-min fairness. This is how cross-application interference
//!   at the parallel file system emerges in the simulation.
//! * [`fair`] — the [`VtFairNetwork`] virtual-time fair-sharing model: the
//!   same flow/constraint vocabulary, but completions are predicted once at
//!   insert via a per-group virtual clock and a priority queue, making every
//!   mutation `O(log n)`. [`SharingModel`] selects between the two.
//! * [`observe`] — time-stamped event streams ([`Stamped`], [`EventLog`]),
//!   the substrate of the observability layer: higher crates define domain
//!   events and stream them through observers built on these containers.
//! * [`stats`] — time series, online summaries and histograms used by the
//!   experiment harnesses.
//! * [`rng`] — a small deterministic PRNG for workload synthesis.
//!
//! The higher layers compose these pieces: the `pfs` crate builds storage
//! servers and caches out of constraints, the `mpiio` crate turns
//! application I/O phases into sequences of flows, and the `calciom` crate
//! (the paper's contribution) coordinates the applications that own those
//! flows.
//!
//! ## Example
//!
//! ```
//! use simcore::fluid::{FluidNetwork, FlowSpec};
//! use simcore::time::SimDuration;
//!
//! // One storage server at 100 MB/s shared by two applications.
//! let mut net = FluidNetwork::new();
//! let server = net.add_constraint(100.0e6);
//! let a = net.add_flow(FlowSpec::new(600.0e6, 1.0, f64::INFINITY, vec![server]));
//! let b = net.add_flow(FlowSpec::new(200.0e6, 1.0, f64::INFINITY, vec![server]));
//!
//! // Both share the server fairly: 50 MB/s each.
//! assert!((net.rate(a) - 50.0e6).abs() < 1.0);
//! assert!((net.rate(b) - 50.0e6).abs() < 1.0);
//!
//! // Advance until the first completion; the survivor then gets the full
//! // server to itself.
//! let dt = net.time_to_next_completion().unwrap();
//! net.advance(dt);
//! assert!(net.is_complete(b));
//! assert!((net.rate(a) - 100.0e6).abs() < 1.0);
//! # let _ = SimDuration::ZERO;
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod fair;
pub mod fluid;
pub mod kernel;
pub mod observe;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use fair::{SharingModel, VtFairNetwork};
pub use fluid::{ConstraintId, FlowId, FlowProgress, FlowSpec, FluidNetwork};
pub use kernel::{Kernel, Medium};
pub use observe::{EventLog, Stamped};
pub use rng::DetRng;
pub use stats::{Histogram, Summary, TimeSeries};
pub use time::{SimDuration, SimTime, TICKS_PER_SEC};
