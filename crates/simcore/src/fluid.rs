//! Fluid-flow bandwidth-sharing model.
//!
//! Ongoing data transfers are modelled as *flows* draining a fixed number of
//! bytes through one or more capacity *constraints* (client links, the
//! interconnect, storage servers). Whenever the set of active flows or a
//! capacity changes, per-flow rates are recomputed with **weighted max-min
//! fairness** (progressive filling): each flow receives bandwidth
//! proportionally to its weight until it hits its own rate cap or a shared
//! constraint saturates.
//!
//! This is the mechanism that reproduces the paper's central observation
//! (Section II): a parallel file system shares its bandwidth per *request
//! stream*, not per *application*, so an application with many processes
//! crowds out a small one — the small application's interference factor can
//! reach 14× (Fig. 6b) even though the sharing is "fair" at the request
//! level.
//!
//! ## Incremental allocation
//!
//! Rates are recomputed *incrementally*: the network maintains, per
//! constraint, the set of flows currently competing on it, and every
//! mutation (a flow added, removed, paused, resumed or completed; a
//! capacity changed) marks only the finite-capacity constraints it
//! touches. The next rate query re-solves just the affected *components* —
//! the transitive closure of flows connected through binding-capable
//! constraints — and leaves every other flow's allocation untouched.
//! Infinite-capacity constraints never bind, so they never couple
//! components (the typical infinite interconnect does not glue the whole
//! machine into one component).
//!
//! The invariant behind this (checked by a from-scratch re-solve after
//! every incremental pass in debug builds): flows in different components
//! share no finite constraint, so the max-min allocation of a component
//! depends only on that component's flows and capacities.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Numerical tolerance for byte counts and rates.
pub(crate) const EPS: f64 = 1e-9;
/// A flow whose remaining volume falls below this many bytes is complete.
const COMPLETE_BYTES: f64 = 1e-6;
/// Relative completion slack. `advance` integrates `remaining -= rate · dt`
/// in f64 per step, so a flow advanced in many segments accumulates
/// rounding drift proportional to its volume (about one ulp of `bytes`
/// per step). A flow is therefore snapped complete when its remaining
/// volume is within `bytes · COMPLETE_REL` of zero — comfortably above
/// thousands of steps of drift (~2e-13 · bytes), yet orders of magnitude
/// below the bytes a real flow moves in one simulator tick.
const COMPLETE_REL: f64 = 1e-12;

/// Bytes below which a flow of the given total volume counts as complete.
pub(crate) fn completion_threshold(bytes: f64) -> f64 {
    COMPLETE_BYTES.max(bytes * COMPLETE_REL)
}

/// Handle to a capacity constraint (e.g. one storage server's bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConstraintId(pub usize);

/// Handle to a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// Static description of a flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Total number of bytes the flow must transfer.
    pub bytes: f64,
    /// Fair-share weight (typically the number of client processes backing
    /// the flow).
    pub weight: f64,
    /// Upper bound on the flow's own rate in bytes/s (e.g. the aggregate
    /// client-side link bandwidth). May be `f64::INFINITY` if at least one
    /// constraint is attached.
    pub rate_cap: f64,
    /// The shared constraints this flow traverses.
    pub constraints: Vec<ConstraintId>,
}

impl FlowSpec {
    /// Convenience constructor for a flow crossing the given constraints.
    pub fn new(bytes: f64, weight: f64, rate_cap: f64, constraints: Vec<ConstraintId>) -> Self {
        FlowSpec {
            bytes,
            weight,
            rate_cap,
            constraints,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    remaining: f64,
    transferred: f64,
    rate: f64,
    paused: bool,
}

/// Snapshot of a flow's progress, returned by accessors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowProgress {
    /// Bytes still to transfer.
    pub remaining: f64,
    /// Bytes transferred so far.
    pub transferred: f64,
    /// Current allocated rate in bytes/s (0 when paused or starved).
    pub rate: f64,
    /// Whether the flow is currently paused.
    pub paused: bool,
}

/// The fluid network: a set of constraints and the flows sharing them.
#[derive(Debug, Clone, Default)]
pub struct FluidNetwork {
    capacities: Vec<f64>,
    flows: BTreeMap<FlowId, FlowState>,
    next_flow: u64,
    /// Per-constraint set of *participating* flows (neither paused nor
    /// complete) — the adjacency the incremental solver walks.
    members: Vec<BTreeSet<FlowId>>,
    /// Constraints whose component must be re-solved before the next rate
    /// query.
    dirty_constraints: BTreeSet<usize>,
    /// Changed flows that cross no finite constraint (their rate is their
    /// own cap; nobody else is affected).
    dirty_lone: BTreeSet<FlowId>,
    /// Completions since the last [`FluidNetwork::drain_completed`].
    newly_completed: Vec<FlowId>,
}

impl FluidNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacity constraint (bytes/s) and returns its handle.
    pub fn add_constraint(&mut self, capacity: f64) -> ConstraintId {
        assert!(capacity >= 0.0, "constraint capacity must be non-negative");
        self.capacities.push(capacity);
        self.members.push(BTreeSet::new());
        ConstraintId(self.capacities.len() - 1)
    }

    /// Number of constraints in the network.
    pub fn constraint_count(&self) -> usize {
        self.capacities.len()
    }

    /// Current capacity of a constraint.
    pub fn capacity(&self, id: ConstraintId) -> f64 {
        self.capacities[id.0]
    }

    /// Updates the capacity of a constraint (used by the PFS layer to model
    /// cache-full transitions and locality-breakage penalties).
    pub fn set_capacity(&mut self, id: ConstraintId, capacity: f64) {
        assert!(capacity >= 0.0, "constraint capacity must be non-negative");
        let old = self.capacities[id.0];
        let changed = if old.is_finite() && capacity.is_finite() {
            (old - capacity).abs() > EPS
        } else {
            old != capacity
        };
        if changed {
            self.capacities[id.0] = capacity;
            self.dirty_constraints.insert(id.0);
        }
    }

    /// Registers a new flow and returns its handle. Rates are lazily
    /// recomputed on the next query.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.bytes >= 0.0, "flow volume must be non-negative");
        assert!(spec.weight > 0.0, "flow weight must be positive");
        assert!(
            spec.rate_cap > 0.0,
            "flow rate cap must be positive (use f64::INFINITY for uncapped)"
        );
        assert!(
            spec.rate_cap.is_finite() || !spec.constraints.is_empty(),
            "a flow must have a finite rate cap or at least one constraint"
        );
        for c in &spec.constraints {
            assert!(c.0 < self.capacities.len(), "unknown constraint {c:?}");
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let participates = spec.bytes > completion_threshold(spec.bytes);
        self.flows.insert(
            id,
            FlowState {
                remaining: spec.bytes,
                transferred: 0.0,
                rate: 0.0,
                paused: false,
                spec,
            },
        );
        if participates {
            self.join(id);
        }
        id
    }

    /// Removes a flow (complete or not) and returns its final progress.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<FlowProgress> {
        if self.participates(id) {
            self.leave(id);
        }
        let st = self.flows.remove(&id)?;
        Some(FlowProgress {
            remaining: st.remaining,
            transferred: st.transferred,
            rate: 0.0,
            paused: st.paused,
        })
    }

    /// Pauses a flow: it stops consuming bandwidth but keeps its remaining
    /// volume (used by the interruption strategy).
    pub fn pause_flow(&mut self, id: FlowId) {
        let Some(f) = self.flows.get_mut(&id) else {
            return;
        };
        if f.paused {
            return;
        }
        let was_active = f.remaining > completion_threshold(f.spec.bytes);
        f.paused = true;
        f.rate = 0.0;
        if was_active {
            self.leave(id);
        }
    }

    /// Resumes a paused flow.
    pub fn resume_flow(&mut self, id: FlowId) {
        let Some(f) = self.flows.get_mut(&id) else {
            return;
        };
        if !f.paused {
            return;
        }
        f.paused = false;
        if f.remaining > completion_threshold(f.spec.bytes) {
            self.join(id);
        }
    }

    /// Returns the progress snapshot of a flow.
    pub fn progress(&mut self, id: FlowId) -> Option<FlowProgress> {
        self.ensure_rates();
        self.flows.get(&id).map(|f| FlowProgress {
            remaining: f.remaining,
            transferred: f.transferred,
            rate: f.rate,
            paused: f.paused,
        })
    }

    /// True if the flow has transferred all of its bytes.
    pub fn is_complete(&self, id: FlowId) -> bool {
        self.flows
            .get(&id)
            .map(|f| f.remaining <= completion_threshold(f.spec.bytes))
            .unwrap_or(false)
    }

    /// Number of registered flows (complete flows stay registered until
    /// removed).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Iterates over all flow ids in deterministic (insertion id) order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// Current rate of a flow in bytes/s.
    pub fn rate(&mut self, id: FlowId) -> f64 {
        self.ensure_rates();
        self.flows.get(&id).map(|f| f.rate).unwrap_or(0.0)
    }

    /// Aggregate rate (bytes/s) over all active flows.
    pub fn aggregate_rate(&mut self) -> f64 {
        self.ensure_rates();
        self.flows.values().map(|f| f.rate).sum()
    }

    /// Time until the earliest active flow completes at current rates, or
    /// `None` if no active flow is making progress.
    pub fn time_to_next_completion(&mut self) -> Option<SimDuration> {
        self.ensure_rates();
        let mut best: Option<f64> = None;
        for f in self.flows.values() {
            if f.paused || f.remaining <= completion_threshold(f.spec.bytes) || f.rate <= EPS {
                continue;
            }
            let t = f.remaining / f.rate;
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best.map(SimDuration::from_secs)
    }

    /// Advances every active flow by `dt` at its current rate. Flows never
    /// overshoot: remaining volume is clamped at zero.
    ///
    /// Rates are piecewise constant between mutations, so advancing does
    /// *not* by itself invalidate the allocation — only the flows that
    /// complete during the step mark their constraints for an incremental
    /// re-fill.
    pub fn advance(&mut self, dt: SimDuration) {
        self.ensure_rates();
        let secs = dt.as_secs();
        if secs <= 0.0 {
            return;
        }
        let mut completed: Vec<FlowId> = Vec::new();
        for (id, f) in self.flows.iter_mut() {
            if f.paused || f.rate <= EPS {
                continue;
            }
            let moved = (f.rate * secs).min(f.remaining);
            // simlint: allow(R5, moved is clamped to remaining and the threshold below snaps completion exactly)
            f.remaining -= moved;
            f.transferred += moved;
            // The relative slack snaps a flow complete when per-step f64
            // integration drift would otherwise leave it a few ulps short
            // at its own predicted completion instant (which would cost an
            // extra near-zero event round to mop up).
            if f.remaining <= completion_threshold(f.spec.bytes) {
                f.transferred = f.spec.bytes;
                f.remaining = 0.0;
                f.rate = 0.0;
                completed.push(*id);
            }
        }
        // Completions free capacity for the survivors of their component.
        for id in completed {
            self.newly_completed.push(id);
            self.leave(id);
        }
    }

    /// Flows that completed since the last call, in completion order.
    pub fn drain_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.newly_completed)
    }

    /// Active (unpaused, incomplete) flows currently allocated a zero
    /// rate — starved by binding constraints (e.g. a zero-capacity
    /// constraint) or by an infinite-cap-on-infinite-constraint
    /// degeneracy. Such flows never produce a completion event, so a
    /// session driving the network would hang without detecting them.
    pub fn stalled_flows(&mut self) -> Vec<FlowId> {
        self.ensure_rates();
        self.flows
            .iter()
            .filter(|(_, f)| {
                !f.paused && f.remaining > completion_threshold(f.spec.bytes) && f.rate <= EPS
            })
            .map(|(id, _)| *id)
            .collect()
    }

    /// Flows that are complete but still registered.
    pub fn completed_flows(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, f)| f.remaining <= completion_threshold(f.spec.bytes))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Forces a full rate recomputation (normally done incrementally).
    pub fn recompute(&mut self) {
        self.dirty_constraints.extend(0..self.capacities.len());
        for (id, f) in &self.flows {
            if !f.spec.constraints.is_empty() {
                continue;
            }
            self.dirty_lone.insert(*id);
        }
        self.ensure_rates();
    }

    /// Whether a flow currently takes part in the allocation.
    fn participates(&self, id: FlowId) -> bool {
        self.flows
            .get(&id)
            .map(|f| !f.paused && f.remaining > completion_threshold(f.spec.bytes))
            .unwrap_or(false)
    }

    /// Registers a flow as an allocation participant and marks the affected
    /// part of the network for re-solving.
    fn join(&mut self, id: FlowId) {
        let constraints = self.flows[&id].spec.constraints.clone();
        for c in &constraints {
            self.members[c.0].insert(id);
        }
        self.mark_dirty(id, &constraints);
    }

    /// Removes a flow from the allocation (pause, completion, removal) and
    /// marks the affected part of the network for re-solving.
    fn leave(&mut self, id: FlowId) {
        let constraints = self.flows[&id].spec.constraints.clone();
        for c in &constraints {
            self.members[c.0].remove(&id);
        }
        self.mark_dirty(id, &constraints);
    }

    /// Marks the finite constraints a changed flow crosses; a flow that
    /// crosses none (infinite-only or constraint-free) affects nobody else
    /// and is queued for the lone-flow shortcut instead.
    fn mark_dirty(&mut self, id: FlowId, constraints: &[ConstraintId]) {
        let mut has_finite = false;
        for c in constraints {
            if self.capacities[c.0].is_finite() {
                has_finite = true;
                self.dirty_constraints.insert(c.0);
            }
        }
        if !has_finite {
            self.dirty_lone.insert(id);
        }
    }

    /// Re-solves whatever the accumulated mutations touched. Untouched
    /// components keep their rates verbatim.
    fn ensure_rates(&mut self) {
        if self.dirty_constraints.is_empty() && self.dirty_lone.is_empty() {
            return;
        }
        for id in std::mem::take(&mut self.dirty_lone) {
            self.solve_lone(id);
        }
        let seeds = std::mem::take(&mut self.dirty_constraints);
        let mut visited = vec![false; self.capacities.len()];
        for seed in seeds {
            if self.capacities[seed].is_finite() {
                self.solve_component(seed, &mut visited);
            } else {
                // The constraint stopped binding (capacity raised to
                // infinity): each member's residual component — and members
                // left without any binding constraint — must be re-solved.
                for id in self.members[seed].clone() {
                    let first_finite = self.flows[&id]
                        .spec
                        .constraints
                        .iter()
                        .find(|c| self.capacities[c.0].is_finite())
                        .map(|c| c.0);
                    match first_finite {
                        Some(c) => self.solve_component(c, &mut visited),
                        None => self.solve_lone(id),
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        self.assert_consistent();
    }

    /// A participating flow with no binding-capable constraint runs at its
    /// own cap (or is starved if it has none — the degenerate
    /// infinite-on-infinite case).
    fn solve_lone(&mut self, id: FlowId) {
        let Some(f) = self.flows.get_mut(&id) else {
            return;
        };
        let active = !f.paused && f.remaining > completion_threshold(f.spec.bytes);
        f.rate = if active && f.spec.rate_cap.is_finite() {
            f.spec.rate_cap
        } else {
            0.0
        };
    }

    /// Solves the component reachable from `seed` through finite
    /// constraints (skipping it if a previous seed already covered it) and
    /// installs the resulting rates.
    fn solve_component(&mut self, seed: usize, visited: &mut [bool]) {
        if visited[seed] {
            return;
        }
        let subset = self.collect_component(seed, visited);
        if subset.is_empty() {
            return;
        }
        let rates = Self::solve(&self.capacities, &self.flows, &subset);
        for (id, rate) in subset.iter().zip(rates) {
            // simlint: allow(R4, collect_component only returns ids present in the flow map)
            self.flows.get_mut(id).expect("component flow exists").rate = rate;
        }
    }

    /// The transitive closure of flows connected to `seed` through
    /// finite-capacity constraints, in deterministic (id) order. Marks the
    /// finite constraints it spans as visited.
    fn collect_component(&self, seed: usize, visited: &mut [bool]) -> Vec<FlowId> {
        let mut stack = vec![seed];
        visited[seed] = true;
        let mut subset: BTreeSet<FlowId> = BTreeSet::new();
        while let Some(c) = stack.pop() {
            for id in &self.members[c] {
                if !subset.insert(*id) {
                    continue;
                }
                for c2 in &self.flows[id].spec.constraints {
                    if !visited[c2.0] && self.capacities[c2.0].is_finite() {
                        visited[c2.0] = true;
                        stack.push(c2.0);
                    }
                }
            }
        }
        subset.into_iter().collect()
    }

    /// Weighted max-min fair allocation of one component via progressive
    /// filling: raise every unfrozen flow's rate in lockstep
    /// (proportionally to its weight) until either the flow hits its own
    /// cap or one of its constraints saturates; freeze and repeat.
    ///
    /// `subset` must be *closed*: every finite constraint crossed by a
    /// subset flow has all of its participating flows in the subset. The
    /// result then depends only on the subset, which is what makes the
    /// incremental path equivalent to a from-scratch solve.
    fn solve(
        capacities: &[f64],
        flows: &BTreeMap<FlowId, FlowState>,
        subset: &[FlowId],
    ) -> Vec<f64> {
        let n_constraints = capacities.len();
        let mut cap_left = capacities.to_vec();

        // Index-based working set: one map lookup per flow up front, then
        // the hot rounds below touch only vectors (a machine-scale
        // component holds thousands of flows).
        let states: Vec<&FlowState> = subset.iter().map(|id| &flows[id]).collect();

        // The constraints the subset actually touches, in index order.
        let span: Vec<usize> = {
            let mut span: BTreeSet<usize> = BTreeSet::new();
            for f in &states {
                span.extend(f.spec.constraints.iter().map(|c| c.0));
            }
            span.into_iter().collect()
        };

        let mut rate = vec![0.0f64; subset.len()];
        let mut unfrozen: Vec<usize> = (0..subset.len()).collect();
        let mut weight_on = vec![0.0f64; n_constraints];
        let mut guard = 0usize;
        let max_iters = unfrozen.len() + n_constraints + 2;
        while !unfrozen.is_empty() && guard <= max_iters {
            guard += 1;

            // Weight crossing each constraint.
            for &c in &span {
                weight_on[c] = 0.0;
            }
            for &i in &unfrozen {
                let f = states[i];
                for c in &f.spec.constraints {
                    weight_on[c.0] += f.spec.weight;
                }
            }

            // Largest uniform per-weight increment permitted by constraints.
            let mut delta = f64::INFINITY;
            for &c in &span {
                let w = weight_on[c];
                if w > EPS {
                    delta = delta.min((cap_left[c]).max(0.0) / w);
                }
            }
            // ... and by per-flow caps.
            for &i in &unfrozen {
                let f = states[i];
                if f.spec.rate_cap.is_finite() {
                    delta = delta.min((f.spec.rate_cap - rate[i]).max(0.0) / f.spec.weight);
                }
            }

            if !delta.is_finite() {
                // No binding constraint and no finite cap: cannot happen
                // because add_flow requires one of the two; defensively stop.
                break;
            }

            // Apply the increment.
            if delta > 0.0 {
                for &i in &unfrozen {
                    rate[i] += states[i].spec.weight * delta;
                }
                for &c in &span {
                    let w = weight_on[c];
                    if w > EPS {
                        cap_left[c] -= w * delta;
                    }
                }
            }

            // Freeze flows that hit their cap or cross a saturated constraint.
            let before = unfrozen.len();
            unfrozen.retain(|&i| {
                let f = states[i];
                let capped = f.spec.rate_cap.is_finite() && rate[i] >= f.spec.rate_cap - EPS;
                let blocked = f.spec.constraints.iter().any(|c| cap_left[c.0] <= EPS);
                !(capped || blocked)
            });
            if unfrozen.len() == before && delta <= EPS {
                // No progress possible (all remaining flows starved).
                for &i in &unfrozen {
                    rate[i] = 0.0;
                }
                break;
            }
        }
        rate
    }

    /// Debug-only invariant: the incrementally maintained allocation must
    /// agree with a from-scratch solve of every component.
    #[cfg(debug_assertions)]
    fn assert_consistent(&self) {
        let mut expected: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut visited = vec![false; self.capacities.len()];
        for c in 0..self.capacities.len() {
            if visited[c] || !self.capacities[c].is_finite() {
                continue;
            }
            let subset = self.collect_component(c, &mut visited);
            if subset.is_empty() {
                continue;
            }
            let rates = Self::solve(&self.capacities, &self.flows, &subset);
            expected.extend(subset.into_iter().zip(rates));
        }
        for (id, f) in &self.flows {
            let want = if !f.paused && f.remaining > completion_threshold(f.spec.bytes) {
                match expected.get(id) {
                    Some(&r) => r,
                    // Not in any finite component: the lone-flow shortcut.
                    None if f.spec.rate_cap.is_finite() => f.spec.rate_cap,
                    None => 0.0,
                }
            } else {
                0.0
            };
            let tolerance = 1e-9 * want.abs().max(1.0);
            debug_assert!(
                (f.rate - want).abs() <= tolerance,
                "incremental allocation diverged for {id:?}: have {}, from-scratch {want}",
                f.rate
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_constraint() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(1000.0, 1.0, 60.0, vec![server]));
        assert!(approx(net.rate(f), 60.0));

        let g = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![server]));
        // f capped at 60 is below its fair share; g takes the rest.
        assert!(approx(net.rate(f), 50.0) || net.rate(f) <= 60.0 + 1e-6);
        assert!(approx(net.rate(f) + net.rate(g), 100.0));
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        let b = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        assert!(approx(net.rate(a), 50.0));
        assert!(approx(net.rate(b), 50.0));
    }

    #[test]
    fn weights_bias_the_split() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let big = net.add_flow(FlowSpec::new(1e6, 3.0, f64::INFINITY, vec![server]));
        let small = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        assert!(approx(net.rate(big), 75.0));
        assert!(approx(net.rate(small), 25.0));
    }

    #[test]
    fn capped_flow_leaves_spare_bandwidth_to_others() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let capped = net.add_flow(FlowSpec::new(1e6, 1.0, 10.0, vec![server]));
        let open = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        assert!(approx(net.rate(capped), 10.0));
        assert!(approx(net.rate(open), 90.0));
    }

    #[test]
    fn multi_constraint_bottleneck_is_respected() {
        let mut net = FluidNetwork::new();
        let wide = net.add_constraint(1000.0);
        let narrow = net.add_constraint(30.0);
        let through_both = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![wide, narrow]));
        let wide_only = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![wide]));
        assert!(approx(net.rate(through_both), 30.0));
        assert!(approx(net.rate(wide_only), 970.0));
    }

    #[test]
    fn advance_and_completion() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(200.0, 1.0, f64::INFINITY, vec![server]));
        let ttc = net.time_to_next_completion().unwrap();
        assert!(approx(ttc.as_secs(), 2.0));
        net.advance(SimDuration::from_secs(1.0));
        assert!(approx(net.progress(f).unwrap().remaining, 100.0));
        net.advance(SimDuration::from_secs(1.0));
        assert!(net.is_complete(f));
        assert_eq!(net.completed_flows(), vec![f]);
        assert!(net.time_to_next_completion().is_none());
    }

    #[test]
    fn many_segment_flow_completes_at_its_predicted_instant() {
        // Regression for per-step f64 integration drift: a flow advanced
        // in thousands of segments accumulates rounding error in
        // `remaining -= rate * dt` and used to land a few hundred ulps
        // short of the absolute completion threshold at its own predicted
        // completion time, costing an extra near-zero event round. The
        // relative completion slack must absorb that drift.
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(1.0e8 / 7.0); // non-representable rate
        let f = net.add_flow(FlowSpec::new(1.0e9, 1.0, f64::INFINITY, vec![server]));
        let total = net.time_to_next_completion().unwrap();
        // Alternating uneven segments (prime tick counts) so the per-step
        // rounding errors do not telescope away; this pattern accumulates
        // ~1.2e-5 bytes of drift, an order of magnitude above the absolute
        // completion threshold.
        let mut left = total.ticks();
        let mut toggle = true;
        while left > 0 {
            let step = if toggle { 7919 } else { 104_729 }.min(left);
            net.advance(SimDuration::from_ticks(step));
            left -= step;
            toggle = !toggle;
        }
        assert!(
            net.is_complete(f),
            "drift left the flow incomplete at its predicted completion: {:?}",
            net.progress(f).unwrap()
        );
        assert_eq!(net.drain_completed(), vec![f]);
        let p = net.progress(f).unwrap();
        assert_eq!(p.remaining, 0.0);
        assert_eq!(p.transferred, 1.0e9);
    }

    #[test]
    fn stalled_flows_reports_zero_rate_active_flows() {
        let mut net = FluidNetwork::new();
        let dead = net.add_constraint(0.0);
        let live = net.add_constraint(100.0);
        let stuck = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![dead]));
        let ok = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![live]));
        assert_eq!(net.stalled_flows(), vec![stuck]);
        // Paused and completed flows are not "stalled".
        net.pause_flow(stuck);
        assert!(net.stalled_flows().is_empty());
        net.advance(SimDuration::from_secs(10.0));
        assert!(net.is_complete(ok));
        assert!(net.stalled_flows().is_empty());
    }

    #[test]
    fn advance_never_overshoots() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(50.0, 1.0, f64::INFINITY, vec![server]));
        net.advance(SimDuration::from_secs(10.0));
        let p = net.progress(f).unwrap();
        assert_eq!(p.remaining, 0.0);
        assert!(approx(p.transferred, 50.0));
    }

    #[test]
    fn pause_and_resume() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![server]));
        let b = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![server]));
        net.pause_flow(a);
        assert_eq!(net.rate(a), 0.0);
        assert!(approx(net.rate(b), 100.0), "paused flow frees its share");
        net.advance(SimDuration::from_secs(1.0));
        assert!(approx(net.progress(a).unwrap().remaining, 1000.0));
        net.resume_flow(a);
        assert!(approx(net.rate(a), 50.0));
    }

    #[test]
    fn completion_frees_capacity_for_survivors() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let short = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![server]));
        let long = net.add_flow(FlowSpec::new(1000.0, 1.0, f64::INFINITY, vec![server]));
        // Both run at 50 B/s; the short one finishes after 2 s.
        let ttc = net.time_to_next_completion().unwrap();
        assert!(approx(ttc.as_secs(), 2.0));
        net.advance(ttc);
        assert!(net.is_complete(short));
        assert!(approx(net.rate(long), 100.0));
    }

    #[test]
    fn set_capacity_changes_rates() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        assert!(approx(net.rate(f), 100.0));
        net.set_capacity(server, 10.0);
        assert!(approx(net.rate(f), 10.0));
        assert!(approx(net.capacity(server), 10.0));
    }

    #[test]
    fn remove_flow_returns_progress() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![server]));
        net.advance(SimDuration::from_secs(0.5));
        let p = net.remove_flow(f).unwrap();
        assert!(approx(p.transferred, 50.0));
        assert!(approx(p.remaining, 50.0));
        assert_eq!(net.flow_count(), 0);
        assert!(net.remove_flow(f).is_none());
    }

    #[test]
    fn zero_byte_flow_is_immediately_complete() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let f = net.add_flow(FlowSpec::new(0.0, 1.0, f64::INFINITY, vec![server]));
        assert!(net.is_complete(f));
    }

    #[test]
    fn aggregate_rate_sums_all_flows() {
        let mut net = FluidNetwork::new();
        let s1 = net.add_constraint(100.0);
        let s2 = net.add_constraint(40.0);
        net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![s1]));
        net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![s2]));
        assert!(approx(net.aggregate_rate(), 140.0));
    }

    #[test]
    fn zero_capacity_constraint_starves_flows() {
        let mut net = FluidNetwork::new();
        let dead = net.add_constraint(0.0);
        let f = net.add_flow(FlowSpec::new(100.0, 1.0, f64::INFINITY, vec![dead]));
        assert_eq!(net.rate(f), 0.0);
        assert!(net.time_to_next_completion().is_none());
    }

    #[test]
    #[should_panic]
    fn unknown_constraint_panics() {
        let mut net = FluidNetwork::new();
        net.add_flow(FlowSpec::new(1.0, 1.0, 1.0, vec![ConstraintId(3)]));
    }

    #[test]
    #[should_panic]
    fn uncapped_unconstrained_flow_panics() {
        let mut net = FluidNetwork::new();
        net.add_flow(FlowSpec::new(1.0, 1.0, f64::INFINITY, vec![]));
    }

    // --- Edge cases the property suite does not reach ---

    #[test]
    fn zero_byte_flow_consumes_no_bandwidth() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let empty = net.add_flow(FlowSpec::new(0.0, 5.0, f64::INFINITY, vec![server]));
        let real = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        // The complete flow is excluded from the allocation: despite its
        // larger weight the whole capacity goes to the active flow.
        assert_eq!(net.rate(empty), 0.0);
        assert!(approx(net.rate(real), 100.0));
        assert!(net.completed_flows().contains(&empty));
    }

    #[test]
    fn zero_byte_flow_survives_advance_and_removal() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let empty = net.add_flow(FlowSpec::new(0.0, 1.0, f64::INFINITY, vec![server]));
        net.advance(SimDuration::from_secs(3.0));
        let p = net.progress(empty).unwrap();
        assert_eq!(p.remaining, 0.0);
        assert_eq!(p.transferred, 0.0);
        let removed = net.remove_flow(empty).unwrap();
        assert_eq!(removed.transferred, 0.0);
        assert_eq!(net.flow_count(), 0);
    }

    #[test]
    fn constraint_free_flow_runs_at_its_cap() {
        // A flow attached to no constraints is legal with a finite cap: it
        // models a transfer limited only by the client-side link.
        let mut net = FluidNetwork::new();
        let f = net.add_flow(FlowSpec::new(120.0, 2.0, 40.0, vec![]));
        assert!(approx(net.rate(f), 40.0));
        let ttc = net.time_to_next_completion().unwrap();
        assert!(approx(ttc.as_secs(), 3.0));
        net.advance(ttc);
        assert!(net.is_complete(f));
    }

    #[test]
    fn constraint_free_flows_do_not_contend() {
        let mut net = FluidNetwork::new();
        let a = net.add_flow(FlowSpec::new(1e6, 1.0, 30.0, vec![]));
        let b = net.add_flow(FlowSpec::new(1e6, 9.0, 50.0, vec![]));
        // No shared constraint: each runs at its own cap, weights are moot.
        assert!(approx(net.rate(a), 30.0));
        assert!(approx(net.rate(b), 50.0));
    }

    #[test]
    fn infinite_capacity_constraint_never_binds() {
        let mut net = FluidNetwork::new();
        let infinite = net.add_constraint(f64::INFINITY);
        let narrow = net.add_constraint(25.0);
        let capped = net.add_flow(FlowSpec::new(1e6, 1.0, 10.0, vec![infinite]));
        let through_narrow = net.add_flow(FlowSpec::new(
            1e6,
            1.0,
            f64::INFINITY,
            vec![infinite, narrow],
        ));
        // The infinite constraint limits nobody: the first flow hits its own
        // cap, the second saturates the narrow server.
        assert!(approx(net.rate(capped), 10.0));
        assert!(approx(net.rate(through_narrow), 25.0));
    }

    #[test]
    fn uncapped_flow_on_infinite_constraint_is_starved_not_stuck() {
        // Degenerate: no finite cap and no finite constraint. The allocator
        // cannot assign a finite rate; it must terminate with rate 0 while
        // still serving well-posed flows correctly.
        let mut net = FluidNetwork::new();
        let infinite = net.add_constraint(f64::INFINITY);
        let unbounded = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![infinite]));
        assert_eq!(net.rate(unbounded), 0.0);
        assert!(net.time_to_next_completion().is_none());
        // Advancing past this state neither panics nor creates bytes.
        net.advance(SimDuration::from_secs(1.0));
        let p = net.progress(unbounded).unwrap();
        assert_eq!(p.transferred, 0.0);
        assert!(approx(p.remaining, 1e6));
    }

    #[test]
    fn advance_past_all_completions_is_a_fixpoint() {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(100.0);
        let a = net.add_flow(FlowSpec::new(50.0, 1.0, f64::INFINITY, vec![server]));
        let b = net.add_flow(FlowSpec::new(150.0, 1.0, f64::INFINITY, vec![server]));
        // One giant step completes everything at once (rates are held for
        // the whole step; both flows clamp at zero remaining).
        net.advance(SimDuration::from_secs(1_000.0));
        assert!(net.is_complete(a) && net.is_complete(b));
        assert_eq!(net.completed_flows().len(), 2);
        assert!(net.time_to_next_completion().is_none());
        assert_eq!(net.aggregate_rate(), 0.0);
        // Further advancing is a no-op on progress.
        let before_a = net.progress(a).unwrap();
        let before_b = net.progress(b).unwrap();
        net.advance(SimDuration::from_secs(1_000.0));
        assert_eq!(net.progress(a).unwrap(), before_a);
        assert_eq!(net.progress(b).unwrap(), before_b);
        // And freed capacity is immediately available to a new flow.
        let late = net.add_flow(FlowSpec::new(1e6, 1.0, f64::INFINITY, vec![server]));
        assert!(approx(net.rate(late), 100.0));
    }
}
