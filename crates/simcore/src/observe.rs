//! Generic observation support for discrete-event simulations.
//!
//! Higher layers (the CALCioM session, the PFS transfer layer) describe
//! what happened as a stream of domain events; this module provides the
//! substrate those streams are built from:
//!
//! * [`Stamped`] — an event paired with the [`SimTime`] at which it was
//!   emitted;
//! * [`EventLog`] — an append-only, time-monotonic log of stamped events,
//!   the storage behind trace recorders.
//!
//! Keeping the containers here (and the domain event *types* in the crates
//! that own the domain) lets every layer share one notion of "a
//! time-stamped stream" without `simcore` knowing about applications,
//! arbiters or file systems.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An event paired with the simulated time at which it was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stamped<E> {
    /// When the event was emitted.
    pub time: SimTime,
    /// The event itself.
    pub event: E,
}

impl<E> Stamped<E> {
    /// Pairs an event with its emission time.
    pub fn new(time: SimTime, event: E) -> Self {
        Stamped { time, event }
    }
}

/// An append-only log of [`Stamped`] events.
///
/// Emission order is the order of the underlying stream; the log asserts
/// (in debug builds) that time stamps never go backwards, which is the
/// property replaying consumers rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog<E> {
    events: Vec<Stamped<E>>,
}

impl<E> Default for EventLog<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventLog<E> {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog { events: Vec::new() }
    }

    /// Appends an event at the given time.
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            self.events.last().map(|e| e.time <= time).unwrap_or(true),
            "event log must be appended in time order"
        );
        self.events.push(Stamped { time, event });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Stamped<E>] {
        &self.events
    }

    /// Iterates over the recorded events in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Stamped<E>> {
        self.events.iter()
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<Stamped<E>> {
        self.events
    }

    /// Time of the last recorded event, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.time)
    }
}

impl<'a, E> IntoIterator for &'a EventLog<E> {
    type Item = &'a Stamped<E>;
    type IntoIter = std::slice::Iter<'a, Stamped<E>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<E> IntoIterator for EventLog<E> {
    type Item = Stamped<E>;
    type IntoIter = std::vec::IntoIter<Stamped<E>>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<E> FromIterator<Stamped<E>> for EventLog<E> {
    fn from_iter<I: IntoIterator<Item = Stamped<E>>>(iter: I) -> Self {
        EventLog {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn log_preserves_emission_order() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(t(0.0), "a");
        log.push(t(1.0), "b");
        log.push(t(1.0), "c");
        assert_eq!(log.len(), 3);
        assert_eq!(log.last_time(), Some(t(1.0)));
        let kinds: Vec<&str> = log.iter().map(|e| e.event).collect();
        assert_eq!(kinds, vec!["a", "b", "c"]);
        let owned: Vec<Stamped<&str>> = log.clone().into_events();
        assert_eq!(owned[0], Stamped::new(t(0.0), "a"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn log_rejects_backwards_time_in_debug() {
        let mut log = EventLog::new();
        log.push(t(5.0), ());
        log.push(t(1.0), ());
    }

    #[test]
    fn log_collects_from_iterator() {
        let log: EventLog<u32> = [Stamped::new(t(0.0), 1), Stamped::new(t(2.0), 2)]
            .into_iter()
            .collect();
        assert_eq!(log.len(), 2);
        let back: Vec<u32> = log.into_iter().map(|e| e.event).collect();
        assert_eq!(back, vec![1, 2]);
    }
}
