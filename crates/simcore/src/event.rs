//! Deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: two events scheduled for
//! the same instant fire in the order they were scheduled, which keeps
//! simulations reproducible regardless of hash-map iteration order or
//! floating-point tie-breaking.
//!
//! Cancellation is tracked through a *live set* rather than a tombstone
//! set: [`EventQueue::cancel`] removes the id from the set of live events,
//! and dead heap entries are discarded when they surface at the head (or in
//! bulk once they outnumber the live ones). Auxiliary state therefore never
//! outgrows the number of events actually pending — a long-running
//! simulation that schedules and cancels millions of timers keeps a bounded
//! footprint (see the `cancellation_state_stays_bounded` test).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Once the heap holds at least this many entries, a cancellation that
/// leaves more dead entries than live ones triggers a bulk compaction.
const COMPACT_MIN: usize = 64;

/// A time-ordered queue of events carrying payloads of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Ids of scheduled events that have been neither popped nor
    /// cancelled. An entry in the heap whose id is absent here is dead and
    /// is skipped (at the head) or dropped (by compaction). Only membership
    /// is ever queried, so iteration order cannot leak into the schedule —
    /// a `BTreeSet` keeps that true by construction (and in R1's scope).
    live: BTreeSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: BTreeSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time` and returns a handle that can
    /// later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.live.insert(id);
        id
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op and returns
    /// `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.live.remove(&id);
        if cancelled && self.heap.len() >= COMPACT_MIN && self.heap.len() >= 2 * self.live.len() {
            let live = &self.live;
            self.heap.retain(|e| live.contains(&e.id));
        }
        cancelled
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_dead();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.id);
        Some((entry.time, entry.payload))
    }

    /// Number of live (non-cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of entries physically held, including cancelled ones that
    /// have not been pruned yet. Exposed so tests (and capacity planning)
    /// can check that cancellation does not leak: `backlog` never exceeds
    /// `max(2 × len, a small constant)` once compaction kicks in.
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }

    fn skip_dead(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.live.contains(&head.id) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_a_no_op() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        // The event already fired: cancelling it neither succeeds nor
        // corrupts the live count or the backlog.
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn cancellation_state_stays_bounded() {
        // A long-running simulation that keeps scheduling timers and
        // cancelling most of them (the bounded-delay pattern: one budget
        // timer per request, almost always cancelled by an earlier grant)
        // must not accumulate state. Auxiliary tracking is keyed on *live*
        // events only, and compaction keeps dead heap entries below the
        // number of live ones (plus the compaction threshold).
        let mut q = EventQueue::new();
        let mut far = Vec::new();
        for round in 0..10_000u64 {
            // A far-future timer that is immediately cancelled...
            let timer = q.schedule(t(1e6 + round as f64), round);
            q.cancel(timer);
            // ...a second one cancelled after it has already fired (the
            // stale-cancel path)...
            let stale = q.schedule(t(round as f64), round);
            let _ = q.pop();
            q.cancel(stale);
            // ...and a handful of genuinely pending events.
            if round % 100 == 0 {
                far.push(q.schedule(t(2e6 + round as f64), round));
            }
        }
        assert_eq!(q.len(), far.len());
        assert!(
            q.backlog() <= 2 * q.len() + COMPACT_MIN,
            "dead entries leaked: backlog {} for {} live events",
            q.backlog(),
            q.len()
        );
        // The surviving events are all still intact.
        for id in far {
            assert!(q.cancel(id));
        }
        assert!(q.is_empty());
    }
}
