//! Deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: two events scheduled for
//! the same instant fire in the order they were scheduled, which keeps
//! simulations reproducible regardless of hash-map iteration order or
//! floating-point tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events carrying payloads of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<EventId>,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            len: 0,
        }
    }

    /// Schedules `payload` to fire at `time` and returns a handle that can
    /// later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.len += 1;
        id
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op and returns
    /// `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        let inserted = self.cancelled.insert(id);
        if inserted && self.len > 0 {
            // The entry is still somewhere in the heap; it will be skipped
            // lazily when popped. `len` tracks live (non-cancelled) events.
            self.len -= 1;
        }
        inserted
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.len = self.len.saturating_sub(1);
        Some((entry.time, entry.payload))
    }

    /// Number of live (non-cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }
}
