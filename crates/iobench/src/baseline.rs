//! Shared cache of `T_alone` baselines.
//!
//! Every Δ-graph sweep and strategy comparison needs the stand-alone write
//! time of each application on the target file system — and sweeps ask for
//! the *same* `(AppConfig, PfsConfig)` pair at every point (and figures ask
//! again for every strategy). A [`BaselineCache`] memoizes
//! [`Session::run_alone`] results so each distinct pair is simulated once
//! per process; `delta` and `compare` go through the process-wide
//! [`BaselineCache::global`].
//!
//! The cache key is the exact text encoding of the single-application
//! scenario `run_alone` executes (start time zeroed, default strategy), so
//! two configurations collide only if they describe bit-identical
//! simulations — in which case the cached value is, by determinism, the
//! value a fresh run would produce.
//!
//! ## Concurrency contract
//!
//! One cache may be shared by concurrent sweeps (the sharded
//! [`run_scenarios_sharded`](crate::run_scenarios_sharded) batches all go
//! through one instance):
//!
//! * **Values** — lookups hold the table lock, simulations run outside it.
//!   Two threads missing on the same pair both simulate, but the
//!   simulation is deterministic, so whichever insert lands last writes
//!   the same value: a cached answer never depends on interleaving.
//! * **Counters** — every request increments *exactly one* of `hits` /
//!   `misses` (atomically), so `hits() + misses()` always equals the total
//!   number of requests, from any mix of threads — including requests
//!   whose baseline simulation fails (they count as misses: a simulation
//!   really was attempted). A duplicated concurrent miss counts as two
//!   misses for the same reason, hence `len() <= misses()`, with equality
//!   once no two threads race on a fresh pair and nothing errors.

use calciom::{Error, Scenario, Session};
use mpiio::AppConfig;
use pfs::{AppId, PfsConfig};
use simcore::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The memo table plus its insertion-order queue (the eviction order).
#[derive(Debug, Default)]
struct Table {
    map: BTreeMap<String, f64>,
    order: VecDeque<String>,
}

/// A memo table of stand-alone first-phase I/O times, keyed on the exact
/// `(application, file system)` pair.
///
/// The cache may be bounded: [`BaselineCache::with_capacity`] (or
/// [`BaselineCache::set_capacity`] on a live cache, e.g. the global one
/// inside a long-running server) caps the number of entries, evicting in
/// insertion order once full. A capacity of 0 — the [`BaselineCache::new`]
/// default — means unbounded, which keeps the historical sweep behavior:
/// a figure sweep touches a fixed, small set of pairs and wants them all
/// resident.
#[derive(Debug, Default)]
pub struct BaselineCache {
    table: Mutex<Table>,
    /// Maximum entries; 0 means unbounded.
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BaselineCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        BaselineCache::default()
    }

    /// An empty cache holding at most `capacity` entries (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = BaselineCache::new();
        cache.capacity.store(capacity, Ordering::Relaxed);
        cache
    }

    /// Re-bounds a live cache (0 = unbounded). Shrinking below the
    /// current size evicts the oldest entries immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut table = self.table();
        self.evict_over_capacity(&mut table);
    }

    /// The capacity in force (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Locks the memo table. The single place the lock is acquired — and
    /// the single justified panic: a poisoned lock means another sweep
    /// thread died mid-insert, and no baseline answer can be trusted.
    fn table(&self) -> std::sync::MutexGuard<'_, Table> {
        // simlint: allow(R4, poisoned lock means a worker panicked; continuing would serve corrupt baselines)
        self.table.lock().expect("baseline cache lock")
    }

    /// Drops the oldest entries until the table fits the capacity. Must
    /// be called with the lock held (takes the guard's target).
    fn evict_over_capacity(&self, table: &mut Table) {
        let capacity = self.capacity();
        if capacity == 0 {
            return;
        }
        while table.map.len() > capacity {
            let Some(oldest) = table.order.pop_front() else {
                break;
            };
            if table.map.remove(&oldest).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The process-wide cache shared by the sweep harnesses.
    pub fn global() -> &'static BaselineCache {
        static GLOBAL: OnceLock<BaselineCache> = OnceLock::new();
        GLOBAL.get_or_init(BaselineCache::new)
    }

    /// The stand-alone first-phase I/O time of `app` on `pfs` — computed
    /// through [`Session::run_alone`] on the first request for this pair,
    /// served from the cache afterwards. The simulation is deterministic,
    /// so a cached answer is exactly the answer a fresh run would give.
    pub fn alone_time(&self, app: &AppConfig, pfs: &PfsConfig) -> Result<f64, Error> {
        let key = Self::key(app, pfs);
        if let Some(&cached) = self.table().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached);
        }
        // Count the miss up front so the hits/misses invariant holds even
        // when the simulation below fails, then simulate outside the
        // lock: concurrent misses for the same pair duplicate work but
        // always insert the same deterministic value.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Session::run_alone(app.clone(), pfs.clone())?;
        let mut table = self.table();
        if table.map.insert(key.clone(), value).is_none() {
            table.order.push_back(key);
        }
        self.evict_over_capacity(&mut table);
        Ok(value)
    }

    /// How many requests were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many requests had to run a baseline session.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many entries were dropped to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct `(app, pfs)` pairs cached.
    pub fn len(&self) -> usize {
        self.table().map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached baseline (counters are kept; entries dropped
    /// here do not count as evictions).
    pub fn clear(&self) {
        let mut table = self.table();
        table.map.clear();
        table.order.clear();
    }

    /// The cache key: the *canonical* serialized form of the scenario
    /// [`Session::run_alone`] would execute. Every field the baseline run
    /// is invariant to is normalized away — `run_alone` zeroes the start
    /// time itself, and a stand-alone session's result cannot depend on
    /// the application's id or display name — and the text is passed once
    /// through the codec (`from_text ∘ to_text`), so any two descriptions
    /// of the same baseline simulation share one entry.
    fn key(app: &AppConfig, pfs: &PfsConfig) -> String {
        let mut app = app.clone();
        app.start = SimTime::ZERO;
        app.id = AppId(0);
        app.name = String::new();
        let text = Scenario::new(pfs.clone(), vec![app]).to_text();
        Scenario::from_text(&text)
            .map(|s| s.to_text())
            .unwrap_or(text)
    }
}

/// Convenience wrapper over [`BaselineCache::global`], used by the sweep
/// modules.
pub fn alone_time_cached(app: &AppConfig, pfs: &PfsConfig) -> Result<f64, Error> {
    BaselineCache::global().alone_time(app, pfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::AccessPattern;
    use pfs::AppId;

    const MB: f64 = 1.0e6;

    fn app(id: usize, procs: u32, mb: f64) -> AppConfig {
        AppConfig::new(AppId(id), "A", procs, AccessPattern::contiguous(mb * MB))
    }

    #[test]
    fn cache_returns_the_uncached_value_and_stops_simulating() {
        let cache = BaselineCache::new();
        let pfs = PfsConfig::grid5000_rennes();
        let a = app(0, 336, 16.0);

        let uncached = Session::run_alone(a.clone(), pfs.clone()).unwrap();
        let first = cache.alone_time(&a, &pfs).unwrap();
        let second = cache.alone_time(&a, &pfs).unwrap();
        assert_eq!(first, uncached, "cached path must not change results");
        assert_eq!(second, uncached);
        // The session count drops: one simulation for two requests.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn start_offset_does_not_split_the_cache() {
        // `run_alone` zeroes the start time, so Δ-graph variants of one
        // application share a single baseline entry.
        let cache = BaselineCache::new();
        let pfs = PfsConfig::grid5000_rennes();
        cache.alone_time(&app(0, 336, 16.0), &pfs).unwrap();
        cache
            .alone_time(&app(0, 336, 16.0).starting_at_secs(7.5), &pfs)
            .unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn identity_fields_do_not_split_the_cache() {
        // Two descriptions of the same baseline simulation — differing
        // only in application id, display name, and start offset — must
        // share one cache entry: the key is canonical, not literal.
        let cache = BaselineCache::new();
        let pfs = PfsConfig::grid5000_rennes();
        cache.alone_time(&app(0, 336, 16.0), &pfs).unwrap();
        let twin = AppConfig::new(
            AppId(7),
            "same workload, different label",
            336,
            AccessPattern::contiguous(16.0 * MB),
        )
        .starting_at_secs(3.25);
        cache.alone_time(&twin, &pfs).unwrap();
        assert_eq!(cache.misses(), 1, "the twin must hit, not re-simulate");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_pairs_get_distinct_entries() {
        let cache = BaselineCache::new();
        let rennes = PfsConfig::grid5000_rennes();
        let nancy = PfsConfig::grid5000_nancy();
        let t_rennes = cache.alone_time(&app(0, 336, 16.0), &rennes).unwrap();
        let t_nancy = cache.alone_time(&app(0, 336, 16.0), &nancy).unwrap();
        let t_small = cache.alone_time(&app(1, 48, 16.0), &rennes).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        assert_ne!(t_rennes, t_nancy);
        assert_ne!(t_rennes, t_small);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_sweeps_keep_counters_consistent() {
        // The documented contract: whatever the interleaving, every
        // request lands in exactly one counter and every cached value is
        // the deterministic simulation result.
        let cache = BaselineCache::new();
        let pfs = PfsConfig::grid5000_rennes();
        let apps: Vec<AppConfig> = (0..4).map(|i| app(i, 48 + 16 * i as u32, 8.0)).collect();
        let expected: Vec<f64> = apps
            .iter()
            .map(|a| Session::run_alone(a.clone(), pfs.clone()).unwrap())
            .collect();

        const THREADS: usize = 8;
        const ROUNDS: usize = 5;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let apps = &apps;
                let expected = &expected;
                let pfs = &pfs;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // Shards walk the pairs in different orders to
                        // exercise racy first requests.
                        for k in 0..apps.len() {
                            let i = (k + t + round) % apps.len();
                            let got = cache.alone_time(&apps[i], pfs).unwrap();
                            assert_eq!(got, expected[i], "interleaving changed a value");
                        }
                    }
                });
            }
        });

        let requests = (THREADS * ROUNDS * apps.len()) as u64;
        assert_eq!(
            cache.hits() + cache.misses(),
            requests,
            "every request must land in exactly one counter"
        );
        assert_eq!(cache.len(), apps.len());
        // Duplicate concurrent misses are allowed (each one really
        // simulated) but can never exceed one per thread per pair.
        assert!(cache.misses() >= apps.len() as u64);
        assert!(cache.misses() <= (apps.len() * THREADS) as u64);
    }

    #[test]
    fn invalid_configurations_still_error_and_are_not_cached() {
        let cache = BaselineCache::new();
        let mut pfs = PfsConfig::grid5000_rennes();
        pfs.num_servers = 0;
        assert!(cache.alone_time(&app(0, 336, 16.0), &pfs).is_err());
        assert!(cache.is_empty());
        // The counter invariant covers failed requests too: the attempt
        // counts as a miss, so hits + misses still equals total requests.
        assert_eq!(cache.hits() + cache.misses(), 1);
    }

    #[test]
    fn bounded_cache_evicts_in_insertion_order() {
        let cache = BaselineCache::with_capacity(2);
        let pfs = PfsConfig::grid5000_rennes();
        // Three distinct pairs through a capacity-2 cache: the first
        // inserted entry is the one evicted.
        cache.alone_time(&app(0, 336, 16.0), &pfs).unwrap();
        cache.alone_time(&app(0, 48, 16.0), &pfs).unwrap();
        cache.alone_time(&app(0, 112, 16.0), &pfs).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // The evicted (oldest) pair must re-simulate; the resident ones
        // must not.
        cache.alone_time(&app(0, 112, 16.0), &pfs).unwrap();
        assert_eq!(cache.hits(), 1);
        cache.alone_time(&app(0, 336, 16.0), &pfs).unwrap();
        assert_eq!(cache.misses(), 4, "evicted entry re-simulates");
        // Re-caching the value must still give the deterministic answer.
        let direct = Session::run_alone(app(0, 336, 16.0), pfs.clone()).unwrap();
        assert_eq!(cache.alone_time(&app(0, 336, 16.0), &pfs).unwrap(), direct);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_unbounds() {
        let cache = BaselineCache::new();
        assert_eq!(cache.capacity(), 0, "default is unbounded");
        let pfs = PfsConfig::grid5000_rennes();
        for procs in [48, 112, 336] {
            cache.alone_time(&app(0, procs, 16.0), &pfs).unwrap();
        }
        assert_eq!(cache.len(), 3);
        cache.set_capacity(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 2);
        cache.set_capacity(0);
        for procs in [48, 112, 336] {
            cache.alone_time(&app(0, procs, 16.0), &pfs).unwrap();
        }
        assert_eq!(cache.len(), 3, "capacity 0 lifts the bound again");
        assert_eq!(cache.evictions(), 2);
    }
}
