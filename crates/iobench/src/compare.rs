//! Side-by-side comparison of scheduling strategies on one scenario.
//!
//! Figures 9–11 of the paper plot the same workload under several
//! strategies (interfering, FCFS, interruption, CALCioM's dynamic choice).
//! This module runs one scenario once per strategy, measures the
//! stand-alone baselines, and exposes the per-application interference
//! factors and machine-wide metrics for each strategy.

use crate::baseline::alone_time_cached;
use crate::parallel::run_scenarios;
use calciom::{
    AppObservation, DynamicPolicy, EfficiencyMetric, Error, Granularity, PolicySpec, Scenario,
    SessionReport, Strategy,
};
use mpiio::AppConfig;
use pfs::{AppId, PfsConfig};
use std::collections::BTreeMap;

/// Result of running one scenario under one strategy.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// The strategy.
    pub strategy: Strategy,
    /// The full session report.
    pub report: SessionReport,
}

impl StrategyRun {
    /// Observed first-phase I/O time of the given application.
    pub fn io_time(&self, app: AppId) -> Option<f64> {
        self.report.app(app).map(|a| a.first_phase().io_time())
    }
}

/// A full comparison: stand-alone baselines plus one run per strategy.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Stand-alone I/O time per application.
    pub alone: BTreeMap<AppId, f64>,
    /// One run per strategy, in the order requested.
    pub runs: Vec<StrategyRun>,
}

impl StrategyComparison {
    /// The run for a given strategy. Strategies compare structurally, so
    /// two `Delay` strategies with different bounds are distinct runs.
    pub fn run(&self, strategy: Strategy) -> Option<&StrategyRun> {
        self.runs.iter().find(|r| r.strategy == strategy)
    }

    /// Interference factor of `app` under `strategy`.
    pub fn factor(&self, strategy: Strategy, app: AppId) -> Option<f64> {
        let run = self.run(strategy)?;
        let io = run.io_time(app)?;
        let alone = self.alone.get(&app)?;
        Some(calciom::interference_factor(io, *alone))
    }

    /// Machine-wide metric value under `strategy`.
    pub fn metric(&self, strategy: Strategy, metric: EfficiencyMetric) -> Option<f64> {
        let run = self.run(strategy)?;
        Some(run.report.metric(metric, &self.alone))
    }

    /// Observations (procs, observed, alone) for `strategy`, e.g. to feed
    /// [`calciom::cpu_seconds_wasted_per_core`].
    pub fn observations(&self, strategy: Strategy) -> Option<Vec<AppObservation>> {
        let run = self.run(strategy)?;
        Some(run.report.observations(&self.alone))
    }
}

/// Measures each application's stand-alone I/O time on the given file
/// system, answering repeated requests from the process-wide
/// [`BaselineCache`](crate::BaselineCache).
pub fn alone_times(pfs: &PfsConfig, apps: &[AppConfig]) -> Result<BTreeMap<AppId, f64>, Error> {
    let mut alone = BTreeMap::new();
    for app in apps {
        alone.insert(app.id, alone_time_cached(app, pfs)?);
    }
    Ok(alone)
}

/// Runs the scenario once per strategy — concurrently, one
/// `Session<SharedTransport>` per worker thread — and collects the
/// comparison. Sessions are deterministic, so the parallel grid produces
/// the same reports a sequential loop would.
pub fn compare_strategies(
    pfs: &PfsConfig,
    apps: &[AppConfig],
    strategies: &[Strategy],
    granularity: Granularity,
    policy: DynamicPolicy,
) -> Result<StrategyComparison, Error> {
    let alone = alone_times(pfs, apps)?;
    let scenarios = strategies
        .iter()
        .map(|&strategy| {
            Ok(Scenario::builder(pfs.clone())
                .apps(apps.to_vec())
                .strategy(strategy)
                .granularity(granularity)
                .policy(policy)
                .build()?)
        })
        .collect::<Result<Vec<Scenario>, Error>>()?;
    let runs = strategies
        .iter()
        .zip(run_scenarios(&scenarios, 0)?)
        .map(|(&strategy, report)| StrategyRun { strategy, report })
        .collect();
    Ok(StrategyComparison { alone, runs })
}

/// Result of running one scenario under one named arbitration policy.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// The policy spec that was in force.
    pub spec: PolicySpec,
    /// The full session report (its
    /// [`policy_label`](SessionReport::policy_label) is the spec's text).
    pub report: SessionReport,
}

impl PolicyRun {
    /// Observed first-phase I/O time of the given application.
    pub fn io_time(&self, app: AppId) -> Option<f64> {
        self.report.app(app).map(|a| a.first_phase().io_time())
    }
}

/// A full policy comparison: stand-alone baselines plus one run per
/// [`PolicySpec`] — the policy-layer generalization of
/// [`StrategyComparison`], able to sweep schedules the [`Strategy`] enum
/// cannot express (`priority(w=cores)`, `srpf`, `rr(10s)`, …).
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// Stand-alone I/O time per application.
    pub alone: BTreeMap<AppId, f64>,
    /// One run per spec, in the order requested.
    pub runs: Vec<PolicyRun>,
}

impl PolicyComparison {
    /// The run for a given spec. Specs compare structurally, so `rr(5s)`
    /// and `rr(10s)` are distinct runs.
    pub fn run(&self, spec: &PolicySpec) -> Option<&PolicyRun> {
        self.runs.iter().find(|r| &r.spec == spec)
    }

    /// The run whose spec text equals `label` (e.g. `"delay(30s)"`).
    pub fn run_labelled(&self, label: &str) -> Option<&PolicyRun> {
        self.runs.iter().find(|r| r.spec.to_text() == label)
    }

    /// Interference factor of `app` under `spec`.
    pub fn factor(&self, spec: &PolicySpec, app: AppId) -> Option<f64> {
        let run = self.run(spec)?;
        let io = run.io_time(app)?;
        let alone = self.alone.get(&app)?;
        Some(calciom::interference_factor(io, *alone))
    }

    /// Machine-wide metric value under `spec`.
    pub fn metric(&self, spec: &PolicySpec, metric: EfficiencyMetric) -> Option<f64> {
        let run = self.run(spec)?;
        Some(run.report.metric(metric, &self.alone))
    }

    /// Observations (procs, observed, alone) for `spec`, e.g. to feed
    /// [`calciom::cpu_seconds_wasted_per_core`].
    pub fn observations(&self, spec: &PolicySpec) -> Option<Vec<AppObservation>> {
        let run = self.run(spec)?;
        Some(run.report.observations(&self.alone))
    }
}

/// Runs the scenario once per policy spec — concurrently, one
/// `Session<SharedTransport>` per worker thread — and collects the
/// comparison. Every spec is resolved through the standard
/// [`calciom::PolicyRegistry`]; an unknown name or bad argument surfaces
/// as a typed configuration error before any simulation starts.
pub fn compare_policies(
    pfs: &PfsConfig,
    apps: &[AppConfig],
    specs: &[PolicySpec],
    granularity: Granularity,
    policy: DynamicPolicy,
) -> Result<PolicyComparison, Error> {
    let alone = alone_times(pfs, apps)?;
    let scenarios = specs
        .iter()
        .map(|spec| {
            Ok(Scenario::builder(pfs.clone())
                .apps(apps.to_vec())
                .arbitration(spec.clone())
                .granularity(granularity)
                .policy(policy)
                .build()?)
        })
        .collect::<Result<Vec<Scenario>, Error>>()?;
    let runs = specs
        .iter()
        .zip(run_scenarios(&scenarios, 0)?)
        .map(|(spec, report)| PolicyRun {
            spec: spec.clone(),
            report,
        })
        .collect();
    Ok(PolicyComparison { alone, runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::AccessPattern;

    const MB: f64 = 1.0e6;

    fn scenario() -> (PfsConfig, Vec<AppConfig>) {
        // A big application with a long strided I/O phase (many
        // collective-buffering rounds → many interruption points) and a
        // small one with very different I/O requirements arriving 2 s later
        // (the Fig. 9(a)/(b) situation).
        let pfs = PfsConfig::grid5000_rennes();
        let a = AppConfig::new(AppId(0), "A", 720, AccessPattern::strided(2.0 * MB, 8));
        let b = AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(8.0 * MB))
            .starting_at_secs(2.0);
        (pfs, vec![a, b])
    }

    #[test]
    fn comparison_covers_all_strategies_and_baselines() {
        let (pfs, apps) = scenario();
        let strategies = [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ];
        let cmp = compare_strategies(
            &pfs,
            &apps,
            &strategies,
            Granularity::Round,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
        .unwrap();
        assert_eq!(cmp.runs.len(), 4);
        assert_eq!(cmp.alone.len(), 2);
        for s in strategies {
            assert!(cmp.run(s).is_some());
            assert!(cmp.factor(s, AppId(0)).unwrap() >= 1.0);
            assert!(cmp.metric(s, EfficiencyMetric::TotalIoTime).unwrap() > 0.0);
            assert_eq!(cmp.observations(s).unwrap().len(), 2);
        }
    }

    #[test]
    fn small_app_suffers_most_under_fcfs_and_least_under_interrupt() {
        // Fig. 9(b): when a small application arrives after a big one, FCFS
        // is the worst option for it and interruption the best.
        let (pfs, apps) = scenario();
        let cmp = compare_strategies(
            &pfs,
            &apps,
            &[
                Strategy::Interfere,
                Strategy::FcfsSerialize,
                Strategy::Interrupt,
            ],
            Granularity::Round,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
        .unwrap();
        let b = AppId(1);
        let fcfs = cmp.factor(Strategy::FcfsSerialize, b).unwrap();
        let interrupt = cmp.factor(Strategy::Interrupt, b).unwrap();
        let interfere = cmp.factor(Strategy::Interfere, b).unwrap();
        assert!(
            interrupt < interfere && interfere < fcfs,
            "interrupt={interrupt} interfere={interfere} fcfs={fcfs}"
        );
    }

    #[test]
    fn delay_strategies_with_different_bounds_are_distinct_runs() {
        // The lookup is structural (`Strategy: PartialEq`), not label
        // based: two bounded-delay runs with different budgets must not
        // shadow each other.
        let (pfs, apps) = scenario();
        let short = Strategy::Delay { max_wait_secs: 1.0 };
        let long = Strategy::Delay {
            max_wait_secs: 30.0,
        };
        let cmp = compare_strategies(
            &pfs,
            &apps,
            &[short, long],
            Granularity::Round,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
        .unwrap();
        let b = AppId(1);
        assert_eq!(cmp.run(short).unwrap().strategy, short);
        assert_eq!(cmp.run(long).unwrap().strategy, long);
        assert!(cmp.run(Strategy::Delay { max_wait_secs: 2.0 }).is_none());
        // The budgets genuinely differ: the long delay serializes B behind
        // A for longer than the short one.
        let io = |s: Strategy| cmp.run(s).unwrap().io_time(b).unwrap();
        assert!(io(long) >= io(short));
    }

    #[test]
    fn policy_comparison_mixes_legacy_and_extended_policies() {
        // The policy-keyed sweep runs built-in and enum-inexpressible
        // policies side by side on one scenario, one session per spec.
        let (pfs, apps) = scenario();
        let specs = [
            PolicySpec::new("interfering"),
            PolicySpec::new("fcfs"),
            PolicySpec::with_arg("priority", "w=cores"),
            PolicySpec::new("srpf"),
            PolicySpec::with_arg("rr", "2s"),
        ];
        let cmp = compare_policies(
            &pfs,
            &apps,
            &specs,
            Granularity::Round,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
        .unwrap();
        assert_eq!(cmp.runs.len(), specs.len());
        for spec in &specs {
            let run = cmp.run(spec).unwrap();
            assert_eq!(run.report.policy_label, spec.to_text());
            assert_eq!(cmp.run_labelled(&spec.to_text()).unwrap().spec, *spec);
            assert!(cmp.factor(spec, AppId(0)).unwrap() >= 1.0);
            assert!(cmp.metric(spec, EfficiencyMetric::TotalIoTime).unwrap() > 0.0);
            assert_eq!(cmp.observations(spec).unwrap().len(), 2);
        }
        // Differently-parameterized specs are distinct runs.
        assert!(cmp.run(&PolicySpec::with_arg("rr", "9s")).is_none());
        // An unknown policy is a typed configuration error.
        let err = compare_policies(
            &pfs,
            &apps,
            &[PolicySpec::new("warp")],
            Granularity::Round,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Config(calciom::ConfigError::Policy(_))
        ));
    }

    #[test]
    fn alone_times_are_positive_and_size_dependent() {
        let (pfs, apps) = scenario();
        let alone = alone_times(&pfs, &apps).unwrap();
        // The small application writes less data but is client-limited: its
        // stand-alone time is longer per byte; both must be positive.
        assert!(alone[&AppId(0)] > 0.0);
        assert!(alone[&AppId(1)] > 0.0);
    }
}
