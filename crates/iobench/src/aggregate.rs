//! Size sweeps: a small application interfering with a big one (Fig. 4).
//!
//! Application A runs on a fixed number of cores while the size of
//! application B varies (8 to 336 cores in the paper). Both start at the
//! same time; the figure reports the observed throughput of each
//! application against B's size, together with the throughput each would
//! achieve alone. The headline observation is that the small application's
//! throughput collapses (≈ 6× lower for an 8-core instance competing with a
//! 336-core one) even though the "fair" file system treats every request
//! stream equally.

use crate::parallel::parallel_map;
use calciom::{Error, Scenario, Session};
use mpiio::AppConfig;
use pfs::{AppId, PfsConfig};
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Configuration of the size sweep.
#[derive(Debug, Clone)]
pub struct SizeSweepConfig {
    /// The shared file system.
    pub pfs: PfsConfig,
    /// Application A (fixed size).
    pub app_a: AppConfig,
    /// Template for application B; its process count is overridden by each
    /// entry of `b_sizes` (the per-process pattern is kept).
    pub app_b: AppConfig,
    /// The B sizes (process counts) to sweep.
    pub b_sizes: Vec<u32>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

/// One point of the size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeSweepPoint {
    /// Number of processes of application B.
    pub b_procs: u32,
    /// Observed throughput of A while interfering with B (bytes/s).
    pub a_throughput: f64,
    /// Observed throughput of B while interfering with A (bytes/s).
    pub b_throughput: f64,
    /// Throughput A achieves alone (bytes/s).
    pub a_alone_throughput: f64,
    /// Throughput B achieves alone (bytes/s).
    pub b_alone_throughput: f64,
    /// Slowdown of B relative to running alone.
    pub b_slowdown: f64,
}

/// Runs the size sweep.
pub fn run_size_sweep(cfg: &SizeSweepConfig) -> Result<Vec<SizeSweepPoint>, Error> {
    let runs: Vec<Result<SizeSweepPoint, Error>> =
        parallel_map(cfg.b_sizes.clone(), cfg.threads, |&procs| {
            run_point(cfg, procs)
        });
    runs.into_iter().collect()
}

fn run_point(cfg: &SizeSweepConfig, b_procs: u32) -> Result<SizeSweepPoint, Error> {
    let mut app_a = cfg.app_a.clone();
    let mut app_b = cfg.app_b.clone();
    app_a.start = SimTime::ZERO;
    app_b.start = SimTime::ZERO;
    app_b.procs = b_procs;

    let throughput_alone = |app: &AppConfig| -> Result<f64, Error> {
        let t = Session::run_alone(app.clone(), cfg.pfs.clone())?;
        Ok(if t > 0.0 {
            app.bytes_per_phase() / t
        } else {
            0.0
        })
    };
    let a_alone_throughput = throughput_alone(&app_a)?;
    let b_alone_throughput = throughput_alone(&app_b)?;

    let report = Scenario::builder(cfg.pfs.clone())
        .apps([app_a.clone(), app_b.clone()])
        .build()?
        .run()?;
    let throughput = |id: AppId| -> f64 {
        report
            .app(id)
            .map(|a| a.first_phase().throughput())
            .unwrap_or(0.0)
    };
    let a_throughput = throughput(app_a.id);
    let b_throughput = throughput(app_b.id);
    Ok(SizeSweepPoint {
        b_procs,
        a_throughput,
        b_throughput,
        a_alone_throughput,
        b_alone_throughput,
        b_slowdown: if b_throughput > 0.0 {
            b_alone_throughput / b_throughput
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::AccessPattern;

    const MB: f64 = 1.0e6;

    fn sweep() -> SizeSweepConfig {
        // Fig. 4: A on 336 processes, B from 8 to 336, 16 MB per process.
        let pattern = AccessPattern::contiguous(16.0 * MB);
        SizeSweepConfig {
            pfs: PfsConfig::grid5000_rennes(),
            app_a: AppConfig::new(AppId(0), "A", 336, pattern),
            app_b: AppConfig::new(AppId(1), "B", 8, pattern),
            b_sizes: vec![8, 32, 96, 336],
            threads: 0,
        }
    }

    #[test]
    fn small_b_sees_a_large_slowdown() {
        let points = run_size_sweep(&sweep()).unwrap();
        assert_eq!(points.len(), 4);
        let at8 = &points[0];
        assert_eq!(at8.b_procs, 8);
        // The paper reports a ≈ 6× throughput decrease for the 8-core
        // instance; accept anything clearly disproportionate.
        assert!(
            at8.b_slowdown > 3.0,
            "8-core slowdown was only {}",
            at8.b_slowdown
        );
        // A keeps most of its alone throughput against a tiny B.
        assert!(at8.a_throughput > 0.6 * at8.a_alone_throughput);
    }

    #[test]
    fn slowdown_shrinks_as_b_grows() {
        let points = run_size_sweep(&sweep()).unwrap();
        let first = points.first().unwrap().b_slowdown;
        let last = points.last().unwrap().b_slowdown;
        assert!(
            last < first,
            "equal-sized B should be hurt less than a tiny B ({last} vs {first})"
        );
    }

    #[test]
    fn alone_throughputs_scale_with_size_until_server_limit() {
        let points = run_size_sweep(&sweep()).unwrap();
        let t8 = points[0].b_alone_throughput;
        let t336 = points[3].b_alone_throughput;
        assert!(t336 > 3.0 * t8, "t8={t8} t336={t336}");
    }
}
