//! Periodic writers and cache thrashing (Fig. 3).
//!
//! Two IOR instances write periodically (one every 10 s, the other every
//! 7 s) to a PVFS deployment whose storage backend has kernel caching
//! enabled. As long as only one instance writes, its burst is absorbed by
//! the cache and the observed throughput is network-speed; whenever the two
//! bursts coincide the cache saturates and the throughput of both collapses
//! to disk speed. This module runs that scenario and reports the observed
//! per-iteration throughput of the first instance, with and without the
//! interfering second instance.

use calciom::{Error, Scenario};
use mpiio::AppConfig;
use pfs::PfsConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the periodic-writer experiment.
#[derive(Debug, Clone)]
pub struct PeriodicConfig {
    /// The shared file system (should have a cache for the Fig. 3 effect).
    pub pfs: PfsConfig,
    /// The observed application (periodic phases must be configured on it).
    pub app_a: AppConfig,
    /// The interfering application (periodic phases configured), if any.
    pub app_b: Option<AppConfig>,
}

/// Per-iteration observed throughput of the first application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicResult {
    /// Observed throughput of each write iteration of application A, in
    /// bytes/s.
    pub a_throughputs: Vec<f64>,
    /// Observed throughput of each write iteration of application B (empty
    /// if B was not present).
    pub b_throughputs: Vec<f64>,
}

impl PeriodicResult {
    /// Mean throughput of application A over all iterations.
    pub fn a_mean(&self) -> f64 {
        if self.a_throughputs.is_empty() {
            return 0.0;
        }
        self.a_throughputs.iter().sum::<f64>() / self.a_throughputs.len() as f64
    }

    /// Smallest per-iteration throughput of application A (the collapsed
    /// iterations of Fig. 3b).
    pub fn a_min(&self) -> f64 {
        self.a_throughputs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest per-iteration throughput of application A.
    pub fn a_max(&self) -> f64 {
        self.a_throughputs.iter().copied().fold(0.0, f64::max)
    }
}

/// Runs the periodic-writer scenario.
pub fn run_periodic(cfg: &PeriodicConfig) -> Result<PeriodicResult, Error> {
    let report = Scenario::builder(cfg.pfs.clone())
        .app(cfg.app_a.clone())
        .apps(cfg.app_b.clone())
        .build()?
        .run()?;
    let a_throughputs = report
        .app(cfg.app_a.id)
        .map(|a| a.phase_throughputs())
        .unwrap_or_default();
    let b_throughputs = cfg
        .app_b
        .as_ref()
        .and_then(|b| report.app(b.id))
        .map(|b| b.phase_throughputs())
        .unwrap_or_default();
    Ok(PeriodicResult {
        a_throughputs,
        b_throughputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::AccessPattern;
    use pfs::AppId;
    use simcore::SimDuration;

    const MB: f64 = 1.0e6;

    fn writer(id: usize, name: &str, period_secs: f64, iterations: u32) -> AppConfig {
        // The Fig. 3 workload: an IOR instance on 336 cores writing 16 MB
        // per process per iteration. Alone, each ~5.4 GB burst is absorbed
        // by the servers' write-back caches; when two instances' bursts
        // coincide, the caches saturate and both drop to disk speed.
        AppConfig::new(AppId(id), name, 336, AccessPattern::contiguous(16.0 * MB))
            .with_periodic_phases(iterations, SimDuration::from_secs(period_secs))
    }

    #[test]
    fn alone_throughput_is_cache_speed() {
        let cfg = PeriodicConfig {
            pfs: PfsConfig::grid5000_nancy(),
            app_a: writer(0, "A", 10.0, 5),
            app_b: None,
        };
        let result = run_periodic(&cfg).unwrap();
        assert_eq!(result.a_throughputs.len(), 5);
        assert!(result.b_throughputs.is_empty());
        // Every iteration should be absorbed by the cache: throughput close
        // to the client-side limit (336 × 12 MB/s ≈ 4 GB/s), far above the
        // 35 × 55 MB/s ≈ 1.9 GB/s disk-bound level.
        assert!(
            result.a_min() > 2.5e9,
            "min per-iteration throughput {}",
            result.a_min()
        );
    }

    #[test]
    fn interference_collapses_some_iterations() {
        let pfs = PfsConfig::grid5000_nancy();
        let alone = run_periodic(&PeriodicConfig {
            pfs: pfs.clone(),
            app_a: writer(0, "A", 10.0, 8),
            app_b: None,
        })
        .unwrap();
        let interfered = run_periodic(&PeriodicConfig {
            pfs,
            app_a: writer(0, "A", 10.0, 8),
            app_b: Some(writer(1, "B", 7.0, 8)),
        })
        .unwrap();
        // Alone, every iteration is fast; with the interfering writer the
        // worst iteration collapses well below the alone minimum (Fig. 3b).
        assert!(
            interfered.a_min() < 0.6 * alone.a_min(),
            "interfered min {} vs alone min {}",
            interfered.a_min(),
            alone.a_min()
        );
        // ...but not every iteration is hit: the best iterations stay close
        // to the alone throughput.
        assert!(
            interfered.a_max() > 0.7 * alone.a_max(),
            "interfered max {} vs alone max {}",
            interfered.a_max(),
            alone.a_max()
        );
    }
}
