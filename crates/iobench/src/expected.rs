//! Analytic "expected interference" model.
//!
//! Several figures of the paper (Figs. 2, 4, 8, 12) overlay the measured
//! write times with the *expected* ones under the assumption of a
//! proportional sharing of resources between the two applications — the
//! piecewise-linear curve that gives the Δ-graph its name. This module
//! computes that expectation analytically with a two-flow fluid model:
//! application A starts at t = 0 and would need `ta` seconds alone,
//! application B starts at `dt` and would need `tb` seconds alone; while
//! both are active each one progresses at a rate proportional to its
//! weight.

use serde::{Deserialize, Serialize};

/// Expected write times of the two applications under proportional sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpectedTimes {
    /// Expected write time of application A (started at t = 0).
    pub a: f64,
    /// Expected write time of application B (started at t = dt).
    pub b: f64,
}

/// Computes the expected write times of two applications sharing a common
/// bottleneck proportionally to `weight_a` / `weight_b`.
///
/// * `ta_alone`, `tb_alone` — stand-alone write times;
/// * `dt` — start of B relative to A (may be negative: B starts first);
/// * `weight_a`, `weight_b` — sharing weights (e.g. process counts).
///
/// Both applications are assumed to be limited by the same shared resource
/// for the whole duration (the worst case the paper plots as "Expected").
pub fn expected_times(
    ta_alone: f64,
    tb_alone: f64,
    dt: f64,
    weight_a: f64,
    weight_b: f64,
) -> ExpectedTimes {
    // Symmetric case: if B starts first, swap roles and swap back.
    if dt < 0.0 {
        let sw = expected_times(tb_alone, ta_alone, -dt, weight_b, weight_a);
        return ExpectedTimes { a: sw.b, b: sw.a };
    }
    let wa = weight_a.max(1e-12);
    let wb = weight_b.max(1e-12);
    let share_a = wa / (wa + wb);
    let share_b = wb / (wa + wb);

    // Work is measured in "alone seconds": A has ta_alone units, B tb_alone.
    // Phase 1: A alone during [0, dt) (or until it finishes).
    if ta_alone <= dt {
        // No overlap at all.
        return ExpectedTimes {
            a: ta_alone,
            b: tb_alone,
        };
    }
    let a_left_at_dt = ta_alone - dt;

    // Phase 2: both active from dt, rates share_a / share_b.
    let a_finish_if_both = a_left_at_dt / share_a;
    let b_finish_if_both = tb_alone / share_b;
    if a_finish_if_both <= b_finish_if_both {
        // A finishes first at dt + a_finish_if_both; B then completes alone.
        let overlap = a_finish_if_both;
        let b_done_during_overlap = overlap * share_b;
        ExpectedTimes {
            a: dt + overlap,
            b: overlap + (tb_alone - b_done_during_overlap),
        }
    } else {
        // B finishes first; A then completes alone.
        let overlap = b_finish_if_both;
        let a_done_during_overlap = overlap * share_a;
        ExpectedTimes {
            a: dt + overlap + (a_left_at_dt - a_done_during_overlap),
            b: overlap,
        }
    }
}

/// Expected interference factors (`T / T_alone`) under proportional sharing.
pub fn expected_factors(
    ta_alone: f64,
    tb_alone: f64,
    dt: f64,
    weight_a: f64,
    weight_b: f64,
) -> (f64, f64) {
    let e = expected_times(ta_alone, tb_alone, dt, weight_a, weight_b);
    (
        if ta_alone > 0.0 { e.a / ta_alone } else { 1.0 },
        if tb_alone > 0.0 { e.b / tb_alone } else { 1.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn simultaneous_equal_apps_double_their_time() {
        let e = expected_times(10.0, 10.0, 0.0, 1.0, 1.0);
        assert!(close(e.a, 20.0));
        assert!(close(e.b, 20.0));
    }

    #[test]
    fn no_overlap_when_b_starts_after_a_finishes() {
        let e = expected_times(10.0, 10.0, 12.0, 1.0, 1.0);
        assert!(close(e.a, 10.0));
        assert!(close(e.b, 10.0));
    }

    #[test]
    fn partial_overlap_is_piecewise_linear() {
        // A: 10 s alone, B: 10 s alone, B starts at 4 s.
        // A has 6 s of work left; both at half speed: A finishes 12 s later
        // (at t=16), having let B do 6 s of work; B then needs 4 more →
        // B's time = 12 + 4 = 16.
        let e = expected_times(10.0, 10.0, 4.0, 1.0, 1.0);
        assert!(close(e.a, 16.0));
        assert!(close(e.b, 16.0));
    }

    #[test]
    fn first_arriver_is_favored() {
        // The earlier application always has an expected time no larger
        // than the later one's (for equal sizes), matching Fig. 2.
        for dt in [0.5_f64, 2.0, 5.0, 9.0] {
            let e = expected_times(10.0, 10.0, dt, 1.0, 1.0);
            assert!(e.a <= e.b + 1e-9, "dt={dt}: a={} b={}", e.a, e.b);
        }
    }

    #[test]
    fn negative_dt_mirrors_the_graph() {
        let pos = expected_times(10.0, 10.0, 3.0, 1.0, 1.0);
        let neg = expected_times(10.0, 10.0, -3.0, 1.0, 1.0);
        assert!(close(pos.a, neg.b));
        assert!(close(pos.b, neg.a));
    }

    #[test]
    fn weights_protect_the_heavier_application() {
        // A has 9× the weight of B: A barely notices B, while B is crowded
        // out for as long as A is active (10/0.9 ≈ 11.1 s) and then needs
        // the rest of its own work → ≈ 20 s instead of 10.
        let e = expected_times(10.0, 10.0, 0.0, 9.0, 1.0);
        assert!(e.a < 12.0, "a = {}", e.a);
        assert!(e.b > 18.0, "b = {}", e.b);
    }

    #[test]
    fn small_b_finishing_first_leaves_a_to_complete_alone() {
        // B writes very little: A's expected time ≈ its alone time + B's
        // contribution during the overlap.
        let e = expected_times(20.0, 1.0, 5.0, 1.0, 1.0);
        // Overlap lasts 2 s (B needs 1 s of work at half speed), during
        // which A only progresses 1 s → A total = 20 + 1 = 21.
        assert!(close(e.b, 2.0));
        assert!(close(e.a, 21.0));
    }

    #[test]
    fn dt_larger_than_either_access_means_no_interaction() {
        // Degenerate sweeps reach dt values beyond both stand-alone times:
        // the accesses never overlap and both keep their alone time, in
        // either arrival order.
        for (ta, tb) in [(10.0, 3.0), (3.0, 10.0), (7.0, 7.0)] {
            for dt in [10.0 + 1e-9, 15.0, 1e6] {
                let e = expected_times(ta, tb, dt, 336.0, 8.0);
                assert!(close(e.a, ta), "ta={ta} tb={tb} dt={dt}: a={}", e.a);
                assert!(close(e.b, tb), "ta={ta} tb={tb} dt={dt}: b={}", e.b);
                // Mirror: B first by more than either access.
                let m = expected_times(ta, tb, -dt, 336.0, 8.0);
                assert!(close(m.a, ta) && close(m.b, tb));
            }
        }
    }

    #[test]
    fn dt_exactly_equal_to_first_access_is_the_boundary() {
        // B arrives at the exact instant A finishes: zero overlap, both
        // keep their alone times (the piecewise-linear curve's knee).
        let e = expected_times(10.0, 4.0, 10.0, 1.0, 1.0);
        assert!(close(e.a, 10.0));
        assert!(close(e.b, 4.0));
    }

    #[test]
    fn equal_weights_are_an_exact_half_split() {
        // With equal weights the overlap is a strict 50/50 split whatever
        // the absolute weight value: scaling both weights changes nothing.
        let base = expected_times(10.0, 10.0, 4.0, 1.0, 1.0);
        for w in [0.5, 8.0, 336.0, 2048.0] {
            let e = expected_times(10.0, 10.0, 4.0, w, w);
            assert!(close(e.a, base.a), "w={w}: a={}", e.a);
            assert!(close(e.b, base.b), "w={w}: b={}", e.b);
        }
        // And the simultaneous equal case is exactly doubled time.
        let e = expected_times(10.0, 10.0, 0.0, 2048.0, 2048.0);
        assert!(close(e.a, 20.0) && close(e.b, 20.0));
    }

    #[test]
    fn zero_length_accesses_are_degenerate_but_stable() {
        // A has no work: B is unaffected; expected times stay finite and
        // non-negative.
        let e = expected_times(0.0, 10.0, 0.0, 1.0, 1.0);
        assert!(close(e.a, 0.0));
        assert!(close(e.b, 10.0));
        // Both empty.
        let e = expected_times(0.0, 0.0, 2.0, 1.0, 1.0);
        assert!(close(e.a, 0.0) && close(e.b, 0.0));
    }

    #[test]
    fn factors_are_relative_to_alone_times() {
        let (fa, fb) = expected_factors(10.0, 10.0, 0.0, 1.0, 1.0);
        assert!(close(fa, 2.0));
        assert!(close(fb, 2.0));
        let (fa, fb) = expected_factors(0.0, 10.0, 0.0, 1.0, 1.0);
        assert_eq!(fa, 1.0);
        assert!(fb >= 1.0);
    }
}
