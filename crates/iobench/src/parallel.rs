//! Small parallel-map helper for experiment sweeps.
//!
//! A Δ-graph is a sweep of dozens of independent simulations (one per `dt`
//! value per strategy); running them on all available cores keeps the full
//! figure-reproduction suite fast. The helper preserves input order and
//! propagates panics.

use std::thread;

/// Applies `f` to every item of `items`, distributing the work over up to
/// `max_threads` worker threads (or the number of available cores if 0),
/// and returns the results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        max_threads
    }
    .min(n)
    .max(1);

    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(workers);

    thread::scope(|scope| {
        let mut remaining_items: &[T] = &items;
        let mut remaining_results: &mut [Option<R>] = &mut results;
        let f = &f;
        while !remaining_items.is_empty() {
            let take = chunk.min(remaining_items.len());
            let (item_chunk, rest_items) = remaining_items.split_at(take);
            let (result_chunk, rest_results) = remaining_results.split_at_mut(take);
            remaining_items = rest_items;
            remaining_results = rest_results;
            scope.spawn(move || {
                for (slot, item) in result_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let input: Vec<u64> = (0..257).collect();
        let out = parallel_map(input.clone(), 0, |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_with_one_thread_and_empty_input() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(vec![10, 20], 16, |x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn panics_propagate() {
        parallel_map(vec![1, 2, 3], 2, |x| {
            if *x == 2 {
                panic!("boom");
            }
            *x
        });
    }
}
