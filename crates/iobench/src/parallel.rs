//! Parallel execution of experiment sweeps.
//!
//! A Δ-graph is a sweep of dozens of independent simulations (one per `dt`
//! value per strategy); running them on all available cores keeps the full
//! figure-reproduction suite fast. Two layers are provided:
//!
//! * [`parallel_map`] / [`parallel_map_owned`] — order-preserving,
//!   panic-propagating scoped-thread maps over a work list;
//! * [`run_scenarios`] — the sweep primitive: builds one
//!   `Session<SharedTransport>` per [`Scenario`] on the calling thread,
//!   ships the fully-built sessions to worker threads (possible because
//!   the shared transport makes sessions `Send`), and executes them
//!   concurrently. The simulation is deterministic, so the reports are
//!   bit-identical to a sequential run.

use crate::baseline::BaselineCache;
use calciom::{
    ClusterStats, ClusterTransport, Error, Scenario, Session, SessionReport, SharedTransport,
    Trace, TraceRecorder,
};
use pfs::AppId;
use std::collections::BTreeMap;
use std::thread;
use std::time::{Duration, Instant};

/// Applies `f` to every item of `items`, distributing the work over up to
/// `max_threads` worker threads (or the number of available cores if 0),
/// and returns the results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(max_threads, n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(workers);

    thread::scope(|scope| {
        let mut remaining_items: &[T] = &items;
        let mut remaining_results: &mut [Option<R>] = &mut results;
        let f = &f;
        while !remaining_items.is_empty() {
            let take = chunk.min(remaining_items.len());
            let (item_chunk, rest_items) = remaining_items.split_at(take);
            let (result_chunk, rest_results) = remaining_results.split_at_mut(take);
            remaining_items = rest_items;
            remaining_results = rest_results;
            scope.spawn(move || {
                for (slot, item) in result_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        // simlint: allow(R4, scope joins every worker and each worker fills its whole chunk)
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// By-value variant of [`parallel_map`]: each item is *moved* into the
/// worker thread that processes it. This is what lets fully-built
/// `Session<SharedTransport>` values (which own their event queues and
/// file-system state) execute off-thread.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(max_threads, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(workers);

    thread::scope(|scope| {
        let mut remaining_items: &mut [Option<T>] = &mut items;
        let mut remaining_results: &mut [Option<R>] = &mut results;
        let f = &f;
        while !remaining_items.is_empty() {
            let take = chunk.min(remaining_items.len());
            let (item_chunk, rest_items) = remaining_items.split_at_mut(take);
            let (result_chunk, rest_results) = remaining_results.split_at_mut(take);
            remaining_items = rest_items;
            remaining_results = rest_results;
            scope.spawn(move || {
                for (slot, item) in result_chunk.iter_mut().zip(item_chunk) {
                    // simlint: allow(R4, disjoint split_at_mut chunks visit each item exactly once)
                    *slot = Some(f(item.take().expect("each item visited once")));
                }
            });
        }
    });

    results
        .into_iter()
        // simlint: allow(R4, scope joins every worker and each worker fills its whole chunk)
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Runs a batch of independent scenarios concurrently and returns their
/// reports in input order.
///
/// Every session is built on the calling thread over the `Send + Sync`
/// [`SharedTransport`], then moved to a worker thread for execution
/// (`max_threads` as in [`parallel_map`]; 0 means all cores). Building
/// eagerly means a configuration error in *any* scenario is reported
/// before a single simulation starts.
pub fn run_scenarios(
    scenarios: &[Scenario],
    max_threads: usize,
) -> Result<Vec<SessionReport>, Error> {
    let sessions = scenarios
        .iter()
        .map(Session::<SharedTransport>::with_transport)
        .collect::<Result<Vec<_>, Error>>()?;
    parallel_map_owned(sessions, max_threads, Session::execute)
        .into_iter()
        .collect()
}

/// [`run_scenarios`] with observation: each session carries its own
/// [`TraceRecorder`] to its worker thread and returns the report *and* the
/// recorded [`Trace`]. Traces are deterministic like the reports — the
/// recorded stream is identical to what a sequential, locally-transported
/// run would produce.
pub fn run_scenarios_traced(
    scenarios: &[Scenario],
    max_threads: usize,
) -> Result<Vec<(SessionReport, Trace)>, Error> {
    let jobs = scenarios
        .iter()
        .map(|s| {
            Ok((
                Session::<SharedTransport>::with_transport(s)?,
                TraceRecorder::for_scenario(s),
            ))
        })
        .collect::<Result<Vec<_>, Error>>()?;
    parallel_map_owned(jobs, max_threads, |(session, mut recorder)| {
        session
            .execute_with(&mut recorder)
            .map(|report| (report, recorder.into_trace()))
    })
    .into_iter()
    .collect()
}

/// The outcome of one scenario of a sharded sweep: the report, the
/// `T_alone` baseline of every application (served through the sweep's
/// [`BaselineCache`]), and the wall-clock the session's execution took on
/// its worker thread.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The session report.
    pub report: SessionReport,
    /// Stand-alone first-phase I/O time per application — the baselines
    /// machine-wide metrics need ([`SessionReport::metric`]).
    pub alone: BTreeMap<AppId, f64>,
    /// Host wall-clock spent executing the session (excludes building and
    /// baseline lookups) — the scale experiments' throughput signal.
    pub wall: Duration,
    /// Hierarchical-arbitration message accounting, for scenarios that
    /// ran over a [`ClusterTransport`] (`scenario.cluster` set); `None`
    /// for flat runs.
    pub cluster: Option<ClusterStats>,
}

/// A fully-built session ready to move to a worker thread, dispatched on
/// the scenario's coordination topology: flat scenarios run over the
/// [`SharedTransport`], cluster scenarios (`scenario.cluster` set) over a
/// [`ClusterTransport`] — same sweep machinery, same baselines, either
/// way. The cluster variant keeps a clone of the transport handle
/// (transports are shared handles) so the arbiter tree's message
/// accounting survives the session's consumption by `execute`.
enum SessionJob {
    Flat(Session<SharedTransport>),
    Cluster(Session<ClusterTransport>, ClusterTransport),
}

impl SessionJob {
    fn build(scenario: &Scenario) -> Result<SessionJob, Error> {
        if scenario.cluster.is_some() {
            let session = Session::<ClusterTransport>::with_transport(scenario)?;
            let handle = session.transport().clone();
            Ok(SessionJob::Cluster(session, handle))
        } else {
            Ok(SessionJob::Flat(Session::with_transport(scenario)?))
        }
    }

    fn execute(self) -> Result<(SessionReport, Option<ClusterStats>), Error> {
        match self {
            SessionJob::Flat(session) => Ok((session.execute()?, None)),
            SessionJob::Cluster(session, handle) => {
                let report = session.execute()?;
                Ok((report, Some(handle.stats())))
            }
        }
    }
}

/// [`run_scenarios`] for machine-scale sweeps: the scenario list is split
/// into `shards` contiguous batches, each batch executes on its own worker
/// thread (`std::thread::scope`), and every run also resolves its
/// applications' `T_alone` baselines through `cache`.
///
/// Passing [`BaselineCache::global`] (or any one cache) shares baselines
/// across all shards — concurrent lookups of the same `(app, pfs)` pair
/// are safe and keep the hit/miss counters consistent (see
/// [`BaselineCache`]'s concurrency contract). Passing a fresh cache per
/// call isolates sweeps instead. Reports are deterministic either way;
/// only `wall` varies between runs.
pub fn run_scenarios_sharded(
    scenarios: &[Scenario],
    shards: usize,
    cache: &BaselineCache,
) -> Result<Vec<ShardedRun>, Error> {
    // Build every session up front so a configuration error in any
    // scenario surfaces before a single simulation starts.
    let jobs = scenarios
        .iter()
        .map(|scenario| Ok((SessionJob::build(scenario)?, scenario)))
        .collect::<Result<Vec<_>, Error>>()?;
    parallel_map_owned(jobs, shards, |(job, scenario)| {
        execute_sharded_job(job, scenario, cache)
    })
    .into_iter()
    .collect()
}

/// [`run_scenarios_sharded`] with incremental delivery: results are
/// handed to `sink` **in input order**, each as soon as it (and every
/// earlier one) has finished, instead of materializing the full result
/// vector. This is what lets `calciom-serve` stream a machine-scale
/// `/v1/batch` response while later shards are still simulating.
///
/// The contract mirrors the materialized variant: every session is built
/// up front, so a configuration error in *any* scenario returns `Err`
/// before `sink` sees a single result. A runtime [`Error`] aborts the
/// stream — `sink` has then been called for some prefix of the inputs
/// (possibly empty) and the error is returned. Each delivered
/// [`ShardedRun`] is bit-identical to the one [`run_scenarios_sharded`]
/// would have produced at the same index.
pub fn run_scenarios_sharded_streamed(
    scenarios: &[Scenario],
    shards: usize,
    cache: &BaselineCache,
    mut sink: impl FnMut(ShardedRun),
) -> Result<(), Error> {
    let jobs = scenarios
        .iter()
        .map(|scenario| Ok((SessionJob::build(scenario)?, scenario)))
        .collect::<Result<Vec<_>, Error>>()?;
    let n = jobs.len();
    if n == 0 {
        return Ok(());
    }
    let workers = worker_count(shards, n);
    let chunk = n.div_ceil(workers);

    // Contiguous chunks, exactly like parallel_map_owned, but each worker
    // reports through a channel the moment a job finishes; the calling
    // thread reorders into input order and feeds the sink.
    type IndexedJob<'a> = (usize, (SessionJob, &'a Scenario));
    let mut chunks: Vec<Vec<IndexedJob<'_>>> = Vec::new();
    for (i, job) in jobs.into_iter().enumerate() {
        if i % chunk == 0 {
            chunks.push(Vec::with_capacity(chunk));
        }
        if let Some(last) = chunks.last_mut() {
            last.push((i, job));
        }
    }

    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<ShardedRun, Error>)>();
    thread::scope(|scope| {
        for batch in chunks {
            let tx = tx.clone();
            scope.spawn(move || {
                for (index, (job, scenario)) in batch {
                    let result = execute_sharded_job(job, scenario, cache);
                    // A send failure means the receiver gave up (an
                    // earlier shard errored); stop simulating.
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        let mut done: BTreeMap<usize, ShardedRun> = BTreeMap::new();
        let mut next = 0usize;
        for (index, result) in rx {
            match result {
                Ok(run) => {
                    done.insert(index, run);
                }
                Err(e) => return Err(e),
            }
            while let Some(run) = done.remove(&next) {
                sink(run);
                next += 1;
            }
        }
        Ok(())
    })
}

/// Executes one scenario of a sharded sweep and resolves its baselines —
/// the shared body of [`run_scenarios_sharded`] and
/// [`run_scenarios_sharded_streamed`].
fn execute_sharded_job(
    job: SessionJob,
    scenario: &Scenario,
    cache: &BaselineCache,
) -> Result<ShardedRun, Error> {
    let started = Instant::now();
    let (report, cluster) = job.execute()?;
    let wall = started.elapsed();
    let mut alone = BTreeMap::new();
    for app in &scenario.apps {
        alone.insert(app.id, cache.alone_time(app, &scenario.pfs)?);
    }
    Ok(ShardedRun {
        report,
        alone,
        wall,
        cluster,
    })
}

fn worker_count(max_threads: usize, items: usize) -> usize {
    let workers = if max_threads == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        max_threads
    };
    workers.min(items).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calciom::Strategy;
    use mpiio::{AccessPattern, AppConfig};
    use pfs::{AppId, PfsConfig};
    use std::sync::Mutex;

    #[test]
    fn preserves_order_and_values() {
        let input: Vec<u64> = (0..257).collect();
        let out = parallel_map(input.clone(), 0, |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_with_one_thread_and_empty_input() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(vec![10, 20], 16, |x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn panics_propagate() {
        parallel_map(vec![1, 2, 3], 2, |x| {
            if *x == 2 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    fn owned_map_moves_non_clone_values_and_preserves_order() {
        struct NotClone(u64);
        let input: Vec<NotClone> = (0..100).map(NotClone).collect();
        let out = parallel_map_owned(input, 4, |x| x.0 * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        let empty: Vec<u8> = parallel_map_owned(Vec::<NotClone>::new(), 4, |x| x.0 as u8);
        assert!(empty.is_empty());
    }

    fn scenario_grid() -> Vec<Scenario> {
        let pattern = AccessPattern::contiguous(8.0e6);
        [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ]
        .into_iter()
        .map(|strategy| {
            Scenario::builder(PfsConfig::grid5000_rennes())
                .app(AppConfig::new(AppId(0), "A", 336, pattern))
                .app(AppConfig::new(AppId(1), "B", 48, pattern).starting_at_secs(1.0))
                .strategy(strategy)
                .build()
                .unwrap()
        })
        .collect()
    }

    #[test]
    fn parallel_scenario_reports_are_bit_identical_to_sequential() {
        let scenarios = scenario_grid();
        let sequential: Vec<_> = scenarios.iter().map(|s| s.run().unwrap()).collect();
        let parallel = run_scenarios(&scenarios, 4).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn run_scenarios_uses_at_least_two_threads() {
        // Record which threads execute the sessions: with 4 scenarios and
        // 4 requested workers, at least two distinct worker threads must
        // participate.
        let scenarios: Vec<Scenario> = scenario_grid().into_iter().chain(scenario_grid()).collect();
        // A Vec of distinct ids, not a hash set: `ThreadId` is not `Ord`,
        // and a linear scan over a handful of workers is plenty.
        let seen: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let sessions = scenarios
            .iter()
            .map(Session::<SharedTransport>::with_transport)
            .collect::<Result<Vec<_>, Error>>()
            .unwrap();
        let reports: Result<Vec<_>, Error> = parallel_map_owned(sessions, 4, |session| {
            let id = std::thread::current().id();
            let mut ids = seen.lock().unwrap();
            if !ids.contains(&id) {
                ids.push(id);
            }
            drop(ids);
            session.execute()
        })
        .into_iter()
        .collect();
        assert_eq!(reports.unwrap().len(), scenarios.len());
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected the sweep to fan out over at least two threads"
        );
    }

    #[test]
    fn run_scenarios_surfaces_configuration_errors_before_running() {
        let mut scenarios = scenario_grid();
        scenarios[2].apps.clear();
        let err = run_scenarios(&scenarios, 2).unwrap_err();
        assert_eq!(err, Error::Config(calciom::ConfigError::NoApplications));
    }

    #[test]
    fn sharded_sweep_matches_sequential_and_fills_baselines() {
        let scenarios = scenario_grid();
        let cache = BaselineCache::new();
        let runs = run_scenarios_sharded(&scenarios, 2, &cache).unwrap();
        assert_eq!(runs.len(), scenarios.len());

        for (scenario, run) in scenarios.iter().zip(&runs) {
            assert_eq!(
                run.report,
                scenario.run().unwrap(),
                "reports stay deterministic"
            );
            // Every application got a baseline, served through the cache.
            assert_eq!(run.alone.len(), scenario.apps.len());
            for app in &scenario.apps {
                let expected = Session::run_alone(app.clone(), scenario.pfs.clone()).unwrap();
                assert_eq!(run.alone[&app.id], expected);
            }
        }
        // The grid reuses two applications across four strategies: the
        // shared cache collapses 8 baseline requests onto 2 simulations
        // (give or take races between the two shards on first touch).
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert!(cache.misses() >= 2 && cache.misses() <= 4);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharded_sweep_dispatches_cluster_scenarios_to_the_arbiter_tree() {
        use calciom::{ClusterSpec, MachineSpec};
        use simcore::SimDuration;

        // A 2-machine, 1-slot tree alongside flat scenarios in one sweep:
        // the flat runs carry no cluster stats, the tree run reports its
        // root traffic, and the tree run matches `Scenario::run`'s
        // dispatch bit for bit.
        let mut scenarios = scenario_grid();
        let mut clustered = scenarios[1].clone();
        clustered.cluster = Some(ClusterSpec::new(
            1,
            vec![
                MachineSpec {
                    latency: SimDuration::from_millis(1.0),
                    apps: vec![AppId(0)],
                },
                MachineSpec {
                    latency: SimDuration::from_millis(1.0),
                    apps: vec![AppId(1)],
                },
            ],
        ));
        scenarios.push(clustered.clone());

        let cache = BaselineCache::new();
        let runs = run_scenarios_sharded(&scenarios, 2, &cache).unwrap();
        assert!(runs[..4].iter().all(|r| r.cluster.is_none()));
        let tree = runs[4].cluster.as_ref().expect("cluster stats recorded");
        assert_eq!(tree.machines, 2);
        assert!(tree.escalations > 0, "two contending machines escalate");
        assert_eq!(runs[4].report, clustered.run().unwrap());
        assert_eq!(runs[4].alone.len(), 2);
    }

    #[test]
    fn sharded_sweep_surfaces_configuration_errors_before_running() {
        let mut scenarios = scenario_grid();
        scenarios[1].apps.clear();
        let cache = BaselineCache::new();
        let err = run_scenarios_sharded(&scenarios, 2, &cache).unwrap_err();
        assert_eq!(err, Error::Config(calciom::ConfigError::NoApplications));
        assert!(cache.is_empty(), "nothing runs when building fails");
    }
}
