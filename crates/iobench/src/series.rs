//! Result series and plain-text table rendering.
//!
//! The bench binaries print, for every figure of the paper, the same series
//! the figure plots (one row per x value, one column per curve). Keeping
//! the rendering here lets every binary produce uniform, diff-friendly
//! output that `EXPERIMENTS.md` can quote directly.

use serde::{Deserialize, Serialize};

/// A named curve: `(x, y)` points in plotting order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. "Interfering", "FCFS", "App A").
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Maximum y value.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Minimum y value.
    pub fn min_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.min(y))))
    }

    /// Mean y value.
    pub fn mean_y(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64)
    }
}

/// A figure-like collection of curves sharing the same x axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Title printed above the table (e.g. "Figure 7(a) — 2×2048 cores").
    pub title: String,
    /// Label of the x axis (e.g. "dt (sec)").
    pub x_label: String,
    /// Label of the y axis (e.g. "Write time (sec)").
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Finds a curve by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All x values appearing in any curve, sorted and deduplicated.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders the figure as an aligned plain-text table, one row per x
    /// value and one column per curve.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("# y: {}\n", self.y_label));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let xs = self.x_values();
        let mut rows: Vec<Vec<String>> = vec![header];
        for x in xs {
            let mut row = vec![format!("{x:.2}")];
            for s in &self.series {
                row.push(match s.y_at(x) {
                    Some(y) => format!("{y:.3}"),
                    None => "-".to_string(),
                });
            }
            rows.push(row);
        }
        let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for row in rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureData {
        let mut fig = FigureData::new("Figure X", "dt (sec)", "write time (sec)");
        let mut a = Series::new("Interfering");
        a.push(-5.0, 10.0);
        a.push(0.0, 20.0);
        a.push(5.0, 15.0);
        let mut b = Series::new("FCFS");
        b.push(0.0, 12.0);
        b.push(5.0, 11.0);
        fig.add_series(a);
        fig.add_series(b);
        fig
    }

    #[test]
    fn series_statistics() {
        let fig = figure();
        let s = fig.series("Interfering").unwrap();
        assert_eq!(s.max_y(), Some(20.0));
        assert_eq!(s.min_y(), Some(10.0));
        assert_eq!(s.mean_y(), Some(15.0));
        assert_eq!(s.y_at(0.0), Some(20.0));
        assert_eq!(s.y_at(99.0), None);
        assert!(Series::new("empty").mean_y().is_none());
    }

    #[test]
    fn x_values_are_merged_and_sorted() {
        let fig = figure();
        assert_eq!(fig.x_values(), vec![-5.0, 0.0, 5.0]);
    }

    #[test]
    fn table_contains_all_labels_and_missing_markers() {
        let fig = figure();
        let table = fig.to_table();
        assert!(table.contains("Figure X"));
        assert!(table.contains("Interfering"));
        assert!(table.contains("FCFS"));
        // FCFS has no point at dt = -5 → rendered as '-'.
        let row = table
            .lines()
            .find(|l| l.trim_start().starts_with("-5.00"))
            .unwrap();
        assert!(row.trim_end().ends_with('-'));
    }

    #[test]
    fn unknown_series_lookup_returns_none() {
        assert!(figure().series("nope").is_none());
    }
}
