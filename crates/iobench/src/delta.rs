//! Δ-graph sweeps.
//!
//! The paper's main experimental device (Section II-C): application A starts
//! its I/O phase at the reference date t = 0, application B starts at
//! t = dt, and the observed write time (or interference factor) of each is
//! plotted against dt. Negative dt means B starts first; the Δ-graph of
//! (A, B) is then the mirror of (B, A). A sweep runs one simulation per dt
//! value (in parallel) plus the two stand-alone baselines.

use crate::baseline::alone_time_cached;
use crate::expected::expected_times;
use crate::parallel::run_scenarios;
use calciom::{
    cpu_seconds_wasted_per_core, AppObservation, DynamicPolicy, EfficiencyMetric, Error,
    Granularity, Scenario, SessionError, SessionReport, Strategy,
};
use mpiio::AppConfig;
use pfs::PfsConfig;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Configuration of a Δ-graph sweep for one strategy.
#[derive(Debug, Clone)]
pub struct DeltaSweepConfig {
    /// The shared file system.
    pub pfs: PfsConfig,
    /// Application A (its configured start time is ignored; it starts at
    /// the reference date).
    pub app_a: AppConfig,
    /// Application B (start time ignored; it starts at `dt`).
    pub app_b: AppConfig,
    /// The dt values to sweep, in seconds (may be negative).
    pub dts: Vec<f64>,
    /// Scheduling strategy in force.
    pub strategy: Strategy,
    /// Coordination granularity.
    pub granularity: Granularity,
    /// Dynamic policy (used when `strategy` is `Dynamic`).
    pub policy: DynamicPolicy,
    /// Worker threads for the sweep (0 = all cores).
    pub threads: usize,
}

impl DeltaSweepConfig {
    /// Creates a sweep over the given dt values with the interfering
    /// (uncoordinated) strategy.
    pub fn new(pfs: PfsConfig, app_a: AppConfig, app_b: AppConfig, dts: Vec<f64>) -> Self {
        DeltaSweepConfig {
            pfs,
            app_a,
            app_b,
            dts,
            strategy: Strategy::Interfere,
            granularity: Granularity::Round,
            policy: DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
            threads: 0,
        }
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the dynamic policy.
    pub fn with_policy(mut self, policy: DynamicPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// One point of a Δ-graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaPoint {
    /// Start offset of B relative to A, in seconds.
    pub dt: f64,
    /// Observed write time of A.
    pub a_io_time: f64,
    /// Observed write time of B.
    pub b_io_time: f64,
    /// Interference factor of A (`T / T_alone`).
    pub a_factor: f64,
    /// Interference factor of B.
    pub b_factor: f64,
    /// Expected write time of A under proportional sharing.
    pub a_expected: f64,
    /// Expected write time of B under proportional sharing.
    pub b_expected: f64,
    /// CPU·seconds wasted in I/O per core over the pair (Fig. 11 metric).
    pub cpu_seconds_per_core: f64,
    /// Time A spent in communication (collective-buffering shuffle) steps.
    pub a_comm_seconds: f64,
    /// Time A spent with a write in flight.
    pub a_write_seconds: f64,
}

/// The result of a Δ-graph sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSweepResult {
    /// Strategy that was swept.
    pub strategy: Strategy,
    /// Stand-alone write time of A.
    pub a_alone: f64,
    /// Stand-alone write time of B.
    pub b_alone: f64,
    /// One point per dt, in the order the dts were given.
    pub points: Vec<DeltaPoint>,
}

impl DeltaSweepResult {
    /// Maximum interference factor observed for B across the sweep (the
    /// headline number of Fig. 6b is ≈ 14 for a 24-core application).
    pub fn max_b_factor(&self) -> f64 {
        self.points.iter().map(|p| p.b_factor).fold(1.0, f64::max)
    }

    /// Maximum interference factor observed for A.
    pub fn max_a_factor(&self) -> f64 {
        self.points.iter().map(|p| p.a_factor).fold(1.0, f64::max)
    }

    /// The point at the given dt, if it was part of the sweep.
    pub fn at(&self, dt: f64) -> Option<&DeltaPoint> {
        self.points.iter().find(|p| (p.dt - dt).abs() < 1e-9)
    }
}

/// Builds an inclusive range of dt values with the given step.
pub fn dt_range(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "dt step must be positive");
    let mut out = Vec::new();
    let mut x = lo;
    while x <= hi + 1e-9 {
        out.push((x * 1e6).round() / 1e6);
        x += step;
    }
    out
}

/// Runs a Δ-graph sweep: one simulation per dt plus the two stand-alone
/// baselines. The per-dt sessions are fanned out across worker threads
/// over the shared transport (see [`run_scenarios`]); the simulation is
/// deterministic, so the result is identical to a sequential sweep. The
/// baselines come from the process-wide
/// [`BaselineCache`](crate::BaselineCache), so repeated sweeps over the
/// same application pair (one per strategy, typically) simulate each
/// baseline only once.
pub fn run_delta_sweep(cfg: &DeltaSweepConfig) -> Result<DeltaSweepResult, Error> {
    let a_alone = alone_time_cached(&cfg.app_a, &cfg.pfs)?;
    let b_alone = alone_time_cached(&cfg.app_b, &cfg.pfs)?;

    let scenarios = cfg
        .dts
        .iter()
        .map(|&dt| scenario_at(cfg, dt))
        .collect::<Result<Vec<_>, Error>>()?;
    let reports = run_scenarios(&scenarios, cfg.threads)?;

    let points = cfg
        .dts
        .iter()
        .zip(&reports)
        .map(|(&dt, report)| delta_point(cfg, dt, a_alone, b_alone, report))
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(DeltaSweepResult {
        strategy: cfg.strategy,
        a_alone,
        b_alone,
        points,
    })
}

/// Builds the scenario for one dt value. A starts at the reference date, B
/// at dt; negative dt shifts A instead so that simulated time stays
/// non-negative.
fn scenario_at(cfg: &DeltaSweepConfig, dt: f64) -> Result<Scenario, Error> {
    let (a_start, b_start) = if dt >= 0.0 { (0.0, dt) } else { (-dt, 0.0) };
    let mut app_a = cfg.app_a.clone();
    let mut app_b = cfg.app_b.clone();
    app_a.start = SimTime::from_secs(a_start);
    app_b.start = SimTime::from_secs(b_start);
    Ok(Scenario::builder(cfg.pfs.clone())
        .apps([app_a, app_b])
        .strategy(cfg.strategy)
        .granularity(cfg.granularity)
        .policy(cfg.policy)
        .build()?)
}

fn delta_point(
    cfg: &DeltaSweepConfig,
    dt: f64,
    a_alone: f64,
    b_alone: f64,
    report: &SessionReport,
) -> Result<DeltaPoint, Error> {
    let a = report
        .app(cfg.app_a.id)
        .ok_or(SessionError::MissingApp(cfg.app_a.id))?;
    let b = report
        .app(cfg.app_b.id)
        .ok_or(SessionError::MissingApp(cfg.app_b.id))?;
    let a_phase = a.first_phase();
    let b_phase = b.first_phase();
    let a_io_time = a_phase.io_time();
    let b_io_time = b_phase.io_time();

    let expected = expected_times(
        a_alone,
        b_alone,
        dt,
        cfg.app_a.procs as f64,
        cfg.app_b.procs as f64,
    );
    let observations = [
        AppObservation {
            app: cfg.app_a.id,
            procs: cfg.app_a.procs,
            io_seconds: a_io_time,
            alone_seconds: a_alone,
        },
        AppObservation {
            app: cfg.app_b.id,
            procs: cfg.app_b.procs,
            io_seconds: b_io_time,
            alone_seconds: b_alone,
        },
    ];

    Ok(DeltaPoint {
        dt,
        a_io_time,
        b_io_time,
        a_factor: calciom::interference_factor(a_io_time, a_alone),
        b_factor: calciom::interference_factor(b_io_time, b_alone),
        a_expected: expected.a,
        b_expected: expected.b,
        cpu_seconds_per_core: cpu_seconds_wasted_per_core(&observations),
        a_comm_seconds: a_phase.comm_seconds,
        a_write_seconds: a_phase.write_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::AccessPattern;
    use pfs::AppId;

    const MB: f64 = 1.0e6;

    fn sweep_cfg(strategy: Strategy) -> DeltaSweepConfig {
        let a = AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0 * MB));
        let b = AppConfig::new(AppId(1), "B", 336, AccessPattern::contiguous(16.0 * MB));
        DeltaSweepConfig::new(
            PfsConfig::grid5000_rennes(),
            a,
            b,
            vec![-10.0, -5.0, 0.0, 5.0, 10.0],
        )
        .with_strategy(strategy)
    }

    #[test]
    fn dt_range_is_inclusive() {
        assert_eq!(dt_range(-2.0, 2.0, 1.0), vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(dt_range(0.0, 0.5, 0.25), vec![0.0, 0.25, 0.5]);
    }

    #[test]
    #[should_panic]
    fn dt_range_rejects_non_positive_step() {
        dt_range(0.0, 1.0, 0.0);
    }

    #[test]
    fn interfering_sweep_shows_delta_shape() {
        // Fig. 2: with equal applications the first to arrive is favored and
        // the worst case for both is dt = 0.
        let result = run_delta_sweep(&sweep_cfg(Strategy::Interfere)).unwrap();
        assert_eq!(result.points.len(), 5);
        let at0 = result.at(0.0).unwrap();
        let at10 = result.at(10.0).unwrap();
        assert!(at0.a_factor > 1.5, "dt=0 should hurt A: {}", at0.a_factor);
        assert!(at0.b_factor > 1.5, "dt=0 should hurt B: {}", at0.b_factor);
        // When B arrives late, A (who arrived first) is favored over B.
        assert!(at10.a_io_time <= at10.b_io_time + 1e-6);
        // Mirror symmetry between (A,B) at +dt and -dt.
        let plus = result.at(5.0).unwrap();
        let minus = result.at(-5.0).unwrap();
        assert!((plus.a_io_time - minus.b_io_time).abs() < 0.3);
        assert!((plus.b_io_time - minus.a_io_time).abs() < 0.3);
    }

    #[test]
    fn fcfs_sweep_protects_the_first_arriver() {
        let result = run_delta_sweep(&sweep_cfg(Strategy::FcfsSerialize)).unwrap();
        let at5 = result.at(5.0).unwrap();
        // A arrived first: it keeps (approximately) its alone time.
        assert!(
            (at5.a_io_time - result.a_alone).abs() / result.a_alone < 0.05,
            "a={} alone={}",
            at5.a_io_time,
            result.a_alone
        );
        // B is delayed by A's remaining time.
        assert!(at5.b_io_time > result.b_alone * 1.2);
    }

    #[test]
    fn expected_times_bracket_reasonably() {
        let result = run_delta_sweep(&sweep_cfg(Strategy::Interfere)).unwrap();
        let at0 = result.at(0.0).unwrap();
        // With equal applications at dt=0 the expectation is 2× alone; the
        // measured value should be within ~40% of it (the locality penalty
        // makes it a bit worse).
        assert!((at0.a_expected - 2.0 * result.a_alone).abs() < 1e-6);
        assert!(at0.a_io_time >= at0.a_expected * 0.9);
        assert!(at0.a_io_time <= at0.a_expected * 1.6);
    }
}
