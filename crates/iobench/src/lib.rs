//! # iobench — IOR-like benchmark and experiment harness
//!
//! The paper evaluates CALCioM with a benchmark derived from IOR that gives
//! fine control over each application's access pattern and the exact moment
//! it starts writing. This crate is the equivalent driver for the simulated
//! stack:
//!
//! * [`baseline`] — the process-wide [`BaselineCache`] memoizing the
//!   `T_alone` stand-alone runs every sweep needs, keyed on the exact
//!   `(application, file system)` pair.
//! * [`delta`] — Δ-graph sweeps (write time / interference factor versus the
//!   start offset `dt` between two applications), the device used by most
//!   figures.
//! * [`compare`] — run the same scenario under several strategies (or,
//!   via [`compare_policies`], arbitrary named [`calciom::PolicySpec`]s
//!   from the policy registry) and compare interference factors and
//!   machine-wide metrics (Figs. 9–11, the `fig14_policies` panel).
//! * [`periodic`] — periodic writers against a caching backend (Fig. 3).
//! * [`aggregate`] — size sweeps: a small application against a big one
//!   (Fig. 4).
//! * [`expected`] — the analytic proportional-sharing expectation plotted
//!   as "Expected" in the paper's Δ-graphs.
//! * [`series`] — result series and plain-text tables used by the bench
//!   binaries to print exactly the rows/curves each figure shows.
//! * [`parallel`] — scoped-thread parallel maps plus [`run_scenarios`] /
//!   [`run_scenarios_traced`], which fan fully-built
//!   `Session<SharedTransport>` values out across worker threads
//!   (deterministic: same reports — and same recorded traces — as a
//!   sequential run), and [`run_scenarios_sharded`], the machine-scale
//!   variant that batches scenarios into shards and resolves `T_alone`
//!   baselines through a shared [`BaselineCache`] as it goes.
//!
//! Every fallible entry point returns [`calciom::Error`] — the typed error
//! surface shared by the whole stack.
//!
//! ## Example: a miniature Δ-graph
//!
//! ```
//! use iobench::delta::{dt_range, run_delta_sweep, DeltaSweepConfig};
//! use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Strategy};
//!
//! let a = AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0e6));
//! let b = AppConfig::new(AppId(1), "B", 336, AccessPattern::contiguous(16.0e6));
//! let cfg = DeltaSweepConfig::new(PfsConfig::grid5000_rennes(), a, b, dt_range(-4.0, 4.0, 4.0))
//!     .with_strategy(Strategy::FcfsSerialize);
//! let sweep = run_delta_sweep(&cfg).unwrap();
//! assert_eq!(sweep.points.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod baseline;
pub mod compare;
pub mod delta;
pub mod expected;
pub mod parallel;
pub mod periodic;
pub mod series;

pub use aggregate::{run_size_sweep, SizeSweepConfig, SizeSweepPoint};
pub use baseline::{alone_time_cached, BaselineCache};
pub use compare::{
    alone_times, compare_policies, compare_strategies, PolicyComparison, PolicyRun,
    StrategyComparison, StrategyRun,
};
pub use delta::{dt_range, run_delta_sweep, DeltaPoint, DeltaSweepConfig, DeltaSweepResult};
pub use expected::{expected_factors, expected_times, ExpectedTimes};
pub use parallel::{
    parallel_map, parallel_map_owned, run_scenarios, run_scenarios_sharded,
    run_scenarios_sharded_streamed, run_scenarios_traced, ShardedRun,
};
pub use periodic::{run_periodic, PeriodicConfig, PeriodicResult};
pub use series::{FigureData, Series};
