//! The request → response core of the service, socket-free.
//!
//! [`Service::handle_into`] maps one parsed [`Request`] to a sequence of
//! [`ResponsePart`]s pushed into a [`ResponseSink`], and writes one
//! structured log line. Most endpoints emit a single
//! [`ResponsePart::Full`]; a machine-scale `/v1/batch` streams a chunked
//! body as shard results complete. Keeping the core free of sockets
//! means the whole endpoint surface (routing, validation, error mapping,
//! caching, ETags, streaming decisions) is unit-testable without binding
//! a port; the transports in [`crate::server`] and [`crate::reactor`]
//! are pumps around it.
//!
//! ## Statelessness and determinism
//!
//! Every response body is a pure function of (endpoint, canonical
//! scenario text, policy spec, shard count). The simulation itself is
//! deterministic, and the JSON/trace renderings iterate `BTreeMap`s —
//! so concurrent identical requests produce byte-identical bodies,
//! strong input-derived ETags are valid, and the response cache can
//! never serve a stale or divergent body. A streamed `/v1/batch` body is
//! byte-identical (after de-chunking) to the materialized rendering by
//! construction — both are assembled from [`crate::json::batch_prelude`]
//! \+ [`crate::json::batch_entry_json`] + [`crate::json::BATCH_EPILOGUE`].
//! Host wall-clock appears only in the request log, never in a body.

use crate::cache::{CachedResponse, ResponseCache};
use crate::config::ServeConfig;
use crate::http::{Request, Response};
use crate::json;
use crate::log::{CacheOutcome, RequestLog, RequestRecord};
use calciom::{
    ConfigError, Error, NullObserver, PolicySpec, Scenario, Session, SimEvent, SimObserver,
    TimelineAggregator, Trace, TraceRecorder,
};
use iobench::{run_scenarios_sharded, run_scenarios_sharded_streamed, BaselineCache};
use simcore::time::SimTime;
use std::time::Instant;

/// Content type of JSON bodies.
const JSON: &str = "application/json";
/// Content type of `calciom-trace v1` bodies.
const TEXT: &str = "text/plain; charset=utf-8";
/// Header line that starts each scenario document in a `/v1/batch` body.
const SCENARIO_HEADER: &str = "calciom-scenario v1";
/// Every route the service knows, with its allowed method — the `405`
/// response's `allow` header comes straight from this table.
const ROUTES: &[(&str, &str)] = &[
    ("GET", "/healthz"),
    ("GET", "/v1/policies"),
    ("POST", "/v1/run"),
    ("POST", "/v1/trace"),
    ("POST", "/v1/timeline"),
    ("POST", "/v1/batch"),
];

/// One piece of a response on its way to the wire.
///
/// The service emits either a single [`ResponsePart::Full`], or a
/// streamed sequence `StreamHead (StreamChunk)* (StreamEnd |
/// StreamAbort)`. Transports own the framing: `Full` is written with
/// `Content-Length`, a stream with `Transfer-Encoding: chunked`
/// ([`Response::serialize_chunked_head`] /
/// [`crate::http::chunk_frame`] / [`crate::http::CHUNK_END`]).
#[derive(Debug)]
pub enum ResponsePart {
    /// A complete response; exactly one exchange.
    Full(Response),
    /// Status + headers of a streamed response. Its `body` is empty;
    /// chunks follow.
    StreamHead(Response),
    /// One span of streamed body bytes (unframed — the transport applies
    /// the chunked coding).
    StreamChunk(Vec<u8>),
    /// The stream completed; the transport writes the terminal chunk.
    StreamEnd,
    /// The stream failed after the head was sent. The carried response
    /// is the error that *would* have been sent (for logs and
    /// materializing sinks); a wire transport can only truncate — close
    /// without the terminal chunk so the client detects the short body.
    StreamAbort(Response),
}

/// Where [`Service::handle_into`] pushes response parts. Implemented by
/// the transports (socket writers, the reactor's completion queue) and
/// by [`CollectSink`] for tests and the materialized [`Service::handle`].
pub trait ResponseSink {
    /// Receives the next part, in order.
    fn part(&mut self, part: ResponsePart);
}

/// A [`ResponseSink`] that reassembles whatever was emitted into one
/// materialized [`Response`] — the bridge from the streaming interface
/// back to "one request, one `Response`".
#[derive(Debug, Default)]
pub struct CollectSink {
    full: Option<Response>,
    head: Option<Response>,
    chunks: Vec<u8>,
    aborted: Option<Response>,
}

impl CollectSink {
    /// A fresh sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The materialized response: the `Full` part if one was emitted, a
    /// completed stream reassembled under its head, or the abort error.
    pub fn into_response(self) -> Response {
        if let Some(error) = self.aborted {
            return error;
        }
        if let Some(full) = self.full {
            return full;
        }
        match self.head {
            Some(mut head) => {
                head.body = self.chunks;
                head
            }
            // The service always emits at least one part; an empty sink
            // means the caller never ran it.
            None => Response::with_body(500, JSON, json::error_json("empty", "no response parts")),
        }
    }
}

impl ResponseSink for CollectSink {
    fn part(&mut self, part: ResponsePart) {
        match part {
            ResponsePart::Full(r) => self.full = Some(r),
            ResponsePart::StreamHead(h) => self.head = Some(h),
            ResponsePart::StreamChunk(c) => self.chunks.extend_from_slice(&c),
            ResponsePart::StreamEnd => {}
            ResponsePart::StreamAbort(e) => self.aborted = Some(e),
        }
    }
}

/// Counts events while forwarding them, so the request log's `events=`
/// column works for any observer.
struct Counting<O> {
    inner: O,
    events: u64,
}

impl<O: SimObserver> Counting<O> {
    fn new(inner: O) -> Self {
        Counting { inner, events: 0 }
    }
}

impl<O: SimObserver> SimObserver for Counting<O> {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        self.events += 1;
        self.inner.on_event(at, event);
    }

    fn wants_progress(&self) -> bool {
        self.inner.wants_progress()
    }
}

/// What the log line needs from one dispatched request.
struct LogMeta {
    status: u16,
    events: u64,
    shards: Option<usize>,
    cache: Option<CacheOutcome>,
}

/// One materialized dispatch: the response plus its log metadata.
struct Handled {
    response: Response,
    events: u64,
    shards: Option<usize>,
    cache: Option<CacheOutcome>,
}

impl Handled {
    fn plain(response: Response) -> Handled {
        Handled {
            response,
            events: 0,
            shards: None,
            cache: None,
        }
    }

    /// Pushes the response into `sink` and returns the log metadata.
    fn emit(self, sink: &mut dyn ResponseSink) -> LogMeta {
        let meta = LogMeta {
            status: self.response.status,
            events: self.events,
            shards: self.shards,
            cache: self.cache,
        };
        sink.part(ResponsePart::Full(self.response));
        meta
    }
}

/// The stateless endpoint surface plus its bounded response cache and
/// request log.
pub struct Service {
    config: ServeConfig,
    cache: ResponseCache,
    log: Box<dyn RequestLog>,
}

impl Service {
    /// A service with the given configuration and log sink.
    pub fn new(config: ServeConfig, log: Box<dyn RequestLog>) -> Self {
        let cache = ResponseCache::with_capacity(config.cache_cap);
        Service { config, cache, log }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The response cache (exposed for tests and stats).
    pub fn cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// Handles one parsed request, materialized: streamed parts are
    /// reassembled into a single [`Response`]. Logs with no connection
    /// id — the unit-test and direct-call entry point.
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_ctx(None, request)
    }

    /// [`Service::handle`] with the transport's connection id for the
    /// request log.
    pub fn handle_ctx(&self, conn: Option<u64>, request: &Request) -> Response {
        let mut sink = CollectSink::new();
        self.handle_into(conn, request, &mut sink);
        sink.into_response()
    }

    /// Handles one parsed request, pushing response parts into `sink`
    /// as they become available, and logs it. This is the transports'
    /// entry point — a `/v1/batch` past the streaming threshold emits
    /// chunks while later shards are still simulating.
    pub fn handle_into(&self, conn: Option<u64>, request: &Request, sink: &mut dyn ResponseSink) {
        let started = Instant::now();
        let meta = self.dispatch_into(request, sink);
        self.log.record(&RequestRecord {
            conn,
            method: request.method.clone(),
            path: request.path.clone(),
            scenario_hash: (!request.body.is_empty()).then(|| json::fnv64(&request.body)),
            shards: meta.shards,
            status: meta.status,
            events: meta.events,
            wall: started.elapsed(),
            cache: meta.cache,
        });
    }

    /// Serves the request inline **iff** it needs no simulation: trivial
    /// GETs, routing errors, request-shape errors, `If-None-Match`
    /// revalidations, and response-cache hits. Returns `false` without
    /// touching `sink` when real work is required.
    ///
    /// This is the epoll reactor's fast path: a pipelined burst of
    /// cache hits is answered on the reactor thread itself — read once,
    /// serve all, write once — instead of paying a worker-pool
    /// round-trip (two thread hand-offs) per request. Everything served
    /// here is logged exactly as [`Service::handle_into`] would.
    pub fn handle_fast(
        &self,
        conn: Option<u64>,
        request: &Request,
        sink: &mut dyn ResponseSink,
    ) -> bool {
        let started = Instant::now();
        let Some(handled) = self.dispatch_fast(request) else {
            return false;
        };
        let meta = handled.emit(sink);
        self.log.record(&RequestRecord {
            conn,
            method: request.method.clone(),
            path: request.path.clone(),
            scenario_hash: (!request.body.is_empty()).then(|| json::fnv64(&request.body)),
            shards: meta.shards,
            status: meta.status,
            events: meta.events,
            wall: started.elapsed(),
            cache: meta.cache,
        });
        true
    }

    /// The dispatch half of [`Service::handle_fast`]. A sustained
    /// stream of identical requests is answered from a raw-bytes memo
    /// with no parsing at all; the first repeat of a cached scenario
    /// pays one parse + canonical-key hash to *install* that memo; and
    /// on a cache miss the parse is simply redone by the worker — the
    /// miss is about to simulate for milliseconds anyway.
    fn dispatch_fast(&self, request: &Request) -> Option<Handled> {
        match (request.method.as_str(), request.path.as_str()) {
            // Cheap to *compute*, not just to look up.
            ("GET", "/healthz") | ("GET", "/v1/policies") => Some(self.dispatch(request)),
            ("POST", "/v1/run") | ("POST", "/v1/trace") | ("POST", "/v1/timeline") => {
                // Level 1: the raw request bytes. The service is a pure
                // function of the request, so identical bytes must get
                // the identical response — lookup is one string compare,
                // no scenario parse. (Revalidations need the ETag
                // protocol; route them through the canonical path.)
                let raw = request
                    .header("if-none-match")
                    .is_none()
                    .then(|| raw_memo_key(request));
                if let Some(key) = &raw {
                    if let Some(hit) = self.cache.get(key) {
                        return Some(hit_handled(hit, None));
                    }
                }
                // Level 2: parse and consult the canonical cache, which
                // absorbs formatting variants of the same scenario.
                let scenario = match self.scenario_from(request) {
                    Ok(s) => s,
                    // A malformed request is answered inline: rejecting
                    // it never needs a simulation worker.
                    Err(response) => return Some(Handled::plain(response)),
                };
                let key = cache_key(&request.path, &scenario, None);
                let tag = json::etag(&key);
                if request.header("if-none-match") == Some(tag.as_str()) {
                    return Some(Handled {
                        response: Response {
                            status: 304,
                            headers: vec![("etag".to_string(), tag)],
                            body: Vec::new(),
                        },
                        events: 0,
                        shards: None,
                        cache: None,
                    });
                }
                let hit = self.cache.get(&key)?;
                if let Some(raw) = raw {
                    // Memoize under the raw bytes: the next identical
                    // request skips the parse entirely.
                    self.cache.insert(&raw, hit.clone());
                }
                Some(hit_handled(hit, None))
            }
            // Batches can shard/stream: always worker territory.
            ("POST", "/v1/batch") => None,
            // 404/405 are static routing answers.
            _ => Some(self.dispatch(request)),
        }
    }

    /// Builds and logs the response for a request that could not even be
    /// parsed off the wire (the transports call this on
    /// [`crate::http::HttpError`]). Such a response always closes the
    /// connection — the byte stream can no longer be framed.
    pub fn handle_unparsable(&self, conn: Option<u64>, status: u16, message: &str) -> Response {
        let response = Response::with_body(status, JSON, json::error_json("http", message));
        self.log.record(&RequestRecord {
            conn,
            method: "-".to_string(),
            path: "-".to_string(),
            scenario_hash: None,
            shards: None,
            status,
            events: 0,
            wall: std::time::Duration::ZERO,
            cache: None,
        });
        response
    }

    fn dispatch_into(&self, request: &Request, sink: &mut dyn ResponseSink) -> LogMeta {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/batch") => self.batch_into(request, sink),
            _ => self.dispatch(request).emit(sink),
        }
    }

    fn dispatch(&self, request: &Request) -> Handled {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Handled::plain(Response::with_body(200, TEXT, "ok\n")),
            ("GET", "/v1/policies") => {
                self.serve_cached(request, "GET /v1/policies".to_string(), None, || {
                    Ok((json::policies_json().into_bytes(), JSON, 0))
                })
            }
            ("POST", "/v1/run") => self.run(request),
            ("POST", "/v1/trace") => self.trace(request),
            ("POST", "/v1/timeline") => self.timeline(request),
            ("POST", "/v1/batch") => {
                // Reached only via the materializing path (handle());
                // dispatch_into routes sockets through batch_into.
                let mut sink = CollectSink::new();
                let meta = self.batch_into(request, &mut sink);
                Handled {
                    response: sink.into_response(),
                    events: meta.events,
                    shards: meta.shards,
                    cache: meta.cache,
                }
            }
            (_, path) => {
                let allowed: Vec<&str> = ROUTES
                    .iter()
                    .filter(|(_, p)| *p == path)
                    .map(|(m, _)| *m)
                    .collect();
                if allowed.is_empty() {
                    Handled::plain(Response::with_body(
                        404,
                        JSON,
                        json::error_json("not-found", &format!("no such endpoint: {path}")),
                    ))
                } else {
                    Handled::plain(
                        Response::with_body(
                            405,
                            JSON,
                            json::error_json(
                                "method-not-allowed",
                                &format!("{path} does not accept {}", request.method),
                            ),
                        )
                        .header("allow", &allowed.join(", ")),
                    )
                }
            }
        }
    }

    /// `POST /v1/run`: scenario text → [`calciom::SessionReport`] JSON.
    fn run(&self, request: &Request) -> Handled {
        let scenario = match self.scenario_from(request) {
            Ok(s) => s,
            Err(response) => return Handled::plain(response),
        };
        let key = cache_key("/v1/run", &scenario, None);
        self.serve_cached(request, key, None, || {
            let mut counter = Counting::new(NullObserver);
            let report = Session::new(&scenario)
                .and_then(|s| s.execute_with(&mut counter))
                .map_err(|e| error_response(&e))?;
            Ok((
                json::report_json(&report).into_bytes(),
                JSON,
                counter.events,
            ))
        })
    }

    /// `POST /v1/trace`: scenario text → replayable `calciom-trace v1`
    /// text, round-trip verified before it is sent.
    fn trace(&self, request: &Request) -> Handled {
        let scenario = match self.scenario_from(request) {
            Ok(s) => s,
            Err(response) => return Handled::plain(response),
        };
        let key = cache_key("/v1/trace", &scenario, None);
        self.serve_cached(request, key, None, || {
            let mut counter = Counting::new(TraceRecorder::for_scenario(&scenario));
            let report = Session::new(&scenario)
                .and_then(|s| s.execute_with(&mut counter))
                .map_err(|e| error_response(&e))?;
            let events = counter.events;
            let text = counter.inner.into_trace().to_text();
            // Round-trip guard: only ship a trace that decodes and replays
            // bit-for-bit to the report this very session produced.
            let verified = Trace::from_text(&text)
                .map(|decoded| decoded.replay_report() == report)
                .unwrap_or(false);
            if !verified {
                return Err(Response::with_body(
                    500,
                    JSON,
                    json::error_json(
                        "trace-roundtrip",
                        "recorded trace failed round-trip verification",
                    ),
                ));
            }
            Ok((text.into_bytes(), TEXT, events))
        })
    }

    /// `POST /v1/timeline`: scenario text → Gantt/bandwidth JSON.
    fn timeline(&self, request: &Request) -> Handled {
        let scenario = match self.scenario_from(request) {
            Ok(s) => s,
            Err(response) => return Handled::plain(response),
        };
        let key = cache_key("/v1/timeline", &scenario, None);
        self.serve_cached(request, key, None, || {
            let mut counter = Counting::new(TimelineAggregator::new());
            Session::new(&scenario)
                .and_then(|s| s.execute_with(&mut counter))
                .map_err(|e| error_response(&e))?;
            let events = counter.events;
            let timeline = counter.inner.finish();
            Ok((json::timeline_json(&timeline).into_bytes(), JSON, events))
        })
    }

    /// `POST /v1/batch`: several concatenated scenario documents fanned
    /// out over the sharded backend. Past the streaming threshold (or
    /// with `?stream=1`) the body goes out chunked, one entry per
    /// scenario **as shard results complete**, in request order.
    fn batch_into(&self, request: &Request, sink: &mut dyn ResponseSink) -> LogMeta {
        let shards = match self.shard_count(request) {
            Ok(n) => n,
            Err(response) => return Handled::plain(response).emit(sink),
        };
        let emit_err = |response: Response, sink: &mut dyn ResponseSink| {
            Handled {
                response,
                events: 0,
                shards: Some(shards),
                cache: None,
            }
            .emit(sink)
        };
        let body = match body_text(request) {
            Ok(t) => t,
            Err(response) => return emit_err(response, sink),
        };
        let mut scenarios = Vec::new();
        for text in split_scenarios(body) {
            match self.prepare(text, request) {
                Ok(s) => scenarios.push(s),
                Err(response) => return emit_err(response, sink),
            }
        }
        if scenarios.is_empty() {
            return emit_err(
                Response::with_body(
                    400,
                    JSON,
                    json::error_json(
                        "scenario-parse",
                        &format!("batch body contains no {SCENARIO_HEADER:?} document"),
                    ),
                ),
                sink,
            );
        }
        let stream = match self.stream_requested(request, &scenarios) {
            Ok(stream) => stream,
            Err(response) => return emit_err(response, sink),
        };

        let mut key = format!("/v1/batch shards={shards}\n");
        for scenario in &scenarios {
            key.push_str(&scenario.to_text());
        }

        if !stream {
            return self
                .serve_cached(request, key, Some(shards), || {
                    let runs = run_scenarios_sharded(&scenarios, shards, BaselineCache::global())
                        .map_err(|e| error_response(&e))?;
                    // The sharded runner executes unobserved, so no event
                    // count is available for the log (recorded as 0).
                    Ok((json::batch_json(shards, &runs).into_bytes(), JSON, 0))
                })
                .emit(sink);
        }

        // Streaming path. ETag revalidation and cache hits still
        // short-circuit to a materialized response — only a cache miss
        // actually streams.
        let tag = json::etag(&key);
        if request.header("if-none-match") == Some(tag.as_str()) {
            let meta = LogMeta {
                status: 304,
                events: 0,
                shards: Some(shards),
                cache: None,
            };
            sink.part(ResponsePart::Full(Response {
                status: 304,
                headers: vec![("etag".to_string(), tag)],
                body: Vec::new(),
            }));
            return meta;
        }
        if let Some(hit) = self.cache.get(&key) {
            let meta = LogMeta {
                status: 200,
                events: hit.events,
                shards: Some(shards),
                cache: Some(CacheOutcome::Hit),
            };
            sink.part(ResponsePart::Full(
                Response::with_body(200, hit.content_type, hit.body)
                    .header("etag", &hit.etag)
                    .header("x-cache", CacheOutcome::Hit.label()),
            ));
            return meta;
        }

        // The head goes out lazily, on the first shard result: a
        // configuration error raised while *building* the sessions must
        // still produce a proper 4xx/5xx status line, which is only
        // possible while nothing has been sent.
        let mut started = false;
        let mut first = true;
        let mut accumulated: Vec<u8> = Vec::new();
        let result =
            run_scenarios_sharded_streamed(&scenarios, shards, BaselineCache::global(), |run| {
                if !started {
                    started = true;
                    sink.part(ResponsePart::StreamHead(
                        Response::with_body(200, JSON, Vec::new())
                            .header("etag", &tag)
                            .header("x-cache", CacheOutcome::Miss.label()),
                    ));
                    let prelude = json::batch_prelude(shards, scenarios.len());
                    accumulated.extend_from_slice(prelude.as_bytes());
                    sink.part(ResponsePart::StreamChunk(prelude.into_bytes()));
                }
                let mut entry = String::new();
                if !first {
                    entry.push(',');
                }
                first = false;
                entry.push_str(&json::batch_entry_json(&run));
                accumulated.extend_from_slice(entry.as_bytes());
                sink.part(ResponsePart::StreamChunk(entry.into_bytes()));
            });
        match result {
            Ok(()) => {
                accumulated.extend_from_slice(json::BATCH_EPILOGUE.as_bytes());
                sink.part(ResponsePart::StreamChunk(
                    json::BATCH_EPILOGUE.as_bytes().to_vec(),
                ));
                sink.part(ResponsePart::StreamEnd);
                self.cache.insert(
                    &key,
                    CachedResponse {
                        body: accumulated,
                        content_type: JSON,
                        etag: tag,
                        events: 0,
                    },
                );
                LogMeta {
                    status: 200,
                    events: 0,
                    shards: Some(shards),
                    cache: Some(CacheOutcome::Miss),
                }
            }
            Err(e) => {
                let error = error_response(&e);
                let status = error.status;
                if started {
                    // Head already sent: the wire can only truncate.
                    sink.part(ResponsePart::StreamAbort(error));
                } else {
                    sink.part(ResponsePart::Full(error));
                }
                LogMeta {
                    status,
                    events: 0,
                    shards: Some(shards),
                    cache: None,
                }
            }
        }
    }

    /// Whether this `/v1/batch` request streams: `?stream=1/0` wins,
    /// otherwise the batch's total application count against the
    /// configured threshold (0 disables size-triggered streaming).
    fn stream_requested(
        &self,
        request: &Request,
        scenarios: &[Scenario],
    ) -> Result<bool, Response> {
        match query_param_checked(request, "stream")? {
            Some(value) => match value.as_str() {
                "1" | "true" => Ok(true),
                "0" | "false" => Ok(false),
                other => Err(Response::with_body(
                    400,
                    JSON,
                    json::error_json(
                        "bad-request",
                        &format!("stream must be 0 or 1, got {other:?}"),
                    ),
                )),
            },
            None => {
                if self.config.stream_apps == 0 {
                    return Ok(false);
                }
                let total_apps: usize = scenarios.iter().map(|s| s.apps.len()).sum();
                Ok(total_apps >= self.config.stream_apps)
            }
        }
    }

    /// The ETag/If-None-Match/response-cache wrapper every cacheable
    /// endpoint goes through. `compute` returns `(body, content_type,
    /// events)` or a ready error response (errors are never cached).
    fn serve_cached(
        &self,
        request: &Request,
        key: String,
        shards: Option<usize>,
        compute: impl FnOnce() -> Result<(Vec<u8>, &'static str, u64), Response>,
    ) -> Handled {
        let tag = json::etag(&key);
        if let Some(handled) = self.revalidate_or_hit(request, &key, &tag, shards) {
            return handled;
        }
        match compute() {
            Ok((body, content_type, events)) => {
                self.cache.insert(
                    &key,
                    CachedResponse {
                        body: body.clone(),
                        content_type,
                        etag: tag.clone(),
                        events,
                    },
                );
                Handled {
                    response: Response::with_body(200, content_type, body)
                        .header("etag", &tag)
                        .header("x-cache", CacheOutcome::Miss.label()),
                    events,
                    shards,
                    cache: Some(CacheOutcome::Miss),
                }
            }
            Err(response) => Handled {
                response,
                events: 0,
                shards,
                cache: None,
            },
        }
    }

    /// The no-simulation half of [`Service::serve_cached`]: a matching
    /// `If-None-Match` becomes a `304`, a response-cache hit is served
    /// as-is, and anything else is `None` — the caller must compute.
    fn revalidate_or_hit(
        &self,
        request: &Request,
        key: &str,
        tag: &str,
        shards: Option<usize>,
    ) -> Option<Handled> {
        // The ETag is derived from the request's canonical inputs, so a
        // match short-circuits before any simulation work.
        if request.header("if-none-match") == Some(tag) {
            return Some(Handled {
                response: Response {
                    status: 304,
                    headers: vec![("etag".to_string(), tag.to_string())],
                    body: Vec::new(),
                },
                events: 0,
                shards,
                cache: None,
            });
        }
        let hit = self.cache.get(key)?;
        Some(Handled {
            response: Response::with_body(200, hit.content_type, hit.body)
                .header("etag", &hit.etag)
                .header("x-cache", CacheOutcome::Hit.label()),
            events: hit.events,
            shards,
            cache: Some(CacheOutcome::Hit),
        })
    }

    /// Parses the single-scenario body of `/v1/run`-shaped endpoints.
    fn scenario_from(&self, request: &Request) -> Result<Scenario, Response> {
        self.prepare(body_text(request)?, request)
    }

    /// Parses one scenario document, applies the `?policy=` override, and
    /// enforces the horizon limit plus full validation.
    fn prepare(&self, text: &str, request: &Request) -> Result<Scenario, Response> {
        let mut scenario =
            Scenario::from_text(text).map_err(|e| error_response(&Error::Scenario(e)))?;
        if let Some(spec_text) = query_param_checked(request, "policy")? {
            let spec = PolicySpec::from_text(&spec_text)
                .map_err(|e| error_response(&Error::Config(ConfigError::Policy(e))))?;
            scenario.arbitration = Some(spec);
        }
        if scenario.horizon.as_secs() > self.config.max_horizon_secs {
            return Err(Response::with_body(
                422,
                JSON,
                json::error_json(
                    "horizon-limit",
                    &format!(
                        "scenario horizon of {}s exceeds this server's limit of {}s",
                        scenario.horizon.as_secs(),
                        self.config.max_horizon_secs
                    ),
                ),
            ));
        }
        scenario
            .validate()
            .map_err(|e| error_response(&Error::Config(e)))?;
        Ok(scenario)
    }

    /// The `?shards=` override of `/v1/batch` (0 or absent → configured
    /// default).
    fn shard_count(&self, request: &Request) -> Result<usize, Response> {
        match query_param_checked(request, "shards")? {
            None => Ok(self.config.effective_shards()),
            Some(raw) => match raw.parse::<usize>() {
                Ok(0) => Ok(self.config.effective_shards()),
                Ok(n) => Ok(n),
                Err(_) => Err(Response::with_body(
                    400,
                    JSON,
                    json::error_json(
                        "bad-request",
                        &format!("shards must be a non-negative integer, got {raw:?}"),
                    ),
                )),
            },
        }
    }
}

/// The canonical cache/ETag key: endpoint + policy label + the
/// scenario's canonical text (the `BaselineCache` key discipline —
/// `from_text ∘ to_text` has already normalized the request body).
/// The level-1 memo key for [`Service::handle_fast`]: the raw request
/// bytes, verbatim (method, target, body). Distinct formatting of the
/// same scenario gets distinct entries here — the canonical cache
/// underneath deduplicates the *computation*; this layer only skips the
/// parse for exact repeats. The `"raw "` prefix keeps it disjoint from
/// canonical keys, which start with the endpoint path.
fn raw_memo_key(request: &Request) -> String {
    let mut key = String::with_capacity(
        request.method.len() + request.path.len() + request.query.len() + request.body.len() + 8,
    );
    key.push_str("raw ");
    key.push_str(&request.method);
    key.push(' ');
    key.push_str(&request.path);
    key.push('?');
    key.push_str(&request.query);
    key.push(' ');
    key.push_str(&String::from_utf8_lossy(&request.body));
    key
}

/// A cache hit as [`Handled`] — the exact response shape
/// [`Service::serve_cached`] produces for hits, so every cache level is
/// byte-identical on the wire.
fn hit_handled(hit: CachedResponse, shards: Option<usize>) -> Handled {
    Handled {
        response: Response::with_body(200, hit.content_type, hit.body)
            .header("etag", &hit.etag)
            .header("x-cache", CacheOutcome::Hit.label()),
        events: hit.events,
        shards,
        cache: Some(CacheOutcome::Hit),
    }
}

fn cache_key(endpoint: &str, scenario: &Scenario, shards: Option<usize>) -> String {
    let mut key = format!("{endpoint} policy={}\n", scenario.policy_label());
    if let Some(shards) = shards {
        key.push_str(&format!("shards={shards}\n"));
    }
    key.push_str(&scenario.to_text());
    key
}

/// Maps the typed simulator errors onto the wire: parse problems are the
/// client's fault (`400`), a scenario that parses but cannot be built or
/// validated is unprocessable (`422`), and a simulation that fails at
/// runtime is the server's problem (`500`).
fn error_response(error: &Error) -> Response {
    let (status, kind) = match error {
        Error::Scenario(_) => (400, "scenario-parse"),
        Error::Trace(_) => (400, "trace-parse"),
        Error::Info(_) => (400, "info-parse"),
        Error::Config(ConfigError::Policy(_)) => (422, "policy"),
        Error::Config(_) => (422, "config"),
        Error::Session(_) => (500, "session"),
    };
    Response::with_body(status, JSON, json::error_json(kind, &error.to_string()))
}

/// The request body as UTF-8 text.
fn body_text(request: &Request) -> Result<&str, Response> {
    std::str::from_utf8(&request.body).map_err(|_| {
        Response::with_body(
            400,
            JSON,
            json::error_json("bad-request", "request body is not valid UTF-8"),
        )
    })
}

/// Like [`Request::query_param`], but a parameter that is *present* with
/// broken percent-encoding is a `400`, not a silent absence.
fn query_param_checked(request: &Request, name: &str) -> Result<Option<String>, Response> {
    let present = request
        .query
        .split('&')
        .any(|kv| kv == name || kv.starts_with(&format!("{name}=")));
    if !present {
        return Ok(None);
    }
    match request.query_param(name) {
        Some(value) => Ok(Some(value)),
        None => Err(Response::with_body(
            400,
            JSON,
            json::error_json(
                "bad-request",
                &format!("query parameter {name} has broken percent-encoding"),
            ),
        )),
    }
}

/// Splits a `/v1/batch` body into scenario documents: each line equal to
/// the scenario header starts a new document.
fn split_scenarios(body: &str) -> Vec<&str> {
    let mut starts: Vec<usize> = Vec::new();
    let mut offset = 0;
    for line in body.split_inclusive('\n') {
        if line.trim_end_matches(['\r', '\n']) == SCENARIO_HEADER {
            starts.push(offset);
        }
        offset += line.len();
    }
    if starts.is_empty() {
        // No header at all: hand the whole body to the scenario parser so
        // the client gets its precise BadHeader error back.
        return if body.trim().is_empty() {
            Vec::new()
        } else {
            vec![body]
        };
    }
    let mut docs = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(body.len());
        docs.push(&body[start..end]);
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::BufferLog;
    use calciom::{AccessPattern, AppConfig, AppId, PfsConfig};
    use std::collections::BTreeMap;

    fn scenario_text() -> String {
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "A",
                336,
                AccessPattern::contiguous(8.0e6),
            ))
            .app(
                AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(4.0e6))
                    .starting_at_secs(1.0),
            )
            .build()
            .unwrap()
            .to_text()
    }

    fn service() -> Service {
        Service::new(ServeConfig::default(), Box::new(BufferLog::new()))
    }

    fn post(path: &str, query: &str, body: impl Into<Vec<u8>>) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers: BTreeMap::new(),
            body: body.into(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let svc = service();
        assert_eq!(svc.handle(&get("/healthz")).status, 200);
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        let wrong_method = svc.handle(&get("/v1/run"));
        assert_eq!(wrong_method.status, 405);
        assert!(wrong_method
            .headers
            .iter()
            .any(|(n, v)| n == "allow" && v == "POST"));
    }

    #[test]
    fn run_is_deterministic_and_cached() {
        let svc = service();
        let first = svc.handle(&post("/v1/run", "", scenario_text()));
        let second = svc.handle(&post("/v1/run", "", scenario_text()));
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body, "bodies must be byte-identical");
        let outcome = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "x-cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(outcome(&first).as_deref(), Some("miss"));
        assert_eq!(outcome(&second).as_deref(), Some("hit"));
        assert_eq!(svc.cache().hits(), 1);
    }

    #[test]
    fn etag_enables_conditional_requests() {
        let svc = service();
        let first = svc.handle(&post("/v1/run", "", scenario_text()));
        let tag = first
            .headers
            .iter()
            .find(|(n, _)| n == "etag")
            .map(|(_, v)| v.clone())
            .unwrap();
        let mut revalidate = post("/v1/run", "", scenario_text());
        revalidate
            .headers
            .insert("if-none-match".to_string(), tag.clone());
        let response = svc.handle(&revalidate);
        assert_eq!(response.status, 304);
        assert!(response.body.is_empty());
    }

    #[test]
    fn policy_override_changes_the_report() {
        let svc = service();
        let base = svc.handle(&post("/v1/run", "", scenario_text()));
        let fcfs = svc.handle(&post("/v1/run", "policy=fcfs", scenario_text()));
        assert_eq!(fcfs.status, 200);
        assert_ne!(base.body, fcfs.body);
        let text = String::from_utf8(fcfs.body).unwrap();
        assert!(text.contains("\"policy\":\"fcfs\""), "{text}");
    }

    #[test]
    fn malformed_scenario_is_a_structured_400() {
        let svc = service();
        let response = svc.handle(&post("/v1/run", "", "not a scenario"));
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"kind\":\"scenario-parse\""), "{text}");
    }

    #[test]
    fn unknown_policy_is_a_422() {
        let svc = service();
        let response = svc.handle(&post("/v1/run", "policy=wizardry", scenario_text()));
        assert_eq!(response.status, 422);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"kind\":\"policy\""), "{text}");
    }

    #[test]
    fn broken_policy_encoding_is_a_400_not_silence() {
        let svc = service();
        let response = svc.handle(&post("/v1/run", "policy=rr%2", scenario_text()));
        assert_eq!(response.status, 400);
    }

    #[test]
    fn oversized_horizon_is_a_422() {
        let config = ServeConfig {
            max_horizon_secs: 10.0,
            ..ServeConfig::default()
        };
        let svc = Service::new(config, Box::new(BufferLog::new()));
        let response = svc.handle(&post("/v1/run", "", scenario_text()));
        assert_eq!(response.status, 422);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"kind\":\"horizon-limit\""), "{text}");
    }

    #[test]
    fn trace_round_trips_to_the_run_report() {
        let svc = service();
        let run = svc.handle(&post("/v1/run", "", scenario_text()));
        let trace = svc.handle(&post("/v1/trace", "", scenario_text()));
        assert_eq!(trace.status, 200);
        let decoded = Trace::from_text(std::str::from_utf8(&trace.body).unwrap()).unwrap();
        let replayed = json::report_json(&decoded.replay_report());
        assert_eq!(replayed.into_bytes(), run.body);
    }

    #[test]
    fn timeline_reports_intervals() {
        let svc = service();
        let response = svc.handle(&post("/v1/timeline", "", scenario_text()));
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"intervals\""));
        assert!(text.contains("\"bandwidth\""));
    }

    #[test]
    fn batch_splits_documents_and_reports_each() {
        let svc = service();
        let body = format!("{}{}", scenario_text(), scenario_text());
        let response = svc.handle(&post("/v1/batch", "shards=2", body));
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"scenarios\":2"), "{text}");
        assert!(text.contains("\"shards\":2"));
        assert!(text.contains("\"alone_secs\""));
    }

    #[test]
    fn batch_with_no_documents_is_a_400() {
        let svc = service();
        let response = svc.handle(&post("/v1/batch", "", "  \n"));
        assert_eq!(response.status, 400);
    }

    #[test]
    fn batch_shard_validation() {
        let svc = service();
        let response = svc.handle(&post("/v1/batch", "shards=many", scenario_text()));
        assert_eq!(response.status, 400);
    }

    #[test]
    fn streamed_batch_parts_reassemble_to_the_materialized_body() {
        let svc = service();
        let body = format!("{}{}", scenario_text(), scenario_text());
        let materialized = svc.handle(&post("/v1/batch", "shards=2&stream=0", body.clone()));
        assert_eq!(materialized.status, 200);

        // Fresh service so the cache is cold — a hit would short-circuit
        // to a Full part instead of streaming.
        let svc = service();
        let mut sink = CollectSink::new();
        svc.handle_into(
            None,
            &post("/v1/batch", "shards=2&stream=1", body),
            &mut sink,
        );
        assert!(sink.full.is_none(), "a cold streamed batch must stream");
        let head = sink.head.as_ref().expect("stream head was emitted");
        assert_eq!(head.status, 200);
        assert!(head
            .headers
            .iter()
            .any(|(n, v)| n == "x-cache" && v == "miss"));
        let streamed = sink.into_response();
        assert_eq!(
            streamed.body, materialized.body,
            "de-chunked stream must be byte-identical to the materialized body"
        );
    }

    #[test]
    fn streamed_batch_is_cached_for_later_hits() {
        let svc = service();
        let body = format!("{}{}", scenario_text(), scenario_text());
        let first = svc.handle(&post("/v1/batch", "shards=2&stream=1", body.clone()));
        assert_eq!(first.status, 200);
        let second = svc.handle(&post("/v1/batch", "shards=2&stream=1", body));
        assert_eq!(second.body, first.body);
        assert!(second
            .headers
            .iter()
            .any(|(n, v)| n == "x-cache" && v == "hit"));
    }

    #[test]
    fn bad_stream_flag_is_a_400() {
        let svc = service();
        let response = svc.handle(&post("/v1/batch", "stream=maybe", scenario_text()));
        assert_eq!(response.status, 400);
    }

    #[test]
    fn stream_threshold_triggers_on_total_apps() {
        let config = ServeConfig {
            stream_apps: 3,
            ..ServeConfig::default()
        };
        let svc = Service::new(config, Box::new(BufferLog::new()));
        // Two documents × two apps = 4 ≥ 3: streams without ?stream=1.
        let body = format!("{}{}", scenario_text(), scenario_text());
        let mut sink = CollectSink::new();
        svc.handle_into(None, &post("/v1/batch", "shards=2", body), &mut sink);
        assert!(
            sink.head.is_some(),
            "past the app threshold the batch must stream"
        );
    }

    #[test]
    fn split_scenarios_finds_document_boundaries() {
        let one = format!("{SCENARIO_HEADER}\na = 1\n");
        let two = format!("{one}{SCENARIO_HEADER}\nb = 2\n");
        assert_eq!(split_scenarios(&two).len(), 2);
        assert_eq!(split_scenarios(&one), vec![one.as_str()]);
        assert_eq!(split_scenarios("junk"), vec!["junk"]);
        assert!(split_scenarios(" \n").is_empty());
    }

    #[test]
    fn policies_listing_is_cacheable() {
        let svc = service();
        let first = svc.handle(&get("/v1/policies"));
        let second = svc.handle(&get("/v1/policies"));
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body);
        assert!(String::from_utf8(first.body).unwrap().contains("srpf"));
    }

    #[test]
    fn request_log_lines_have_the_contract_columns() {
        let log = std::sync::Arc::new(BufferLog::new());
        struct Fwd(std::sync::Arc<BufferLog>);
        impl RequestLog for Fwd {
            fn record(&self, r: &RequestRecord) {
                self.0.record(r);
            }
        }
        let svc = Service::new(ServeConfig::default(), Box::new(Fwd(log.clone())));
        svc.handle_ctx(Some(3), &post("/v1/run", "", scenario_text()));
        let records = log.records();
        assert_eq!(records.len(), 1);
        let line = records[0].line();
        assert!(
            line.starts_with("method=POST path=/v1/run scenario="),
            "{line}"
        );
        assert!(line.ends_with("cache=miss conn=3"), "{line}");
        assert!(records[0].events > 0, "run streams simulation events");
        assert_eq!(records[0].cache, Some(CacheOutcome::Miss));
        assert_eq!(records[0].conn, Some(3));
    }
}
