//! Readiness-driven front end: one reactor thread multiplexing every
//! connection over `epoll`, with simulation work on the bounded worker
//! pool. Linux only — [`crate::server`] falls back to the portable
//! thread-per-connection pump elsewhere.
//!
//! ## Why raw FFI
//!
//! The crate registry is unreachable in this build environment (see
//! `vendor/README.md`), so there is no `mio`/`libc` to lean on. The
//! reactor declares the five syscalls it needs directly
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`, `fcntl` —
//! plus `read`/`write`/`close` for the eventfd): they are part of the
//! stable Linux syscall ABI, the surface is tiny, and every call site is
//! wrapped in a safe helper that turns `-1` into `io::Error`. The only
//! layout subtlety is `sys::EpollEvent`: on x86-64 the kernel's
//! `struct epoll_event` is **packed** (no padding before the 64-bit data
//! word), hence the `cfg_attr(target_arch = "x86_64", repr(packed))`.
//!
//! ## Threading model
//!
//! * **Reactor thread** — owns the epoll instance, the listener, and
//!   every [`Connection`]. It accepts, reads, parses, frames, writes,
//!   enforces timeouts, and *never* simulates: requests are handed to
//!   the worker pool over a bounded channel with `try_send`, so a full
//!   pool back-pressures into the per-connection pending queues (and
//!   ultimately the requests-per-connection cap + socket buffers)
//!   instead of blocking the event loop. This is also the slow-loris
//!   defense in structural form: a dribbling client costs one
//!   [`Connection`] and a timer scan, never a worker thread.
//! * **Worker threads** — run [`Service::handle_into`], pushing
//!   [`ResponsePart`]s onto the completion queue and waking the reactor
//!   through the eventfd after each part, so streamed `/v1/batch`
//!   chunks go out while later shards are still simulating.
//!
//! Tokens: epoll `data` is `0` for the listener, `1` for the eventfd,
//! and the connection id (always ≥ 2) otherwise.
//!
//! ## Shutdown
//!
//! [`crate::server::ShutdownSignal::trigger`] raises the stop flag and
//! pokes the listener with a loopback connect; the ≤100 ms epoll tick
//! bounds how late the flag is observed either way. The reactor then
//! stops accepting, drops idle connections immediately, lets in-flight
//! and pending requests drain (with a hard deadline), and exits —
//! dropping the job sender, which terminates the worker pool.

use crate::conn::{Connection, TimeoutKind};
use crate::http::HttpError;
use crate::service::{ResponsePart, ResponseSink, Service};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::raw::c_int;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw Linux syscall surface (see the module docs for the rationale).
mod sys {
    use std::os::raw::{c_int, c_void};

    /// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 —
    /// that is the kernel ABI there, not an optimization.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;
}

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the completion-queue eventfd.
const TOKEN_WAKE: u64 = 1;
/// Upper bound on one `epoll_wait` harvest.
const MAX_EVENTS: usize = 256;
/// Event-loop tick: bounds timeout-scan and stop-flag latency.
const TICK_MS: c_int = 100;
/// Hard deadline for draining in-flight work after a shutdown request.
const FORCE_QUIT: Duration = Duration::from_secs(10);
/// Read chunk size per `read` call on a ready socket.
const READ_CHUNK: usize = 16 * 1024;

fn os_err() -> io::Error {
    io::Error::last_os_error()
}

/// Marks a file descriptor non-blocking via `fcntl` (`O_NONBLOCK`).
fn set_nonblocking(fd: c_int) -> io::Result<()> {
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(os_err());
    }
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(os_err());
    }
    Ok(())
}

/// Owned `eventfd` used as the wake pipe of the completion queue.
/// Closed on drop; sharing is via `Arc`, so the fd can never be reused
/// while a worker still holds a handle.
struct EventFd(c_int);

impl EventFd {
    fn new() -> io::Result<EventFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(os_err());
        }
        Ok(EventFd(fd))
    }

    /// Adds 1 to the counter, waking an `epoll_wait` on the fd. Failure
    /// is ignorable: the reactor drains the queue on every tick anyway.
    fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { sys::write(self.0, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter so the level-triggered readiness clears.
    fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = unsafe { sys::read(self.0, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = unsafe { sys::close(self.0) };
    }
}

/// Owned epoll instance.
struct Epoll(c_int);

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(os_err());
        }
        Ok(Epoll(fd))
    }

    fn ctl(&self, op: c_int, fd: c_int, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let ptr = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut sys::EpollEvent
        };
        if unsafe { sys::epoll_ctl(self.0, op, fd, ptr) } < 0 {
            return Err(os_err());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms`; returns the ready prefix of `events`.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: c_int) -> usize {
        let n = unsafe {
            sys::epoll_wait(
                self.0,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        // EINTR (or any error) harvests nothing; the next tick retries.
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { sys::close(self.0) };
    }
}

/// One request handed to the worker pool.
struct Job {
    conn: u64,
    request: crate::http::Request,
}

/// One response part on its way back from a worker.
struct Completion {
    conn: u64,
    part: ResponsePart,
}

/// The worker-side [`ResponseSink`]: parts go onto the shared queue and
/// the reactor is woken per part, so streamed chunks reach the wire
/// while the worker is still simulating later shards.
struct QueueSink {
    conn: u64,
    queue: Arc<Mutex<VecDeque<Completion>>>,
    wake: Arc<EventFd>,
}

impl ResponseSink for QueueSink {
    fn part(&mut self, part: ResponsePart) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Completion {
                conn: self.conn,
                part,
            });
        self.wake.wake();
    }
}

/// Applies response parts straight to the connection's output buffer —
/// the sink behind the reactor-thread fast path, where no completion
/// queue hop is needed.
struct ConnSink<'a>(&'a mut Connection);

impl ResponseSink for ConnSink<'_> {
    fn part(&mut self, part: ResponsePart) {
        self.0.on_part(part);
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    service: &Service,
    queue: &Arc<Mutex<VecDeque<Completion>>>,
    wake: &Arc<EventFd>,
) {
    loop {
        let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match job {
            Ok(job) => {
                let mut sink = QueueSink {
                    conn: job.conn,
                    queue: Arc::clone(queue),
                    wake: Arc::clone(wake),
                };
                service.handle_into(Some(job.conn), &job.request, &mut sink);
            }
            Err(_) => break,
        }
    }
}

/// One registered connection: the socket, its state machine, and the
/// epoll interest mask currently installed.
struct Slot {
    stream: TcpStream,
    state: Connection,
    mask: u32,
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    accepting: bool,
    wake: Arc<EventFd>,
    queue: Arc<Mutex<VecDeque<Completion>>>,
    job_tx: SyncSender<Job>,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    ids: Arc<AtomicU64>,
    /// Connections by id. `BTreeMap` — the serve crate bans hash
    /// collections (simlint R1) so iteration stays deterministic.
    conns: BTreeMap<u64, Slot>,
    stopping: bool,
}

/// Spawns the reactor thread and its worker pool over an already-bound
/// listener. Returns every thread handle (reactor first) for
/// [`crate::server::ServerHandle::join`] to reap.
pub fn spawn(
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    ids: Arc<AtomicU64>,
) -> io::Result<Vec<JoinHandle<()>>> {
    let epoll = Epoll::new()?;
    let wake = Arc::new(EventFd::new()?);
    set_nonblocking(listener.as_raw_fd())?;
    epoll.ctl(
        sys::EPOLL_CTL_ADD,
        listener.as_raw_fd(),
        sys::EPOLLIN,
        TOKEN_LISTENER,
    )?;
    epoll.ctl(sys::EPOLL_CTL_ADD, wake.0, sys::EPOLLIN, TOKEN_WAKE)?;

    let workers = service.config().effective_workers();
    let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(workers.saturating_mul(2).max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let queue: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));

    let mut handles = Vec::with_capacity(workers + 1);
    let reactor = Reactor {
        epoll,
        listener,
        accepting: true,
        wake: Arc::clone(&wake),
        queue: Arc::clone(&queue),
        job_tx,
        service: Arc::clone(&service),
        stop,
        ids,
        conns: BTreeMap::new(),
        stopping: false,
    };
    handles.push(std::thread::spawn(move || reactor_loop(reactor)));
    for _ in 0..workers {
        let job_rx = Arc::clone(&job_rx);
        let service = Arc::clone(&service);
        let queue = Arc::clone(&queue);
        let wake = Arc::clone(&wake);
        handles.push(std::thread::spawn(move || {
            worker_loop(&job_rx, &service, &queue, &wake)
        }));
    }
    Ok(handles)
}

fn reactor_loop(mut r: Reactor) {
    let mut events = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    let mut force_quit: Option<Instant> = None;
    loop {
        let n = r.epoll.wait(&mut events, TICK_MS);
        let now = Instant::now();

        if r.stop.load(Ordering::Acquire) && !r.stopping {
            r.begin_shutdown();
            force_quit = Some(now + FORCE_QUIT);
        }

        for ev in events.iter().take(n) {
            // Copy out of the (possibly packed) struct before use.
            let token = ev.data;
            let revents = ev.events;
            match token {
                TOKEN_LISTENER => r.accept_ready(now),
                TOKEN_WAKE => r.wake.drain(),
                id => r.conn_ready(id, revents, now),
            }
        }

        r.drain_completions();
        r.dispatch_all();
        if !r.stopping {
            r.scan_timeouts(now);
        }
        r.flush_and_reap(now);

        if r.stopping && (r.conns.is_empty() || force_quit.is_some_and(|d| now >= d)) {
            break;
        }
    }
    // Dropping the Reactor drops job_tx → the worker pool drains and
    // exits; remaining sockets close with their Slots.
}

impl Reactor {
    fn begin_shutdown(&mut self) {
        self.stopping = true;
        if self.accepting {
            let _ = self.epoll.ctl(
                sys::EPOLL_CTL_DEL,
                self.listener.as_raw_fd(),
                0,
                TOKEN_LISTENER,
            );
            self.accepting = false;
        }
        for slot in self.conns.values_mut() {
            if slot.state.is_idle() {
                // Idle keep-alive connections close promptly…
                slot.state.abort();
            } else {
                // …while in-flight and pipelined work drains first.
                slot.state.eof();
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.stop.load(Ordering::Acquire) {
                        // The shutdown wake-up connection (or a client
                        // racing it): refuse politely by closing.
                        continue;
                    }
                    if set_nonblocking(stream.as_raw_fd()).is_err() {
                        continue;
                    }
                    // Responses are flushed as they complete; Nagle would
                    // hold small ones back against pipelined clients.
                    let _ = stream.set_nodelay(true);
                    let id = self.ids.fetch_add(1, Ordering::Relaxed);
                    let mask = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if self
                        .epoll
                        .ctl(sys::EPOLL_CTL_ADD, stream.as_raw_fd(), mask, id)
                        .is_err()
                    {
                        continue;
                    }
                    let config = self.service.config();
                    let state = Connection::new(id, config.max_body, config.request_cap(), now);
                    self.conns.insert(
                        id,
                        Slot {
                            stream,
                            state,
                            mask,
                        },
                    );
                    if self.conns.len() >= config.max_conns {
                        // At the connection cap: stop accepting so the
                        // flood queues in the OS listen backlog instead
                        // of growing process state. Re-registered as
                        // connections close.
                        let _ = self.epoll.ctl(
                            sys::EPOLL_CTL_DEL,
                            self.listener.as_raw_fd(),
                            0,
                            TOKEN_LISTENER,
                        );
                        self.accepting = false;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A failed accept (peer reset mid-handshake) is the
                // peer's problem, not a reason to stop serving.
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, id: u64, revents: u32, now: Instant) {
        let Some(slot) = self.conns.get_mut(&id) else {
            return;
        };
        if revents & sys::EPOLLERR != 0 {
            slot.state.abort();
            return;
        }
        if revents & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            read_ready(slot, &self.service, now);
        }
        if revents & sys::EPOLLOUT != 0 {
            write_ready(slot, now);
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let next = self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            let Some(completion) = next else { break };
            // A completion for a connection that died mid-request is
            // simply dropped — the work was already logged.
            if let Some(slot) = self.conns.get_mut(&completion.conn) {
                slot.state.on_part(completion.part);
            }
        }
    }

    /// Offers every dispatchable request first to the service's
    /// no-simulation fast path (served inline, right on this thread —
    /// a pipelined burst of cache hits drains in one loop iteration),
    /// then to the worker pool. `try_send` keeps the reactor thread
    /// non-blocking: when the pool is saturated the request stays
    /// pending on its connection and is re-offered on the next tick (a
    /// completion implies a freed worker).
    fn dispatch_all(&mut self) {
        for (&id, slot) in self.conns.iter_mut() {
            while let Some(request) = slot.state.take_dispatch() {
                let mut fast = ConnSink(&mut slot.state);
                if self.service.handle_fast(Some(id), &request, &mut fast) {
                    continue; // served inline; the next pipelined
                              // request (if any) is now dispatchable
                }
                match self.job_tx.try_send(Job { conn: id, request }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => slot.state.undo_dispatch(job.request),
                    Err(TrySendError::Disconnected(_)) => slot.state.abort(),
                }
                break; // one in-flight per connection
            }
        }
    }

    fn scan_timeouts(&mut self, now: Instant) {
        let idle = self.service.config().idle_timeout();
        let header = self.service.config().header_timeout();
        for (&id, slot) in self.conns.iter_mut() {
            match slot.state.timed_out(now, idle, header) {
                None => {}
                Some(TimeoutKind::Idle) => slot.state.abort(),
                Some(TimeoutKind::MidRequest) => {
                    let e = HttpError::Timeout;
                    let response =
                        self.service
                            .handle_unparsable(Some(id), e.status(), &e.to_string());
                    slot.state.frame_error(response);
                }
            }
        }
    }

    /// Flushes pending output opportunistically, reconciles each
    /// connection's epoll interest mask, and reaps finished connections.
    fn flush_and_reap(&mut self, now: Instant) {
        let mut done: Vec<u64> = Vec::new();
        for (&id, slot) in self.conns.iter_mut() {
            if slot.state.wants_write() {
                write_ready(slot, now);
            }
            if slot.state.finished() {
                done.push(id);
                continue;
            }
            let mut mask = 0;
            if slot.state.wants_read() {
                mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
            }
            if slot.state.wants_write() {
                mask |= sys::EPOLLOUT;
            }
            if mask != slot.mask
                && self
                    .epoll
                    .ctl(sys::EPOLL_CTL_MOD, slot.stream.as_raw_fd(), mask, id)
                    .is_ok()
            {
                slot.mask = mask;
            }
        }
        for id in done {
            if let Some(slot) = self.conns.remove(&id) {
                let _ = self
                    .epoll
                    .ctl(sys::EPOLL_CTL_DEL, slot.stream.as_raw_fd(), 0, id);
                // Dropping the Slot closes the socket.
            }
        }
        if !self.accepting
            && !self.stopping
            && self.conns.len() < self.service.config().max_conns
            && self
                .epoll
                .ctl(
                    sys::EPOLL_CTL_ADD,
                    self.listener.as_raw_fd(),
                    sys::EPOLLIN,
                    TOKEN_LISTENER,
                )
                .is_ok()
        {
            self.accepting = true;
        }
    }
}

/// Drains a readable socket into the connection's parser.
fn read_ready(slot: &mut Slot, service: &Service, now: Instant) {
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match (&slot.stream).read(&mut buf) {
            Ok(0) => {
                slot.state.eof();
                break;
            }
            Ok(n) => {
                if let Err(e) = slot.state.on_bytes(&buf[..n], now) {
                    let response = service.handle_unparsable(
                        Some(slot.state.id()),
                        e.status(),
                        &e.to_string(),
                    );
                    slot.state.poison(response);
                    break;
                }
                if !slot.state.wants_read() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                slot.state.abort();
                break;
            }
        }
    }
}

/// Writes as much buffered output as the socket accepts.
fn write_ready(slot: &mut Slot, now: Instant) {
    while slot.state.wants_write() {
        match (&slot.stream).write(slot.state.writable()) {
            Ok(0) => {
                slot.state.abort();
                break;
            }
            Ok(n) => slot.state.advance_write(n, now),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                slot.state.abort();
                break;
            }
        }
    }
}
