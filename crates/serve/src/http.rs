//! Hand-rolled HTTP/1.1 wire layer: an incremental request parser and a
//! keep-alive-aware response writer.
//!
//! The crate registry is unreachable in this build environment (see
//! `vendor/README.md`), so the wire layer is implemented directly over
//! byte buffers in the same vendoring philosophy: the *minimal* slice of
//! HTTP/1.1 the service needs, written defensively.
//!
//! * [`RequestParser`] is a resumable state machine over a per-connection
//!   buffer: bytes go in via [`RequestParser::feed`] in whatever pieces
//!   the socket delivers them, complete requests come out via
//!   [`RequestParser::next_request`]. One read may yield several
//!   pipelined requests; a partial request is carried across reads. The
//!   head is capped at [`MAX_HEAD_BYTES`]; bodies are capped by the
//!   configured limit *before* any body byte is consumed
//!   ([`HttpError::BodyTooLarge`] → `413`).
//! * Responses carry explicit `Content-Length` + `Connection` framing
//!   ([`Response::serialize`]), so one connection can carry many
//!   exchanges; [`Response::serialize_chunked_head`] plus
//!   [`chunk_frame`]/[`CHUNK_END`] frame streamed bodies with
//!   `Transfer-Encoding: chunked`.
//!
//! Connection lifetime policy (idle/header timeouts, requests-per-
//! connection cap) lives in the transports ([`crate::reactor`],
//! [`crate::server`]); this module only parses and frames.

use std::collections::BTreeMap;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A problem reading or parsing one request. Each variant maps to one
/// response status (see [`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-exchange.
    Io(std::io::Error),
    /// The request line was not `METHOD target HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// The request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// A body-bearing request had no (or an unparsable) `Content-Length`
    /// (chunked uploads are not supported).
    LengthRequired,
    /// `Content-Length` exceeded the configured body cap. The body was
    /// *not* read.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The client stalled mid-request past the header timeout (the
    /// slow-loris defense; raised by the transports, not the parser).
    Timeout,
}

impl HttpError {
    /// The response status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::BadRequestLine(_) | HttpError::BadHeader(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Timeout => 408,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::LengthRequired => {
                write!(
                    f,
                    "request body needs a Content-Length (chunked unsupported)"
                )
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            HttpError::Timeout => write!(f, "client stalled mid-request past the header timeout"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string (`/v1/run`).
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers with lower-cased names; the last occurrence wins.
    pub headers: BTreeMap<String, String>,
    /// The request body (empty for bodiless methods).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The decoded value of one query parameter (`?policy=rr%2810s%29` →
    /// `rr(10s)`), or `None` when the parameter is absent or its
    /// percent-encoding is broken.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .find_map(|kv| {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                (k == name).then(|| percent_decode(v))?
            })
    }
}

/// One request as it came off the wire, with the connection decision the
/// head implies: `close` is true when the client sent
/// `Connection: close`, or spoke HTTP/1.0 without asking for keep-alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The parsed request.
    pub request: Request,
    /// Whether the connection must close after this exchange.
    pub close: bool,
}

/// Decodes `%XX` escapes and `+` spaces. Returns `None` on a truncated
/// or non-hex escape.
pub fn percent_decode(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Where the parser is inside the current request.
enum ParseState {
    /// Accumulating the request line + headers, waiting for the blank
    /// line.
    Head,
    /// Head parsed; waiting for `remaining` more body bytes.
    Body {
        request: Request,
        close: bool,
        remaining: usize,
    },
}

/// Incremental, resumable HTTP/1.1 request parser over a per-connection
/// buffer.
///
/// Feed it whatever the socket delivers; pull complete requests until it
/// returns `Ok(None)` (needs more bytes). A parse error poisons the
/// connection — the caller must respond with [`HttpError::status`] and
/// close, because the byte stream can no longer be framed.
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted after each parsed request).
    start: usize,
    state: ParseState,
    max_body: usize,
}

impl RequestParser {
    /// A fresh parser enforcing `max_body` on request bodies.
    pub fn new(max_body: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            state: ParseState::Head,
            max_body,
        }
    }

    /// Appends bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the parser sits *between* requests (nothing buffered,
    /// nothing partial) — the distinction between the idle timeout and
    /// the header (slow-loris) timeout.
    pub fn is_between_requests(&self) -> bool {
        matches!(self.state, ParseState::Head) && self.buf.len() == self.start
    }

    /// Pulls the next complete request out of the buffer, or `Ok(None)`
    /// when more bytes are needed.
    pub fn next_request(&mut self) -> Result<Option<ParsedRequest>, HttpError> {
        loop {
            match &mut self.state {
                ParseState::Head => {
                    // Tolerate blank lines between pipelined requests
                    // (RFC 9112 §2.2 says to ignore them).
                    while matches!(self.buf.get(self.start), Some(b'\r' | b'\n')) {
                        self.start += 1;
                    }
                    let pending = &self.buf[self.start..];
                    let Some(head_len) = find_head_end(pending) else {
                        if pending.len() > MAX_HEAD_BYTES {
                            return Err(HttpError::HeadTooLarge);
                        }
                        self.compact();
                        return Ok(None);
                    };
                    if head_len > MAX_HEAD_BYTES {
                        return Err(HttpError::HeadTooLarge);
                    }
                    let (request, close) = parse_head(&pending[..head_len])?;
                    self.start += head_len;
                    let remaining = declared_body_len(&request, self.max_body)?;
                    self.state = ParseState::Body {
                        request,
                        close,
                        remaining,
                    };
                }
                ParseState::Body {
                    request,
                    close,
                    remaining,
                } => {
                    let available = self.buf.len() - self.start;
                    if available < *remaining {
                        self.compact();
                        return Ok(None);
                    }
                    let body = self.buf[self.start..self.start + *remaining].to_vec();
                    self.start += *remaining;
                    let mut request = std::mem::replace(
                        request,
                        Request {
                            method: String::new(),
                            path: String::new(),
                            query: String::new(),
                            headers: BTreeMap::new(),
                            body: Vec::new(),
                        },
                    );
                    request.body = body;
                    let close = *close;
                    self.state = ParseState::Head;
                    self.compact();
                    return Ok(Some(ParsedRequest { request, close }));
                }
            }
        }
    }

    /// Drops the consumed prefix so the buffer stays bounded by one
    /// in-progress request, not the connection's lifetime traffic.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Finds the end of the head (one past the blank line), accepting both
/// CRLF and bare-LF line endings.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            match bytes.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if bytes.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses the request line + headers; returns the (bodiless) request and
/// the connection-close decision its head implies.
fn parse_head(head: &[u8]) -> Result<(Request, bool), HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequestLine("<non-UTF-8 head>".to_string()))?;
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));

    let request_line = lines.next().unwrap_or("").to_string();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), t, v)
        }
        _ => return Err(HttpError::BadRequestLine(request_line)),
    };
    let http_10 = version == "HTTP/1.0";

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let connection = headers
        .get("connection")
        .map(|v| v.to_ascii_lowercase())
        .unwrap_or_default();
    let close = connection.split(',').any(|t| t.trim() == "close")
        || (http_10 && !connection.split(',').any(|t| t.trim() == "keep-alive"));

    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    let path = percent_decode(raw_path).unwrap_or_else(|| raw_path.to_string());

    Ok((
        Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        close,
    ))
}

/// The declared body length a parsed head commits the stream to, checked
/// against the configured cap before a single body byte is consumed.
fn declared_body_len(request: &Request, max_body: usize) -> Result<usize, HttpError> {
    if request.method != "POST" && request.method != "PUT" {
        return Ok(0);
    }
    let declared: usize = request
        .headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or(HttpError::LengthRequired)?;
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    Ok(declared)
}

/// One response, framed on the way out by [`Response::serialize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// Extra headers as `(name, value)` pairs, in emission order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

/// Terminal frame of a chunked body: the zero-length chunk.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

/// Frames one chunk of a `Transfer-Encoding: chunked` body. Empty input
/// produces no frame (an empty chunk would terminate the body).
pub fn chunk_frame(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

impl Response {
    /// A response with a body and content type.
    pub fn with_body(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase of the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            _ => "Response",
        }
    }

    fn head_prefix(&self) -> String {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head
    }

    /// Serializes the full response with `Content-Length` framing and the
    /// given `Connection` decision.
    pub fn serialize(&self, close: bool) -> Vec<u8> {
        let mut out = self.head_prefix().into_bytes();
        out.extend_from_slice(
            format!(
                "content-length: {}\r\nconnection: {}\r\n\r\n",
                self.body.len(),
                if close { "close" } else { "keep-alive" }
            )
            .as_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes status line + headers for a streamed response: chunked
    /// transfer coding, no `Content-Length`. The body (which must be
    /// empty here) follows as [`chunk_frame`]s ending in [`CHUNK_END`].
    pub fn serialize_chunked_head(&self, close: bool) -> Vec<u8> {
        let mut out = self.head_prefix().into_bytes();
        out.extend_from_slice(
            format!(
                "transfer-encoding: chunked\r\nconnection: {}\r\n\r\n",
                if close { "close" } else { "keep-alive" }
            )
            .as_bytes(),
        );
        out
    }

    /// Serializes status line + headers + body to the wire with
    /// `Connection: close` framing — the one-exchange path (error
    /// responses, the threads fallback's final exchange).
    pub fn write_to(&self, stream: &mut impl std::io::Write) -> std::io::Result<()> {
        stream.write_all(&self.serialize(true))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(parser: &mut RequestParser) -> Vec<ParsedRequest> {
        let mut out = Vec::new();
        while let Some(parsed) = parser.next_request().expect("parses") {
            out.push(parsed);
        }
        out
    }

    #[test]
    fn percent_decoding_handles_escapes_and_rejects_broken_ones() {
        assert_eq!(percent_decode("rr%2810s%29").as_deref(), Some("rr(10s)"));
        assert_eq!(percent_decode("a+b").as_deref(), Some("a b"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
    }

    #[test]
    fn query_params_decode() {
        let req = Request {
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            query: "policy=rr%2810s%29&shards=4&flag".to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("policy").as_deref(), Some("rr(10s)"));
        assert_eq!(req.query_param("shards").as_deref(), Some("4"));
        assert_eq!(req.query_param("flag").as_deref(), Some(""));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn parses_a_complete_request_in_one_feed() {
        let mut parser = RequestParser::new(1024);
        parser
            .feed(b"POST /v1/run?policy=fcfs HTTP/1.1\r\nhost: t\r\ncontent-length: 4\r\n\r\nbody");
        let parsed = parser.next_request().unwrap().expect("complete");
        assert_eq!(parsed.request.method, "POST");
        assert_eq!(parsed.request.path, "/v1/run");
        assert_eq!(parsed.request.query, "policy=fcfs");
        assert_eq!(parsed.request.body, b"body");
        assert!(!parsed.close, "HTTP/1.1 defaults to keep-alive");
        assert!(parser.next_request().unwrap().is_none());
        assert!(parser.is_between_requests());
    }

    #[test]
    fn resumes_across_arbitrary_byte_boundaries() {
        let wire = b"POST /v1/run HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        for split in 1..wire.len() {
            let mut parser = RequestParser::new(64);
            parser.feed(&wire[..split]);
            let first = parser.next_request().unwrap();
            parser.feed(&wire[split..]);
            let parsed = match first {
                Some(p) => p,
                None => parser.next_request().unwrap().expect("complete after rest"),
            };
            assert_eq!(parsed.request.body, b"hello", "split at {split}");
            assert!(!parser.is_between_requests() || parser.next_request().unwrap().is_none());
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut parser = RequestParser::new(64);
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nPOST /c HTTP/1.1\r\ncontent-length: 2\r\n\r\nok");
        let parsed = parse_all(&mut parser);
        assert_eq!(
            parsed
                .iter()
                .map(|p| p.request.path.as_str())
                .collect::<Vec<_>>(),
            vec!["/a", "/b", "/c"]
        );
        assert_eq!(parsed[2].request.body, b"ok");
        assert!(parser.is_between_requests());
    }

    #[test]
    fn connection_close_and_http_10_are_detected() {
        let mut parser = RequestParser::new(64);
        parser.feed(b"GET /a HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(parser.next_request().unwrap().unwrap().close);

        let mut parser = RequestParser::new(64);
        parser.feed(b"GET /a HTTP/1.0\r\n\r\n");
        assert!(
            parser.next_request().unwrap().unwrap().close,
            "1.0 defaults to close"
        );

        let mut parser = RequestParser::new(64);
        parser.feed(b"GET /a HTTP/1.0\r\nconnection: keep-alive\r\n\r\n");
        assert!(!parser.next_request().unwrap().unwrap().close);
    }

    #[test]
    fn oversized_declared_body_errors_before_body_bytes_arrive() {
        let mut parser = RequestParser::new(16);
        parser.feed(b"POST /v1/run HTTP/1.1\r\ncontent-length: 1048576\r\n\r\n");
        match parser.next_request() {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert_eq!(declared, 1048576);
                assert_eq!(limit, 16);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn post_without_content_length_is_length_required() {
        let mut parser = RequestParser::new(16);
        parser.feed(b"POST /v1/run HTTP/1.1\r\n\r\n");
        assert!(matches!(
            parser.next_request(),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn unbounded_head_is_rejected() {
        let mut parser = RequestParser::new(16);
        parser.feed(b"GET /a HTTP/1.1\r\n");
        let filler = format!("x-junk: {}\r\n", "a".repeat(4096));
        for _ in 0..8 {
            parser.feed(filler.as_bytes());
        }
        assert!(matches!(
            parser.next_request(),
            Err(HttpError::HeadTooLarge)
        ));
    }

    #[test]
    fn responses_serialize_with_length_and_connection_framing() {
        let response = Response::with_body(200, "application/json", "{}").header("etag", "\"abc\"");
        let close = String::from_utf8(response.serialize(true)).unwrap();
        assert!(close.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(close.contains("content-type: application/json\r\n"));
        assert!(close.contains("etag: \"abc\"\r\n"));
        assert!(close.contains("content-length: 2\r\n"));
        assert!(close.contains("connection: close\r\n"));
        assert!(close.ends_with("\r\n\r\n{}"));

        let keep = String::from_utf8(response.serialize(false)).unwrap();
        assert!(keep.contains("connection: keep-alive\r\n"));

        let mut out = Vec::new();
        response.write_to(&mut out).unwrap();
        assert_eq!(out, response.serialize(true));
    }

    #[test]
    fn chunked_head_and_frames() {
        let head = Response::with_body(200, "application/json", "").serialize_chunked_head(false);
        let head = String::from_utf8(head).unwrap();
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(head.contains("connection: keep-alive\r\n"));
        assert!(!head.contains("content-length"));

        assert_eq!(chunk_frame(b"hello"), b"5\r\nhello\r\n");
        assert!(chunk_frame(b"").is_empty());
        assert_eq!(CHUNK_END, b"0\r\n\r\n");
    }

    #[test]
    fn http_error_statuses_match_the_contract() {
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 10,
                limit: 5
            }
            .status(),
            413
        );
        assert_eq!(HttpError::LengthRequired.status(), 411);
        assert_eq!(HttpError::HeadTooLarge.status(), 431);
        assert_eq!(HttpError::BadRequestLine(String::new()).status(), 400);
        assert_eq!(HttpError::Timeout.status(), 408);
    }
}
