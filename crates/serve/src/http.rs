//! Hand-rolled HTTP/1.1 request parser and response writer.
//!
//! The crate registry is unreachable in this build environment (see
//! `vendor/README.md`), so the wire layer is implemented directly over
//! [`std::io`] in the same vendoring philosophy: the *minimal* slice of
//! HTTP/1.1 the service needs, written defensively.
//!
//! * Requests are `method path[?query] HTTP/1.x` + headers + an optional
//!   `Content-Length` body. Header blocks are capped at
//!   [`MAX_HEAD_BYTES`]; bodies are capped by the caller-supplied limit
//!   *before* the body is read, so an oversized upload is rejected
//!   without draining the stream ([`HttpError::BodyTooLarge`] → `413`).
//! * Responses always carry `Content-Length` and `Connection: close`;
//!   every connection serves exactly one exchange. Keeping connection
//!   lifetime equal to request lifetime is what makes the worker pool's
//!   accounting trivial — a hostile client can hold at most one worker,
//!   and only for [`IO_TIMEOUT`].

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection read/write timeout: a client that stops mid-request
/// frees its worker after this long.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A problem reading or parsing one request. Each variant maps to one
/// response status (see [`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or timed out mid-exchange.
    Io(std::io::Error),
    /// The request line was not `METHOD target HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// The request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// A body-bearing request had no (or an unparsable) `Content-Length`
    /// (chunked uploads are not supported).
    LengthRequired,
    /// `Content-Length` exceeded the configured body cap. The body was
    /// *not* read.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl HttpError {
    /// The response status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::BadRequestLine(_) | HttpError::BadHeader(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::LengthRequired => {
                write!(
                    f,
                    "request body needs a Content-Length (chunked unsupported)"
                )
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string (`/v1/run`).
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers with lower-cased names; the last occurrence wins.
    pub headers: BTreeMap<String, String>,
    /// The request body (empty for bodiless methods).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The decoded value of one query parameter (`?policy=rr%2810s%29` →
    /// `rr(10s)`), or `None` when the parameter is absent or its
    /// percent-encoding is broken.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .find_map(|kv| {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                (k == name).then(|| percent_decode(v))?
            })
    }
}

/// Decodes `%XX` escapes and `+` spaces. Returns `None` on a truncated
/// or non-hex escape.
pub fn percent_decode(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Reads and parses one request from `stream`. `max_body` bounds the
/// body; a larger declared `Content-Length` errors *before* any body
/// byte is read.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(&mut reader, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), t, v)
        }
        _ => return Err(HttpError::BadRequestLine(request_line)),
    };
    let _ = version;

    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(&mut reader, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    let path = percent_decode(raw_path).unwrap_or_else(|| raw_path.to_string());

    let body = if method == "POST" || method == "PUT" {
        let declared: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or(HttpError::LengthRequired)?;
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        reader.read_exact(&mut body)?;
        body
    } else {
        Vec::new()
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, charging it against the
/// shared head budget.
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )));
    }
    *budget = budget.checked_sub(n).ok_or(HttpError::HeadTooLarge)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// One response, always written with `Content-Length` and
/// `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// Extra headers as `(name, value)` pairs, in emission order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and content type.
    pub fn with_body(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase of the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            _ => "Response",
        }
    }

    /// Serializes status line + headers + body to the wire.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!(
            "content-length: {}\r\nconnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_rejects_broken_ones() {
        assert_eq!(percent_decode("rr%2810s%29").as_deref(), Some("rr(10s)"));
        assert_eq!(percent_decode("a+b").as_deref(), Some("a b"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
    }

    #[test]
    fn query_params_decode() {
        let req = Request {
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            query: "policy=rr%2810s%29&shards=4&flag".to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("policy").as_deref(), Some("rr(10s)"));
        assert_eq!(req.query_param("shards").as_deref(), Some("4"));
        assert_eq!(req.query_param("flag").as_deref(), Some(""));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::with_body(200, "application/json", "{}")
            .header("etag", "\"abc\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("etag: \"abc\"\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn http_error_statuses_match_the_contract() {
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 10,
                limit: 5
            }
            .status(),
            413
        );
        assert_eq!(HttpError::LengthRequired.status(), 411);
        assert_eq!(HttpError::HeadTooLarge.status(), 431);
        assert_eq!(HttpError::BadRequestLine(String::new()).status(), 400);
    }
}
