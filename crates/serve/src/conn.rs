//! Per-connection state machine for persistent (keep-alive) HTTP
//! connections.
//!
//! [`Connection`] is transport-free: bytes go in ([`Connection::on_bytes`]),
//! requests ready for dispatch come out ([`Connection::take_dispatch`]),
//! response parts come back ([`Connection::on_part`]) and are framed into
//! an outgoing byte buffer the transport drains
//! ([`Connection::writable`] / [`Connection::advance_write`]). The epoll
//! reactor drives one of these per socket; keeping the state machine free
//! of file descriptors makes every lifecycle edge — pipelining order, the
//! requests-per-connection cap, poisoned parses, both timeout kinds,
//! graceful shutdown — testable without a socket.
//!
//! ## Lifecycle
//!
//! ```text
//!             bytes            take_dispatch         on_part(..)
//!  [reading] ───────▶ pending ───────────────▶ in-flight ─────▶ out buffer
//!      │                                            │(close/cap/poison/abort)
//!      │ idle timeout (between requests)            ▼
//!      ├──────────────────────────────────▶ [closing: flush, then drop]
//!      │ header timeout (mid-request) → frame 408, then closing
//!      └ EOF / Connection: close / request cap → drain, then closing
//! ```
//!
//! Exactly **one request is in flight per connection** — that is what
//! keeps pipelined responses in request order without any reordering
//! machinery: the next pending request is dispatched only after the
//! current one's final part arrived.

use crate::http::{chunk_frame, HttpError, Request, RequestParser, Response, CHUNK_END};
use crate::service::ResponsePart;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Which inactivity limit a connection exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// Idle *between* requests past the idle timeout: close quietly (the
    /// normal end of a keep-alive conversation).
    Idle,
    /// Stalled *inside* a request head/body past the header timeout —
    /// the slow-loris signature: answer `408` and close.
    MidRequest,
}

/// A parsed request waiting for a worker, with the close decision its
/// head (or the request cap) implies.
#[derive(Debug)]
struct PendingRequest {
    request: Request,
    close: bool,
}

/// State of one persistent connection (see the module docs).
pub struct Connection {
    id: u64,
    parser: RequestParser,
    pending: VecDeque<PendingRequest>,
    /// `Some(close)` while a request is being handled; the flag is the
    /// `Connection` framing decision for its response.
    in_flight: Option<bool>,
    /// An unparsable-input error response that must wait for the
    /// in-flight response before it can be framed (ordering).
    poisoned: Option<Response>,
    out: Vec<u8>,
    out_pos: usize,
    accepted: usize,
    cap: Option<usize>,
    reads_done: bool,
    closing: bool,
    last_activity: Instant,
}

impl Connection {
    /// A fresh connection: `cap` is the requests-per-connection limit
    /// (`None` = unlimited), `max_body` the request-body cap.
    pub fn new(id: u64, max_body: usize, cap: Option<usize>, now: Instant) -> Self {
        Connection {
            id,
            parser: RequestParser::new(max_body),
            pending: VecDeque::new(),
            in_flight: None,
            poisoned: None,
            out: Vec::new(),
            out_pos: 0,
            accepted: 0,
            cap,
            reads_done: false,
            closing: false,
            last_activity: now,
        }
    }

    /// The server-assigned connection id (the request log's `conn=`
    /// column).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Feeds bytes from the socket and parses out every complete
    /// pipelined request. A request carrying `Connection: close` — or
    /// the one that reaches the cap — is the connection's last: later
    /// bytes are left unread and the read side is done. A parse error
    /// poisons the connection (the caller should build the error
    /// response and [`Connection::poison`] it).
    pub fn on_bytes(&mut self, bytes: &[u8], now: Instant) -> Result<(), HttpError> {
        self.last_activity = now;
        if self.reads_done || self.closing {
            return Ok(());
        }
        self.parser.feed(bytes);
        while !self.reads_done {
            match self.parser.next_request()? {
                Some(parsed) => {
                    self.accepted += 1;
                    let capped = self.cap.is_some_and(|cap| self.accepted >= cap);
                    let close = parsed.close || capped;
                    self.pending.push_back(PendingRequest {
                        request: parsed.request,
                        close,
                    });
                    if close {
                        self.reads_done = true;
                    }
                }
                None => break,
            }
        }
        Ok(())
    }

    /// The peer half-closed (read returned 0): no more requests will
    /// arrive; finish what is queued, then close.
    pub fn eof(&mut self) {
        self.reads_done = true;
    }

    /// Hard-stop the connection: discard all queued work and buffered
    /// output (IO error, forced shutdown, idle-timeout close).
    pub fn abort(&mut self) {
        self.closing = true;
        self.reads_done = true;
        self.pending.clear();
        self.in_flight = None;
        self.poisoned = None;
        self.out.clear();
        self.out_pos = 0;
    }

    /// The byte stream turned unparsable: respond with `error` (after
    /// the in-flight response, if any, to preserve ordering) and close.
    /// Already-parsed pending requests are dropped — the connection is
    /// done either way, and the client learns why.
    pub fn poison(&mut self, error: Response) {
        self.reads_done = true;
        self.pending.clear();
        if self.in_flight.is_some() {
            self.poisoned = Some(error);
        } else {
            self.frame_error(error);
        }
    }

    /// Frames an error response with `Connection: close` and marks the
    /// connection closing (also the `408` path for a mid-request stall).
    pub fn frame_error(&mut self, error: Response) {
        self.out.extend_from_slice(&error.serialize(true));
        self.closing = true;
        self.reads_done = true;
        self.pending.clear();
    }

    /// Pops the next request for dispatch, if none is in flight. The
    /// one-in-flight discipline is what keeps pipelined responses in
    /// request order.
    pub fn take_dispatch(&mut self) -> Option<Request> {
        if self.in_flight.is_some() || self.closing {
            return None;
        }
        let p = self.pending.pop_front()?;
        self.in_flight = Some(p.close);
        Some(p.request)
    }

    /// Returns a request taken by [`Connection::take_dispatch`] that
    /// could not be enqueued (worker queue full) back to the front of
    /// the pending queue.
    pub fn undo_dispatch(&mut self, request: Request) {
        let close = self.in_flight.take().unwrap_or(false);
        self.pending.push_front(PendingRequest { request, close });
    }

    /// Routes one response part from the worker into the outgoing
    /// buffer, applying the wire framing.
    pub fn on_part(&mut self, part: ResponsePart) {
        let close = self.in_flight.unwrap_or(true);
        match part {
            ResponsePart::Full(r) => {
                self.out.extend_from_slice(&r.serialize(close));
                self.complete(close);
            }
            ResponsePart::StreamHead(h) => {
                self.out.extend_from_slice(&h.serialize_chunked_head(close));
            }
            ResponsePart::StreamChunk(c) => {
                self.out.extend_from_slice(&chunk_frame(&c));
            }
            ResponsePart::StreamEnd => {
                self.out.extend_from_slice(CHUNK_END);
                self.complete(close);
            }
            ResponsePart::StreamAbort(_) => {
                // The head is already on the wire; all the server can do
                // is truncate — close without the terminal chunk so the
                // client sees a short body, never a wrong one.
                self.in_flight = None;
                self.poisoned = None;
                self.pending.clear();
                self.reads_done = true;
                self.closing = true;
            }
        }
    }

    fn complete(&mut self, close: bool) {
        self.in_flight = None;
        if close {
            self.closing = true;
            self.reads_done = true;
            self.pending.clear();
        }
        if let Some(error) = self.poisoned.take() {
            self.frame_error(error);
        }
    }

    /// Whether the transport should keep the read side registered.
    pub fn wants_read(&self) -> bool {
        !self.reads_done && !self.closing
    }

    /// Whether buffered output is waiting for the socket.
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The unwritten output bytes.
    pub fn writable(&self) -> &[u8] {
        &self.out[self.out_pos..]
    }

    /// Records `n` bytes written; recycles the buffer once drained.
    pub fn advance_write(&mut self, n: usize, now: Instant) {
        self.out_pos += n;
        self.last_activity = now;
        if self.out_pos >= self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Whether a request is being handled right now.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Whether parsed requests are waiting for dispatch.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the connection sits idle between requests with nothing
    /// queued, in flight, or buffered — safe to drop instantly on
    /// shutdown.
    pub fn is_idle(&self) -> bool {
        self.parser.is_between_requests()
            && self.pending.is_empty()
            && self.in_flight.is_none()
            && self.poisoned.is_none()
            && !self.wants_write()
    }

    /// Which timeout (if any) the connection exceeded at `now`. Never
    /// fires while a request is queued, in flight, or flushing — only
    /// genuine client inactivity counts.
    pub fn timed_out(&self, now: Instant, idle: Duration, header: Duration) -> Option<TimeoutKind> {
        if self.closing
            || self.in_flight.is_some()
            || !self.pending.is_empty()
            || self.wants_write()
        {
            return None;
        }
        let elapsed = now.saturating_duration_since(self.last_activity);
        if self.parser.is_between_requests() {
            (elapsed >= idle).then_some(TimeoutKind::Idle)
        } else {
            (elapsed >= header).then_some(TimeoutKind::MidRequest)
        }
    }

    /// Whether the connection is finished and the transport should close
    /// the socket: everything owed to the client is flushed, and no more
    /// work can arrive.
    pub fn finished(&self) -> bool {
        let flushed = !self.wants_write();
        if self.closing {
            return flushed;
        }
        self.reads_done
            && flushed
            && self.in_flight.is_none()
            && self.pending.is_empty()
            && self.poisoned.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;

    fn conn(cap: Option<usize>) -> Connection {
        Connection::new(7, 1024, cap, Instant::now())
    }

    fn ok_response() -> Response {
        Response::with_body(200, "text/plain", "ok\n")
    }

    #[test]
    fn pipelined_requests_dispatch_one_at_a_time_in_order() {
        let mut c = conn(None);
        c.on_bytes(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
            Instant::now(),
        )
        .unwrap();
        let first = c.take_dispatch().unwrap();
        assert_eq!(first.path, "/a");
        assert!(c.take_dispatch().is_none(), "one in flight at a time");
        c.on_part(ResponsePart::Full(ok_response()));
        let second = c.take_dispatch().unwrap();
        assert_eq!(second.path, "/b");
        c.on_part(ResponsePart::Full(ok_response()));
        let out = String::from_utf8(c.writable().to_vec()).unwrap();
        assert_eq!(out.matches("HTTP/1.1 200").count(), 2);
        assert!(out.contains("connection: keep-alive"));
        assert!(!c.finished(), "keep-alive connection stays open");
    }

    #[test]
    fn request_cap_forces_close_and_drops_the_excess() {
        let mut c = conn(Some(2));
        c.on_bytes(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
            Instant::now(),
        )
        .unwrap();
        assert!(!c.wants_read(), "reads stop at the cap");
        c.take_dispatch().unwrap();
        c.on_part(ResponsePart::Full(ok_response()));
        let capped = c.take_dispatch().unwrap();
        assert_eq!(capped.path, "/b");
        c.on_part(ResponsePart::Full(ok_response()));
        assert!(c.take_dispatch().is_none(), "/c never dispatches");
        let out = String::from_utf8(c.writable().to_vec()).unwrap();
        assert!(out.contains("connection: keep-alive"));
        assert!(out.contains("connection: close"), "cap-th response closes");
        c.advance_write(c.writable().len(), Instant::now());
        assert!(c.finished());
    }

    #[test]
    fn connection_close_header_is_honored() {
        let mut c = conn(None);
        c.on_bytes(
            b"GET /a HTTP/1.1\r\nconnection: close\r\n\r\n",
            Instant::now(),
        )
        .unwrap();
        let r = c.take_dispatch().unwrap();
        assert_eq!(r.path, "/a");
        c.on_part(ResponsePart::Full(ok_response()));
        assert!(String::from_utf8(c.writable().to_vec())
            .unwrap()
            .contains("connection: close"));
        c.advance_write(c.writable().len(), Instant::now());
        assert!(c.finished());
    }

    #[test]
    fn poison_waits_for_the_in_flight_response() {
        let mut c = conn(None);
        c.on_bytes(b"GET /a HTTP/1.1\r\n\r\n", Instant::now())
            .unwrap();
        c.take_dispatch().unwrap();
        c.poison(Response::with_body(400, "application/json", "{}"));
        assert!(c.writable().is_empty(), "error must not overtake /a");
        c.on_part(ResponsePart::Full(ok_response()));
        let out = String::from_utf8(c.writable().to_vec()).unwrap();
        let ok_at = out.find("HTTP/1.1 200").unwrap();
        let err_at = out.find("HTTP/1.1 400").unwrap();
        assert!(ok_at < err_at, "in-flight response first, then the error");
        c.advance_write(c.writable().len(), Instant::now());
        assert!(c.finished());
    }

    #[test]
    fn streamed_parts_frame_as_chunked() {
        let mut c = conn(None);
        c.on_bytes(b"GET /a HTTP/1.1\r\n\r\n", Instant::now())
            .unwrap();
        c.take_dispatch().unwrap();
        c.on_part(ResponsePart::StreamHead(Response::with_body(
            200,
            "application/json",
            "",
        )));
        c.on_part(ResponsePart::StreamChunk(b"hello".to_vec()));
        c.on_part(ResponsePart::StreamEnd);
        let out = String::from_utf8(c.writable().to_vec()).unwrap();
        assert!(out.contains("transfer-encoding: chunked"));
        assert!(out.contains("5\r\nhello\r\n0\r\n\r\n"), "{out}");
        assert!(!c.is_in_flight());
    }

    #[test]
    fn stream_abort_truncates_and_closes() {
        let mut c = conn(None);
        c.on_bytes(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
            Instant::now(),
        )
        .unwrap();
        c.take_dispatch().unwrap();
        c.on_part(ResponsePart::StreamHead(Response::with_body(
            200,
            "application/json",
            "",
        )));
        c.on_part(ResponsePart::StreamChunk(b"partial".to_vec()));
        c.on_part(ResponsePart::StreamAbort(Response::with_body(
            500,
            "application/json",
            "{}",
        )));
        let out = String::from_utf8(c.writable().to_vec()).unwrap();
        assert!(!out.contains("0\r\n\r\n"), "no terminal chunk on abort");
        assert!(c.take_dispatch().is_none(), "/b is dropped");
        c.advance_write(c.writable().len(), Instant::now());
        assert!(c.finished());
    }

    #[test]
    fn timeouts_distinguish_idle_from_mid_request() {
        let t0 = Instant::now();
        let idle = Duration::from_millis(100);
        let header = Duration::from_millis(300);
        let mut c = Connection::new(1, 1024, None, t0);
        // Between requests: idle timeout applies.
        assert_eq!(
            c.timed_out(t0 + idle, idle, header),
            Some(TimeoutKind::Idle)
        );
        assert_eq!(c.timed_out(t0, idle, header), None);
        // Mid-request (dribbled partial head): header timeout applies.
        c.on_bytes(b"GET /a HT", t0).unwrap();
        assert_eq!(c.timed_out(t0 + idle, idle, header), None);
        assert_eq!(
            c.timed_out(t0 + header, idle, header),
            Some(TimeoutKind::MidRequest)
        );
        // Never while work is queued or in flight.
        c.on_bytes(b"TP/1.1\r\n\r\n", t0).unwrap();
        assert_eq!(c.timed_out(t0 + header, idle, header), None);
        c.take_dispatch().unwrap();
        assert_eq!(c.timed_out(t0 + header, idle, header), None);
    }

    #[test]
    fn undo_dispatch_preserves_order_and_close_flag() {
        let mut c = conn(None);
        c.on_bytes(
            b"GET /a HTTP/1.1\r\nconnection: close\r\n\r\n",
            Instant::now(),
        )
        .unwrap();
        let r = c.take_dispatch().unwrap();
        c.undo_dispatch(r);
        assert!(!c.is_in_flight());
        c.take_dispatch().unwrap();
        c.on_part(ResponsePart::Full(ok_response()));
        assert!(String::from_utf8(c.writable().to_vec())
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn eof_finishes_after_the_queue_drains() {
        let mut c = conn(None);
        c.on_bytes(b"GET /a HTTP/1.1\r\n\r\n", Instant::now())
            .unwrap();
        c.eof();
        assert!(!c.finished(), "still owes the /a response");
        c.take_dispatch().unwrap();
        c.on_part(ResponsePart::Full(ok_response()));
        c.advance_write(c.writable().len(), Instant::now());
        assert!(c.finished());
    }
}
