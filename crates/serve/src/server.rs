//! The TCP front end: a listener, a bounded worker pool, and a
//! connection pump around [`Service`].
//!
//! Architecture: one acceptor thread accepts connections and feeds them
//! into a *bounded* `sync_channel`; `workers` worker threads drain it,
//! each serving one `read → handle → write → close` exchange per
//! connection. The bounded channel is the back-pressure valve — when
//! every worker is busy and the queue is full, the acceptor itself
//! blocks, so the OS listen backlog (not unbounded process memory)
//! absorbs a connection flood.
//!
//! Shutdown is a signal pipe in the dependency-free sense: a
//! [`ShutdownSignal`] sets the stop flag and opens one loopback
//! connection to the listener, waking the blocking `accept` so the
//! acceptor can observe the flag, drop the channel sender, and let every
//! worker drain and exit. [`ServerHandle::join`] then reaps all threads.

use crate::config::ServeConfig;
use crate::http::read_request;
use crate::log::RequestLog;
use crate::service::Service;
use iobench::BaselineCache;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A cloneable trigger for graceful shutdown, detachable from the
/// handle so a watcher thread (or a test) can stop the server while
/// another thread blocks in [`ServerHandle::join`].
#[derive(Clone)]
pub struct ShutdownSignal {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// Requests shutdown: raises the stop flag, then opens (and
    /// immediately drops) one loopback connection to wake the acceptor
    /// out of its blocking `accept`.
    pub fn trigger(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: the bound address, the shared [`Service`], and the
/// threads to reap.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    signal: ShutdownSignal,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `…:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (cache stats, config).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// A detachable shutdown trigger.
    pub fn signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Blocks until the server has shut down (someone must
    /// [`ShutdownSignal::trigger`] it), then reaps every thread.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Graceful shutdown: trigger + join.
    pub fn shutdown(self) {
        self.signal.trigger();
        self.join();
    }
}

/// Binds `config.addr` and starts the acceptor + worker threads.
///
/// Also installs `config.cache_cap` as the capacity of the process-wide
/// [`BaselineCache`], so a long-running server bounds *both* memo layers
/// (response bodies here, `T_alone` baselines there).
pub fn start(config: ServeConfig, log: Box<dyn RequestLog>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    BaselineCache::global().set_capacity(config.cache_cap);
    let workers = config.effective_workers();
    let service = Arc::new(Service::new(config, log));
    let stop = Arc::new(AtomicBool::new(false));

    // Bounded hand-off queue: a small buffer smooths bursts, while a
    // full queue blocks the acceptor (back-pressure instead of growth).
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(workers.saturating_mul(2).max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        worker_handles.push(std::thread::spawn(move || worker_loop(&rx, &service)));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else {
                    // A failed accept (client reset mid-handshake) is the
                    // client's problem, not a reason to stop serving.
                    continue;
                };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping the sender ends every worker's `recv` loop.
            drop(tx);
        })
    };

    Ok(ServerHandle {
        addr,
        service,
        signal: ShutdownSignal { addr, stop },
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, service: &Service) {
    loop {
        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match next {
            Ok(stream) => serve_connection(service, stream),
            Err(_) => break,
        }
    }
}

/// One connection, one exchange: parse, handle, respond, close.
fn serve_connection(service: &Service, mut stream: TcpStream) {
    let response = match read_request(&mut stream, service.config().max_body) {
        Ok(request) => service.handle(&request),
        Err(e) => service.handle_unparsable(e.status(), &e.to_string()),
    };
    // The peer may already be gone (e.g. the shutdown wake-up
    // connection); a failed write only affects that peer.
    let _ = response.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::log::BufferLog;

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn boots_serves_healthz_and_shuts_down() {
        let handle = start(test_config(), Box::new(BufferLog::new())).unwrap();
        let reply = client::get(handle.addr(), "/healthz").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"ok\n");
        handle.shutdown();
    }

    #[test]
    fn shutdown_signal_works_from_another_thread() {
        let handle = start(test_config(), Box::new(BufferLog::new())).unwrap();
        let signal = handle.signal();
        let trigger = std::thread::spawn(move || signal.trigger());
        handle.join();
        trigger.join().unwrap();
    }
}
