//! The TCP front end: bind, pick a reactor, pump persistent connections
//! through [`Service`].
//!
//! [`start`] resolves [`ServeConfig::reactor_mode`] and launches one of
//! two front ends behind the same [`ServerHandle`]:
//!
//! * **epoll** ([`crate::reactor`], Linux only) — one reactor thread
//!   multiplexes every connection; simulation work runs on the bounded
//!   worker pool; the reactor never blocks.
//! * **threads** (this module, portable) — an acceptor feeds a *bounded*
//!   `sync_channel` of sockets; each worker owns one connection at a
//!   time and pumps it through a blocking keep-alive loop (pipelining,
//!   timeouts, and the request cap all still apply). The bounded channel
//!   is the back-pressure valve: when every worker is busy the acceptor
//!   blocks and the OS listen backlog absorbs the flood.
//!
//! Both modes share the connection-id counter (the request log's `conn=`
//! column), the graceful-shutdown protocol, and the whole HTTP surface —
//! the loopback test suite runs identically against either.
//!
//! Shutdown is a signal pipe in the dependency-free sense: a
//! [`ShutdownSignal`] sets the stop flag and opens one loopback
//! connection to the listener, waking it. In-flight requests complete,
//! idle keep-alive connections close promptly, and
//! [`ServerHandle::join`] reaps every thread.

use crate::config::{ReactorMode, ServeConfig};
use crate::http::{chunk_frame, RequestParser, Response, CHUNK_END};
use crate::log::RequestLog;
use crate::service::{ResponsePart, ResponseSink, Service};
use iobench::BaselineCache;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocking worker wakes from `read` to check the stop flag
/// and the connection's timeouts.
const POLL_TICK: Duration = Duration::from_millis(250);

/// A cloneable trigger for graceful shutdown, detachable from the
/// handle so a watcher thread (or a test) can stop the server while
/// another thread blocks in [`ServerHandle::join`].
#[derive(Clone)]
pub struct ShutdownSignal {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// Requests shutdown: raises the stop flag, then opens (and
    /// immediately drops) one loopback connection to wake the listener.
    pub fn trigger(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: the bound address, the shared [`Service`], and the
/// threads to reap.
pub struct ServerHandle {
    addr: SocketAddr,
    mode: ReactorMode,
    service: Arc<Service>,
    signal: ShutdownSignal,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `…:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front end actually running.
    pub fn mode(&self) -> ReactorMode {
        self.mode
    }

    /// The shared service (cache stats, config).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// A detachable shutdown trigger.
    pub fn signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Blocks until the server has shut down (someone must
    /// [`ShutdownSignal::trigger`] it), then reaps every thread.
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// Graceful shutdown: trigger + join.
    pub fn shutdown(self) {
        self.signal.trigger();
        self.join();
    }
}

/// Binds `config.addr`, resolves the reactor mode, and starts the
/// front-end threads.
///
/// Also installs `config.cache_cap` as the capacity of the process-wide
/// [`BaselineCache`], so a long-running server bounds *both* memo layers
/// (response bodies here, `T_alone` baselines there).
pub fn start(config: ServeConfig, log: Box<dyn RequestLog>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    BaselineCache::global().set_capacity(config.cache_cap);
    let mode = config.reactor_mode();
    let service = Arc::new(Service::new(config, log));
    let stop = Arc::new(AtomicBool::new(false));
    // Connection ids start at 2: the reactor reserves 0 (listener) and
    // 1 (wake eventfd) as epoll tokens.
    let ids = Arc::new(AtomicU64::new(2));

    let threads = match mode {
        #[cfg(target_os = "linux")]
        ReactorMode::Epoll => crate::reactor::spawn(
            listener,
            Arc::clone(&service),
            Arc::clone(&stop),
            Arc::clone(&ids),
        )?,
        #[cfg(not(target_os = "linux"))]
        // Unreachable: reactor_mode() never yields Epoll off-Linux.
        ReactorMode::Epoll => {
            spawn_thread_pool(listener, Arc::clone(&service), Arc::clone(&stop), ids)
        }
        ReactorMode::Threads => {
            spawn_thread_pool(listener, Arc::clone(&service), Arc::clone(&stop), ids)
        }
    };

    Ok(ServerHandle {
        addr,
        mode,
        service,
        signal: ShutdownSignal { addr, stop },
        threads,
    })
}

/// The portable front end: acceptor + bounded hand-off queue + blocking
/// keep-alive workers.
fn spawn_thread_pool(
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    ids: Arc<AtomicU64>,
) -> Vec<JoinHandle<()>> {
    let workers = service.config().effective_workers();
    // Bounded hand-off queue: a small buffer smooths bursts, while a
    // full queue blocks the acceptor (back-pressure instead of growth).
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(workers.saturating_mul(2).max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut handles = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let ids = Arc::clone(&ids);
        handles.push(std::thread::spawn(move || {
            worker_loop(&rx, &service, &stop, &ids)
        }));
    }

    {
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else {
                    // A failed accept (client reset mid-handshake) is the
                    // client's problem, not a reason to stop serving.
                    continue;
                };
                // Responses are flushed as they complete; Nagle would
                // hold small ones back against pipelined clients.
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping the sender ends every worker's `recv` loop.
        }));
    }
    handles
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    service: &Service,
    stop: &AtomicBool,
    ids: &AtomicU64,
) {
    loop {
        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match next {
            Ok(stream) => {
                let id = ids.fetch_add(1, Ordering::Relaxed);
                serve_connection_blocking(service, stream, id, stop);
            }
            Err(_) => break,
        }
    }
}

/// Writes response parts straight to the socket with the right framing —
/// the blocking transport's [`ResponseSink`].
struct WireSink<'a> {
    stream: &'a mut TcpStream,
    /// `Connection` framing decision for this exchange.
    close: bool,
    /// Set on write failure or stream abort: the connection must close
    /// without further writes.
    broken: bool,
}

impl WireSink<'_> {
    fn write_all(&mut self, bytes: &[u8]) {
        if self.broken {
            return;
        }
        if write_fully(self.stream, bytes).is_err() {
            self.broken = true;
        }
    }
}

impl ResponseSink for WireSink<'_> {
    fn part(&mut self, part: ResponsePart) {
        match part {
            ResponsePart::Full(r) => self.write_all(&r.serialize(self.close)),
            ResponsePart::StreamHead(h) => self.write_all(&h.serialize_chunked_head(self.close)),
            ResponsePart::StreamChunk(c) => self.write_all(&chunk_frame(&c)),
            ResponsePart::StreamEnd => self.write_all(CHUNK_END),
            ResponsePart::StreamAbort(_) => {
                // The head is on the wire; truncate (no terminal chunk)
                // so the client sees a short body, never a wrong one.
                self.broken = true;
            }
        }
    }
}

/// Retries short writes; the socket's write timeout still bounds each
/// attempt. (`TcpStream::write` on a blocking socket rarely splits, but
/// a streamed batch body can exceed the send buffer.)
fn write_fully(stream: &mut TcpStream, mut bytes: &[u8]) -> io::Result<()> {
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// One persistent connection on a blocking socket: read with a short
/// timeout, parse pipelined requests, serve them in order, enforce the
/// idle/header timeouts and the request cap, and honor shutdown.
fn serve_connection_blocking(service: &Service, mut stream: TcpStream, id: u64, stop: &AtomicBool) {
    let config = service.config();
    if stream.set_read_timeout(Some(POLL_TICK)).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(60)))
            .is_err()
    {
        return;
    }
    let cap = config.request_cap();
    let idle = config.idle_timeout();
    let header = config.header_timeout();
    let mut parser = RequestParser::new(config.max_body);
    let mut served: usize = 0;
    let mut last_activity = Instant::now();
    let mut buf = [0u8; 16 * 1024];

    loop {
        if stop.load(Ordering::Acquire) && parser.is_between_requests() {
            // Graceful shutdown: idle keep-alive connections close
            // promptly; a connection mid-request finishes it below
            // (the response then carries `Connection: close`).
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                parser.feed(&buf[..n]);
                last_activity = Instant::now();
                loop {
                    match parser.next_request() {
                        Ok(Some(parsed)) => {
                            served += 1;
                            let close = parsed.close
                                || cap.is_some_and(|cap| served >= cap)
                                || stop.load(Ordering::Acquire);
                            let mut sink = WireSink {
                                stream: &mut stream,
                                close,
                                broken: false,
                            };
                            service.handle_into(Some(id), &parsed.request, &mut sink);
                            let broken = sink.broken;
                            last_activity = Instant::now();
                            if broken || close {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let response =
                                service.handle_unparsable(Some(id), e.status(), &e.to_string());
                            let _ = write_fully(&mut stream, &response.serialize(true));
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let now = Instant::now();
                let waited = now.saturating_duration_since(last_activity);
                if parser.is_between_requests() {
                    if waited >= idle {
                        return;
                    }
                } else if waited >= header {
                    // Slow loris: dribbling inside a request head/body.
                    let response = timeout_response(service, id);
                    let _ = write_fully(&mut stream, &response.serialize(true));
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn timeout_response(service: &Service, id: u64) -> Response {
    let e = crate::http::HttpError::Timeout;
    service.handle_unparsable(Some(id), e.status(), &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::log::BufferLog;

    fn test_config(mode: ReactorMode) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            reactor: Some(mode),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn threads_mode_boots_serves_healthz_and_shuts_down() {
        let handle = start(
            test_config(ReactorMode::Threads),
            Box::new(BufferLog::new()),
        )
        .unwrap();
        assert_eq!(handle.mode(), ReactorMode::Threads);
        let reply = client::get(handle.addr(), "/healthz").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"ok\n");
        handle.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_mode_boots_serves_healthz_and_shuts_down() {
        let handle = start(test_config(ReactorMode::Epoll), Box::new(BufferLog::new())).unwrap();
        assert_eq!(handle.mode(), ReactorMode::Epoll);
        let reply = client::get(handle.addr(), "/healthz").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"ok\n");
        handle.shutdown();
    }

    #[test]
    fn shutdown_signal_works_from_another_thread() {
        let handle = start(
            test_config(ReactorMode::Threads),
            Box::new(BufferLog::new()),
        )
        .unwrap();
        let signal = handle.signal();
        let trigger = std::thread::spawn(move || signal.trigger());
        handle.join();
        trigger.join().unwrap();
    }
}
