//! The `calciom-serve` binary: configure from the environment, bind,
//! serve until told to stop.
//!
//! Graceful shutdown rides the process's standard input as the signal
//! pipe (std has no signal handling, and the registry is unreachable):
//! a line reading `shutdown` triggers a graceful stop — drain, close,
//! exit 0. EOF on stdin is *ignored* so `calciom-serve < /dev/null &`
//! keeps serving; to stop such a server gracefully, run it with a FIFO
//! as stdin and write `shutdown` into it (see `.github/workflows`).

use serve::{ServeConfig, StderrLog};

fn main() {
    let config = match ServeConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("calciom-serve: {e}");
            std::process::exit(2);
        }
    };
    let handle = match serve::start(config, Box::new(StderrLog)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("calciom-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    let config = handle.service().config();
    eprintln!(
        "calciom-serve: listening on http://{} ({} front end, {} workers, {} default shards, \
         {} body cap, cache {}, idle {}ms, header {}ms, {} reqs/conn)",
        handle.addr(),
        handle.mode().label(),
        config.effective_workers(),
        config.effective_shards(),
        config.max_body,
        config.cache_cap,
        config.idle_timeout_ms,
        config.header_timeout_ms,
        config.max_requests_per_conn,
    );

    let signal = handle.signal();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF/error: keep serving, stop watching
                Ok(_) if line.trim() == "shutdown" => {
                    eprintln!("calciom-serve: shutdown requested");
                    signal.trigger();
                    break;
                }
                Ok(_) => {}
            }
        }
    });

    handle.join();
    eprintln!("calciom-serve: stopped");
}
