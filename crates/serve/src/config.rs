//! Environment-driven service configuration.
//!
//! Every knob has a `CALCIOM_*` environment variable and a default that
//! works for local runs; [`ServeConfig::from_env`] reads them all and
//! rejects malformed values with a typed [`ServeConfigError`] naming the
//! offending variable, so a typo in a deployment manifest fails the boot
//! instead of silently running with a default.

/// Tunable limits and sizing of one server process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`CALCIOM_ADDR`, default `127.0.0.1:7117`;
    /// `…:0` binds an ephemeral port — the tests' mode).
    pub addr: String,
    /// Worker threads handling requests (`CALCIOM_WORKERS`; 0, the
    /// default, means one per available core).
    pub workers: usize,
    /// Default shard count of `/v1/batch` fan-outs when the request does
    /// not pass `?shards=` (`CALCIOM_SHARDS`; 0, the default, means one
    /// shard per available core).
    pub shards: usize,
    /// Hard cap on a request body in bytes (`CALCIOM_MAX_BODY`, default
    /// 4 MiB). A `Content-Length` beyond it is answered `413` without
    /// reading the body.
    pub max_body: usize,
    /// Capacity of the response cache in entries (`CALCIOM_CACHE_CAP`,
    /// default 256; 0 disables caching). The same cap is installed on the
    /// process-wide `iobench::BaselineCache` at server start.
    pub cache_cap: usize,
    /// Hard cap on a scenario's simulated-time horizon in seconds
    /// (`CALCIOM_MAX_HORIZON`, default 7 simulated days). A scenario
    /// asking for more is rejected `422` before it can wedge a worker.
    pub max_horizon_secs: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: 0,
            shards: 0,
            max_body: 4 << 20,
            cache_cap: 256,
            max_horizon_secs: 7.0 * 86_400.0,
        }
    }
}

/// A malformed `CALCIOM_*` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfigError {
    /// The variable that failed to parse.
    pub var: &'static str,
    /// Its rejected value.
    pub value: String,
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid value for {}: {:?}", self.var, self.value)
    }
}

impl std::error::Error for ServeConfigError {}

impl ServeConfig {
    /// Reads the configuration from the `CALCIOM_*` environment, using
    /// the [`Default`] for every unset variable.
    pub fn from_env() -> Result<ServeConfig, ServeConfigError> {
        let mut config = ServeConfig::default();
        if let Some(addr) = read("CALCIOM_ADDR") {
            config.addr = addr;
        }
        config.workers = parsed("CALCIOM_WORKERS", config.workers)?;
        config.shards = parsed("CALCIOM_SHARDS", config.shards)?;
        config.max_body = parsed("CALCIOM_MAX_BODY", config.max_body)?;
        config.cache_cap = parsed("CALCIOM_CACHE_CAP", config.cache_cap)?;
        config.max_horizon_secs = parsed("CALCIOM_MAX_HORIZON", config.max_horizon_secs)?;
        if !(config.max_horizon_secs.is_finite() && config.max_horizon_secs > 0.0) {
            return Err(ServeConfigError {
                var: "CALCIOM_MAX_HORIZON",
                value: format!("{}", config.max_horizon_secs),
            });
        }
        Ok(config)
    }

    /// The effective worker count (resolves `0` to the core count).
    pub fn effective_workers(&self) -> usize {
        resolve_auto(self.workers)
    }

    /// The effective default shard count (resolves `0` to the core count).
    pub fn effective_shards(&self) -> usize {
        resolve_auto(self.shards)
    }
}

fn resolve_auto(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn read(var: &'static str) -> Option<String> {
    std::env::var(var).ok().filter(|v| !v.is_empty())
}

fn parsed<T: std::str::FromStr>(var: &'static str, default: T) -> Result<T, ServeConfigError> {
    match read(var) {
        None => Ok(default),
        Some(value) => value.parse().map_err(|_| ServeConfigError { var, value }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, "127.0.0.1:7117");
        assert!(c.max_body >= 1 << 20);
        assert!(c.cache_cap > 0);
        assert!(c.effective_workers() >= 1);
        assert!(c.effective_shards() >= 1);
    }

    #[test]
    fn config_error_names_the_variable() {
        let e = ServeConfigError {
            var: "CALCIOM_WORKERS",
            value: "lots".to_string(),
        };
        assert!(e.to_string().contains("CALCIOM_WORKERS"));
        assert!(e.to_string().contains("lots"));
    }
}
