//! Environment-driven service configuration.
//!
//! Every knob has a `CALCIOM_*` environment variable and a default that
//! works for local runs; [`ServeConfig::from_env`] reads them all and
//! rejects malformed values with a typed [`ServeConfigError`] naming the
//! offending variable, so a typo in a deployment manifest fails the boot
//! instead of silently running with a default.

/// Which front end drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorMode {
    /// Readiness-driven: one reactor thread multiplexes every connection
    /// over `epoll`, simulation work goes to the worker pool. Linux only.
    Epoll,
    /// Portable fallback: a bounded pool of blocking worker threads, one
    /// connection per worker at a time (still keep-alive capable).
    Threads,
}

impl ReactorMode {
    /// Stable label (`epoll` / `threads`).
    pub fn label(&self) -> &'static str {
        match self {
            ReactorMode::Epoll => "epoll",
            ReactorMode::Threads => "threads",
        }
    }
}

/// Tunable limits and sizing of one server process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`CALCIOM_ADDR`, default `127.0.0.1:7117`;
    /// `…:0` binds an ephemeral port — the tests' mode).
    pub addr: String,
    /// Worker threads handling requests (`CALCIOM_WORKERS`; 0, the
    /// default, means one per available core).
    pub workers: usize,
    /// Default shard count of `/v1/batch` fan-outs when the request does
    /// not pass `?shards=` (`CALCIOM_SHARDS`; 0, the default, means one
    /// shard per available core).
    pub shards: usize,
    /// Hard cap on a request body in bytes (`CALCIOM_MAX_BODY`, default
    /// 4 MiB). A `Content-Length` beyond it is answered `413` without
    /// reading the body.
    pub max_body: usize,
    /// Capacity of the response cache in entries (`CALCIOM_CACHE_CAP`,
    /// default 256; 0 disables caching). The same cap is installed on the
    /// process-wide `iobench::BaselineCache` at server start.
    pub cache_cap: usize,
    /// Hard cap on a scenario's simulated-time horizon in seconds
    /// (`CALCIOM_MAX_HORIZON`, default 7 simulated days). A scenario
    /// asking for more is rejected `422` before it can wedge a worker.
    pub max_horizon_secs: f64,
    /// Requested front end (`CALCIOM_REACTOR`, `epoll` or `threads`;
    /// unset picks `epoll` where available). Resolved by
    /// [`ServeConfig::reactor_mode`], which falls back to threads on
    /// non-Linux hosts regardless of the request.
    pub reactor: Option<ReactorMode>,
    /// Maximum requests served on one connection before the server
    /// forces `Connection: close` (`CALCIOM_MAX_REQUESTS`, default 1000;
    /// 0 means unlimited). Bounds how long one client can pin server
    /// state, and gives load balancers a natural rebalancing point.
    pub max_requests_per_conn: usize,
    /// How long a connection may sit idle *between* requests before the
    /// server closes it (`CALCIOM_IDLE_TIMEOUT_MS`, default 5000 ms).
    pub idle_timeout_ms: u64,
    /// How long a client may dribble *inside* one request head/body
    /// before the server answers `408` and closes — the slow-loris
    /// defense (`CALCIOM_HEADER_TIMEOUT_MS`, default 10000 ms).
    pub header_timeout_ms: u64,
    /// `/v1/batch` responses stream chunked output once the batch's
    /// total application count reaches this threshold
    /// (`CALCIOM_STREAM_APPS`, default 512; 0 disables size-triggered
    /// streaming). `?stream=1` / `?stream=0` override per request.
    pub stream_apps: usize,
    /// Maximum concurrently open connections (`CALCIOM_MAX_CONNS`,
    /// default 1024). The epoll reactor stops accepting while at the
    /// cap, so a connection flood queues in the OS listen backlog
    /// instead of growing process state.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: 0,
            shards: 0,
            max_body: 4 << 20,
            cache_cap: 256,
            max_horizon_secs: 7.0 * 86_400.0,
            reactor: None,
            max_requests_per_conn: 1000,
            idle_timeout_ms: 5_000,
            header_timeout_ms: 10_000,
            stream_apps: 512,
            max_conns: 1024,
        }
    }
}

/// A malformed `CALCIOM_*` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfigError {
    /// The variable that failed to parse.
    pub var: &'static str,
    /// Its rejected value.
    pub value: String,
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid value for {}: {:?}", self.var, self.value)
    }
}

impl std::error::Error for ServeConfigError {}

impl ServeConfig {
    /// Reads the configuration from the `CALCIOM_*` environment, using
    /// the [`Default`] for every unset variable.
    pub fn from_env() -> Result<ServeConfig, ServeConfigError> {
        let mut config = ServeConfig::default();
        if let Some(addr) = read("CALCIOM_ADDR") {
            config.addr = addr;
        }
        config.workers = parsed("CALCIOM_WORKERS", config.workers)?;
        config.shards = parsed("CALCIOM_SHARDS", config.shards)?;
        config.max_body = parsed("CALCIOM_MAX_BODY", config.max_body)?;
        config.cache_cap = parsed("CALCIOM_CACHE_CAP", config.cache_cap)?;
        config.max_horizon_secs = parsed("CALCIOM_MAX_HORIZON", config.max_horizon_secs)?;
        if !(config.max_horizon_secs.is_finite() && config.max_horizon_secs > 0.0) {
            return Err(ServeConfigError {
                var: "CALCIOM_MAX_HORIZON",
                value: format!("{}", config.max_horizon_secs),
            });
        }
        config.reactor = match read("CALCIOM_REACTOR").as_deref() {
            None | Some("auto") => None,
            Some("epoll") => Some(ReactorMode::Epoll),
            Some("threads") => Some(ReactorMode::Threads),
            Some(other) => {
                return Err(ServeConfigError {
                    var: "CALCIOM_REACTOR",
                    value: other.to_string(),
                })
            }
        };
        config.max_requests_per_conn =
            parsed("CALCIOM_MAX_REQUESTS", config.max_requests_per_conn)?;
        config.idle_timeout_ms = parsed("CALCIOM_IDLE_TIMEOUT_MS", config.idle_timeout_ms)?;
        config.header_timeout_ms = parsed("CALCIOM_HEADER_TIMEOUT_MS", config.header_timeout_ms)?;
        for (var, value) in [
            ("CALCIOM_IDLE_TIMEOUT_MS", config.idle_timeout_ms),
            ("CALCIOM_HEADER_TIMEOUT_MS", config.header_timeout_ms),
        ] {
            if value == 0 {
                return Err(ServeConfigError {
                    var,
                    value: "0".to_string(),
                });
            }
        }
        config.stream_apps = parsed("CALCIOM_STREAM_APPS", config.stream_apps)?;
        config.max_conns = parsed("CALCIOM_MAX_CONNS", config.max_conns)?;
        if config.max_conns == 0 {
            return Err(ServeConfigError {
                var: "CALCIOM_MAX_CONNS",
                value: "0".to_string(),
            });
        }
        Ok(config)
    }

    /// The effective worker count (resolves `0` to the core count).
    pub fn effective_workers(&self) -> usize {
        resolve_auto(self.workers)
    }

    /// The effective default shard count (resolves `0` to the core count).
    pub fn effective_shards(&self) -> usize {
        resolve_auto(self.shards)
    }

    /// The front end actually used: the configured one where supported,
    /// else the portable threads fallback. `epoll` only exists on Linux,
    /// so every other host resolves to [`ReactorMode::Threads`] no
    /// matter what was requested.
    pub fn reactor_mode(&self) -> ReactorMode {
        if !cfg!(target_os = "linux") {
            return ReactorMode::Threads;
        }
        self.reactor.unwrap_or(ReactorMode::Epoll)
    }

    /// The per-connection request cap as an `Option` (0 = unlimited).
    pub fn request_cap(&self) -> Option<usize> {
        (self.max_requests_per_conn != 0).then_some(self.max_requests_per_conn)
    }

    /// The idle (between-requests) timeout.
    pub fn idle_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.idle_timeout_ms)
    }

    /// The mid-request (slow-loris) timeout.
    pub fn header_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.header_timeout_ms)
    }
}

fn resolve_auto(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn read(var: &'static str) -> Option<String> {
    std::env::var(var).ok().filter(|v| !v.is_empty())
}

fn parsed<T: std::str::FromStr>(var: &'static str, default: T) -> Result<T, ServeConfigError> {
    match read(var) {
        None => Ok(default),
        Some(value) => value.parse().map_err(|_| ServeConfigError { var, value }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, "127.0.0.1:7117");
        assert!(c.max_body >= 1 << 20);
        assert!(c.cache_cap > 0);
        assert!(c.effective_workers() >= 1);
        assert!(c.effective_shards() >= 1);
        assert!(c.max_requests_per_conn >= 1);
        assert!(c.idle_timeout().as_millis() > 0);
        assert!(c.header_timeout() >= c.idle_timeout());
        assert!(c.max_conns >= 64);
    }

    #[test]
    fn reactor_resolution_prefers_epoll_on_linux_only() {
        let c = ServeConfig::default();
        if cfg!(target_os = "linux") {
            assert_eq!(c.reactor_mode(), ReactorMode::Epoll);
        } else {
            assert_eq!(c.reactor_mode(), ReactorMode::Threads);
        }
        let forced = ServeConfig {
            reactor: Some(ReactorMode::Threads),
            ..ServeConfig::default()
        };
        assert_eq!(forced.reactor_mode(), ReactorMode::Threads);
    }

    #[test]
    fn request_cap_treats_zero_as_unlimited() {
        let mut c = ServeConfig::default();
        assert_eq!(c.request_cap(), Some(c.max_requests_per_conn));
        c.max_requests_per_conn = 0;
        assert_eq!(c.request_cap(), None);
    }

    #[test]
    fn config_error_names_the_variable() {
        let e = ServeConfigError {
            var: "CALCIOM_WORKERS",
            value: "lots".to_string(),
        };
        assert!(e.to_string().contains("CALCIOM_WORKERS"));
        assert!(e.to_string().contains("lots"));
    }
}
