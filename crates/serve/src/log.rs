//! The structured request log: one line per request.
//!
//! The line is `key=value` pairs in a fixed order — greppable, one
//! write per request, no timestamps beyond the wall-clock the request
//! itself took (the service is stateless; host time would only make the
//! log nondeterministic to test). Absent fields (a request with no
//! scenario, say) render as `-` so every line has the same columns.

use std::sync::Mutex;
use std::time::Duration;

/// Everything one log line carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Server-assigned connection id — the keep-alive reuse signal: all
    /// requests served over one persistent connection share it. `None`
    /// for requests handled off-socket (unit tests, direct calls).
    pub conn: Option<u64>,
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query string excluded).
    pub path: String,
    /// FNV-64 of the request body — `None` for body-less requests.
    pub scenario_hash: Option<u64>,
    /// Shard count a `/v1/batch` request fanned out over.
    pub shards: Option<usize>,
    /// Response status code.
    pub status: u16,
    /// Simulation events streamed while computing the response.
    pub events: u64,
    /// Host wall-clock spent handling the request.
    pub wall: Duration,
    /// Response-cache outcome, when the endpoint is cacheable.
    pub cache: Option<CacheOutcome>,
}

/// Whether a cacheable request was served from the response cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Computed, then stored.
    Miss,
}

impl CacheOutcome {
    /// Stable label (also the `x-cache` header value).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

impl RequestRecord {
    /// Renders the fixed-column log line.
    pub fn line(&self) -> String {
        let scenario = match self.scenario_hash {
            Some(h) => format!("{h:016x}"),
            None => "-".to_string(),
        };
        let shards = match self.shards {
            Some(s) => s.to_string(),
            None => "-".to_string(),
        };
        let cache = match self.cache {
            Some(outcome) => outcome.label(),
            None => "-",
        };
        let conn = match self.conn {
            Some(id) => id.to_string(),
            None => "-".to_string(),
        };
        format!(
            "method={} path={} scenario={} shards={} status={} events={} wall_us={} cache={} conn={}",
            self.method,
            self.path,
            scenario,
            shards,
            self.status,
            self.events,
            self.wall.as_micros(),
            cache,
            conn
        )
    }
}

/// Sink for request records. Implementations must be cheap and
/// non-blocking-ish: the worker writes the line after the response is
/// already on the wire.
pub trait RequestLog: Send + Sync {
    /// Records one handled request.
    fn record(&self, record: &RequestRecord);
}

/// Production sink: one line per request on stderr.
#[derive(Debug, Default)]
pub struct StderrLog;

impl RequestLog for StderrLog {
    fn record(&self, record: &RequestRecord) {
        eprintln!("{}", record.line());
    }
}

/// Test sink: collects records in memory.
#[derive(Debug, Default)]
pub struct BufferLog {
    records: Mutex<Vec<RequestRecord>>,
}

impl BufferLog {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        BufferLog::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<RequestRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl RequestLog for BufferLog {
    fn record(&self, record: &RequestRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_has_fixed_columns() {
        let record = RequestRecord {
            conn: Some(7),
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            scenario_hash: Some(0xabc),
            shards: None,
            status: 200,
            events: 42,
            wall: Duration::from_micros(1234),
            cache: Some(CacheOutcome::Miss),
        };
        assert_eq!(
            record.line(),
            "method=POST path=/v1/run scenario=0000000000000abc shards=- \
             status=200 events=42 wall_us=1234 cache=miss conn=7"
        );
    }

    #[test]
    fn absent_fields_render_as_dashes() {
        let record = RequestRecord {
            conn: None,
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            scenario_hash: None,
            shards: None,
            status: 200,
            events: 0,
            wall: Duration::ZERO,
            cache: None,
        };
        let line = record.line();
        assert!(line.contains("scenario=- shards=-"));
        assert!(line.ends_with("cache=- conn=-"));
    }

    #[test]
    fn buffer_log_collects() {
        let log = BufferLog::new();
        log.record(&RequestRecord {
            conn: None,
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            scenario_hash: None,
            shards: None,
            status: 200,
            events: 0,
            wall: Duration::ZERO,
            cache: None,
        });
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].status, 200);
    }
}
