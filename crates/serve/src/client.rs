//! A minimal blocking HTTP/1.1 client for the loopback tests and the
//! benchmarks.
//!
//! Exactly the counterpart of the server's wire subset, in two shapes:
//!
//! * the one-shot helpers ([`request`], [`get`], [`post`]) send
//!   `Connection: close` and read to EOF — one exchange per connection;
//! * [`Conn`] is a persistent keep-alive connection that frames
//!   responses by `Content-Length` **or** `Transfer-Encoding: chunked`
//!   (de-chunking streamed `/v1/batch` bodies), supports pipelining
//!   (send N, then receive N, in order), and leaves any pipelined
//!   remainder buffered for the next [`Conn::recv`].
//!
//! Not a general HTTP client — just enough to exercise `calciom-serve`
//! without external tooling.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side IO timeout (generous: a batch request simulates).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (de-chunked when the response streamed).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The body as (lossy) UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server asked to close the connection after this
    /// exchange.
    pub fn closes(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
    }

    /// Whether the body arrived with `Transfer-Encoding: chunked` (i.e.
    /// the server streamed it).
    pub fn chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    }
}

fn encode_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" || method == "PUT" {
        head.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Performs one request on a fresh connection (`Connection: close`) and
/// reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_nodelay(true)?;

    let mut all_headers: Vec<(&str, &str)> = vec![("connection", "close")];
    all_headers.extend_from_slice(headers);
    stream.write_all(&encode_request(addr, method, target, &all_headers, body))?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET target` on a fresh connection.
pub fn get(addr: SocketAddr, target: &str) -> io::Result<HttpReply> {
    request(addr, "GET", target, &[], &[])
}

/// `POST target` with a body on a fresh connection.
pub fn post(addr: SocketAddr, target: &str, body: &[u8]) -> io::Result<HttpReply> {
    request(addr, "POST", target, &[], body)
}

/// A persistent keep-alive connection.
pub struct Conn {
    addr: SocketAddr,
    stream: TcpStream,
    /// Bytes read past the previous response (pipelined replies).
    buf: Vec<u8>,
    /// Consumed prefix of `buf` — a cursor, so draining a pipelined
    /// burst is O(burst) instead of a memmove per response.
    start: usize,
}

impl Conn {
    /// Connects, ready for any number of exchanges.
    pub fn connect(addr: SocketAddr) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        // Requests are small and sent one `write` each when pipelining;
        // without this, Nagle + delayed ACK serializes them at ~40 ms.
        stream.set_nodelay(true)?;
        Ok(Conn {
            addr,
            stream,
            buf: Vec::new(),
            start: 0,
        })
    }

    /// Sends one request without waiting for its response — call
    /// repeatedly to pipeline, then [`Conn::recv`] once per send, in
    /// order.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        let wire = encode_request(self.addr, method, target, headers, body);
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }

    /// Pipelines `count` identical requests in a **single** buffered
    /// write — one syscall per burst instead of one per request. Call
    /// [`Conn::recv`] `count` times, in order.
    pub fn send_repeated(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
        count: usize,
    ) -> io::Result<()> {
        let one = encode_request(self.addr, method, target, headers, body);
        let mut wire = Vec::with_capacity(one.len() * count);
        for _ in 0..count {
            wire.extend_from_slice(&one);
        }
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }

    /// Reads the next complete response, honoring `Content-Length` or
    /// chunked framing; surplus pipelined bytes stay buffered.
    pub fn recv(&mut self) -> io::Result<HttpReply> {
        let head_end = loop {
            if let Some(pos) = find_blank_line(&self.buf[self.start..]) {
                break self.start + pos;
            }
            self.fill()?;
        };
        let (status, headers) = parse_head(&self.buf[self.start..head_end])?;

        let body_start = head_end + 4;
        let chunked = headers
            .get("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let (body, consumed) = if chunked {
            self.read_chunked_body(body_start)?
        } else {
            let declared: usize = headers
                .get("content-length")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            while self.buf.len() < body_start + declared {
                self.fill()?;
            }
            (
                self.buf[body_start..body_start + declared].to_vec(),
                body_start + declared,
            )
        };
        self.start = consumed;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    /// One full exchange on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpReply> {
        self.send(method, target, headers, body)?;
        self.recv()
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// De-chunks a `Transfer-Encoding: chunked` body starting at
    /// `from`; returns (body, total bytes consumed from `buf`).
    fn read_chunked_body(&mut self, from: usize) -> io::Result<(Vec<u8>, usize)> {
        let mut body = Vec::new();
        let mut pos = from;
        loop {
            // Chunk-size line.
            let line_end = loop {
                if let Some(i) = find_crlf(&self.buf, pos) {
                    break i;
                }
                self.fill()?;
            };
            let size_text = std::str::from_utf8(&self.buf[pos..line_end])
                .map_err(|_| bad("chunk size is not UTF-8"))?;
            let size = usize::from_str_radix(size_text.trim(), 16)
                .map_err(|_| bad("chunk size is not hex"))?;
            pos = line_end + 2;
            // Chunk data + trailing CRLF (the zero chunk has no data and
            // its CRLF is the body terminator — our server sends no
            // trailers).
            while self.buf.len() < pos + size + 2 {
                self.fill()?;
            }
            if size == 0 {
                pos += 2;
                return Ok((body, pos));
            }
            body.extend_from_slice(&self.buf[pos..pos + size]);
            pos += size + 2;
        }
    }
}

fn bad(reason: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.to_string())
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|i| from + i)
}

fn parse_head(head: &[u8]) -> io::Result<(u16, BTreeMap<String, String>)> {
    let head = std::str::from_utf8(head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed response header"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok((status, headers))
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let split = find_blank_line(raw).ok_or_else(|| bad("response has no header/body separator"))?;
    let (status, headers) = parse_head(&raw[..split])?;
    let mut body = raw[split + 4..].to_vec();

    // De-chunk a streamed body read to EOF.
    let chunked = headers
        .get("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    if chunked {
        body = dechunk_complete(&body)?;
    } else if let Some(declared) = headers.get("content-length").and_then(|v| v.parse().ok()) {
        if body.len() < declared {
            return Err(bad("response body shorter than content-length"));
        }
        body.truncate(declared);
    }
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// De-chunks a fully-received chunked body (one-shot, read-to-EOF path).
fn dechunk_complete(raw: &[u8]) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    let mut pos = 0;
    loop {
        let line_end = find_crlf(raw, pos).ok_or_else(|| bad("truncated chunk size line"))?;
        let size_text =
            std::str::from_utf8(&raw[pos..line_end]).map_err(|_| bad("chunk size is not UTF-8"))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| bad("chunk size is not hex"))?;
        pos = line_end + 2;
        if size == 0 {
            return Ok(body);
        }
        let data = raw
            .get(pos..pos + size)
            .ok_or_else(|| bad("truncated chunk data"))?;
        body.extend_from_slice(data);
        pos += size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 3\r\n\r\nok\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("content-type"), Some("text/plain"));
        assert_eq!(reply.body, b"ok\n");
        assert!(!reply.chunked());
    }

    #[test]
    fn parses_a_chunked_reply_read_to_eof() {
        let raw =
            b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.chunked());
        assert!(reply.closes());
        assert_eq!(reply.body, b"hello world");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn close_detection_handles_token_lists() {
        let raw = b"HTTP/1.1 200 OK\r\nconnection: keep-alive\r\ncontent-length: 0\r\n\r\n";
        assert!(!parse_reply(raw).unwrap().closes());
        let raw = b"HTTP/1.1 200 OK\r\nconnection: Close\r\ncontent-length: 0\r\n\r\n";
        assert!(parse_reply(raw).unwrap().closes());
    }
}
