//! A minimal blocking HTTP/1.1 client for the loopback tests and the
//! closed-loop benchmark.
//!
//! Exactly the counterpart of the server's wire subset: one request per
//! connection, `Content-Length` bodies, response read to EOF (the server
//! always closes). Not a general HTTP client — just enough to exercise
//! `calciom-serve` without external tooling.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side IO timeout (generous: a batch request simulates).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The body as (lossy) UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;

    let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" || method == "PUT" {
        head.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET target`.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "GET", target, &[], &[])
}

/// `POST target` with a body.
pub fn post(addr: SocketAddr, target: &str, body: &[u8]) -> std::io::Result<HttpReply> {
    request(addr, "POST", target, &[], body)
}

fn bad(reason: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason.to_string())
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head is not UTF-8"))?;
    let body = raw[split + 4..].to_vec();

    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = BTreeMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed response header"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    // The server always sends content-length; honor it if the stream
    // carried trailing bytes (it never should — connection: close).
    if let Some(declared) = headers.get("content-length").and_then(|v| v.parse().ok()) {
        if body.len() < declared {
            return Err(bad("response body shorter than content-length"));
        }
    }
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 3\r\n\r\nok\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("content-type"), Some("text/plain"));
        assert_eq!(reply.body, b"ok\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
