//! Deterministic JSON rendering of the service's response bodies.
//!
//! The vendored `serde` stand-in is marker-only (see `vendor/README.md`),
//! so the wire JSON is hand-rolled the same way the scenario and trace
//! codecs are: every map is a `BTreeMap` (or iterated in id order),
//! floats use Rust's shortest round-trip representation, and nothing
//! depends on wall time or allocation order — two renderings of the same
//! simulation result are **byte-identical**, which is what lets the
//! response cache and the concurrent-determinism test compare bodies
//! with `==`.

use calciom::{AppReport, PhaseResult, PolicyRegistry, SessionReport, Timeline};
use iobench::ShardedRun;
use std::fmt::Write as _;

/// FNV-1a 64-bit hash — the same cheap, dependency-free digest the
/// golden-trace tests pin. Used for ETags and the request log's scenario
/// hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Renders a strong ETag for a response that is a pure function of
/// `key` (the canonical scenario text + policy spec + endpoint). The
/// simulation is deterministic, so equal keys imply byte-identical
/// bodies — exactly the strong-validator contract.
pub fn etag(key: &str) -> String {
    format!("\"{:016x}\"", fnv64(key.as_bytes()))
}

/// Escapes a string into a JSON string literal (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (shortest round-trip form);
/// non-finite values, which JSON cannot carry, become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// The structured error body: `{"error":{"kind":…,"message":…}}`.
/// `kind` is a stable machine-matchable label; `message` is the typed
/// error's `Display` rendering.
pub fn error_json(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":{},\"message\":{}}}}}\n",
        json_string(kind),
        json_string(message)
    )
}

fn phase_json(p: &PhaseResult) -> String {
    format!(
        "{{\"phase\":{},\"requested_start_ticks\":{},\"io_start_ticks\":{},\"end_ticks\":{},\
         \"bytes\":{},\"comm_seconds\":{},\"write_seconds\":{},\"wait_seconds\":{},\
         \"io_seconds\":{}}}",
        p.phase,
        p.requested_start.ticks(),
        p.io_start.ticks(),
        p.end.ticks(),
        json_f64(p.bytes),
        json_f64(p.comm_seconds),
        json_f64(p.write_seconds),
        json_f64(p.wait_seconds),
        json_f64(p.io_time()),
    )
}

fn app_json(a: &AppReport) -> String {
    let phases: Vec<String> = a.phases.iter().map(phase_json).collect();
    format!(
        "{{\"app\":{},\"name\":{},\"procs\":{},\"alone_estimate_secs\":{},\"phases\":[{}]}}",
        a.app.0,
        json_string(&a.name),
        a.procs,
        json_f64(a.alone_estimate_secs),
        phases.join(",")
    )
}

/// The `/v1/run` body: the full [`SessionReport`] as JSON.
pub fn report_json(report: &SessionReport) -> String {
    let apps: Vec<String> = report.apps.iter().map(app_json).collect();
    format!(
        "{{\"policy\":{},\"strategy\":{},\"makespan_ticks\":{},\"makespan_secs\":{},\
         \"coordination_messages\":{},\"apps\":[{}]}}\n",
        json_string(&report.policy_label),
        json_string(&report.strategy.label()),
        report.makespan.ticks(),
        json_f64(report.makespan.as_secs()),
        report.coordination_messages,
        apps.join(",")
    )
}

/// The `/v1/timeline` body: Gantt intervals + per-app bandwidth step
/// functions, in id order.
pub fn timeline_json(timeline: &Timeline) -> String {
    let intervals: Vec<String> = timeline
        .intervals
        .iter()
        .map(|i| {
            format!(
                "{{\"app\":{},\"activity\":{},\"start_ticks\":{},\"end_ticks\":{},\"seconds\":{}}}",
                i.app.0,
                json_string(i.activity.label()),
                i.start.ticks(),
                i.end.ticks(),
                json_f64(i.seconds())
            )
        })
        .collect();
    let bandwidth: Vec<String> = timeline
        .bandwidth
        .iter()
        .map(|(app, points)| {
            let samples: Vec<String> = points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"time_ticks\":{},\"rate\":{}}}",
                        p.time.ticks(),
                        json_f64(p.rate)
                    )
                })
                .collect();
            format!("\"{}\":[{}]", app.0, samples.join(","))
        })
        .collect();
    format!(
        "{{\"makespan_ticks\":{},\"makespan_secs\":{},\"intervals\":[{}],\"bandwidth\":{{{}}}}}\n",
        timeline.makespan.ticks(),
        json_f64(timeline.makespan.as_secs()),
        intervals.join(","),
        bandwidth.join(",")
    )
}

/// Opening fragment of a `/v1/batch` body — everything before the first
/// run entry. Split out (with [`batch_entry_json`] and
/// [`BATCH_EPILOGUE`]) so the streamed chunked rendering is
/// byte-identical to the materialized [`batch_json`] *by construction*.
pub fn batch_prelude(shards: usize, scenarios: usize) -> String {
    format!("{{\"shards\":{shards},\"scenarios\":{scenarios},\"runs\":[")
}

/// Closing fragment of a `/v1/batch` body.
pub const BATCH_EPILOGUE: &str = "]}\n";

/// One `/v1/batch` run entry. Host wall-clock (which `ShardedRun`
/// measures) is deliberately left out — the body must be a deterministic
/// function of the request so the cache and the determinism contract
/// hold; wall time goes to the request log instead.
pub fn batch_entry_json(run: &ShardedRun) -> String {
    let alone: Vec<String> = run
        .alone
        .iter()
        .map(|(app, secs)| format!("\"{}\":{}", app.0, json_f64(*secs)))
        .collect();
    format!(
        "{{\"report\":{},\"alone_secs\":{{{}}}}}",
        report_json(&run.report).trim_end(),
        alone.join(",")
    )
}

/// The `/v1/batch` body: one entry per scenario, in request order.
pub fn batch_json(shards: usize, runs: &[ShardedRun]) -> String {
    let entries: Vec<String> = runs.iter().map(batch_entry_json).collect();
    format!(
        "{}{}{}",
        batch_prelude(shards, runs.len()),
        entries.join(","),
        BATCH_EPILOGUE
    )
}

/// The `/v1/policies` body: every policy the standard registry can
/// resolve, with its description and canonical example spec.
pub fn policies_json() -> String {
    let registry = PolicyRegistry::standard();
    let canonical = registry.canonical_specs();
    let entries: Vec<String> = registry
        .names()
        .iter()
        .zip(&canonical)
        .map(|(name, spec)| {
            format!(
                "{{\"name\":{},\"spec\":{},\"description\":{}}}",
                json_string(name),
                json_string(&spec.to_text()),
                json_string(registry.description(name).unwrap_or(""))
            )
        })
        .collect();
    format!("{{\"policies\":[{}]}}\n", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Scenario, Strategy};

    fn sample_report() -> SessionReport {
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "App \"A\"\n",
                336,
                AccessPattern::contiguous(8.0e6),
            ))
            .app(
                AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(4.0e6))
                    .starting_at_secs(1.0),
            )
            .strategy(Strategy::FcfsSerialize)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(etag("x"), format!("\"{:016x}\"", fnv64(b"x")));
    }

    #[test]
    fn strings_escape_hostile_content() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_and_non_finite_as_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn report_json_is_deterministic_and_carries_every_app() {
        let report = sample_report();
        let a = report_json(&report);
        let b = report_json(&report);
        assert_eq!(a, b, "rendering must be byte-stable");
        assert!(a.contains("\"policy\":\"fcfs\""));
        assert!(a.contains("\"App \\\"A\\\"\\n\""), "{a}");
        assert!(a.contains("\"coordination_messages\""));
        assert_eq!(a.matches("\"phases\"").count(), 2);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn error_json_is_structured() {
        let body = error_json("scenario-parse", "missing key 'num_servers'");
        assert!(body.contains("\"kind\":\"scenario-parse\""));
        assert!(body.contains("num_servers"));
    }

    #[test]
    fn policies_json_lists_the_standard_registry() {
        let body = policies_json();
        for name in PolicyRegistry::standard().names() {
            assert!(body.contains(&format!("\"name\":\"{name}\"")), "{name}");
        }
        assert!(body.contains("rr(10s)"));
    }
}
