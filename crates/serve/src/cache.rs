//! Bounded response cache.
//!
//! The simulation is a pure function of the canonical scenario text and
//! the policy spec, so a response body can be memoized under exactly the
//! key its strong ETag hashes. The cache follows the same discipline as
//! `iobench::BaselineCache` — canonical keys, counters, bounded size —
//! with insertion-order eviction so a long-running server holds at most
//! `capacity` bodies no matter how much distinct traffic it sees.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One memoized response: everything needed to replay the exchange
/// byte-identically (plus the sim-event count for the request log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    /// The exact body bytes originally sent.
    pub body: Vec<u8>,
    /// Its `content-type`.
    pub content_type: &'static str,
    /// The strong ETag (a pure function of the cache key).
    pub etag: String,
    /// Simulation events the original computation streamed — logged on
    /// hits too, so the log's `events=` column stays meaningful.
    pub events: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<String, CachedResponse>,
    /// Keys in insertion order — the eviction queue.
    order: VecDeque<String>,
}

/// A capacity-bounded, insertion-order-evicting memo from canonical
/// request keys to response bodies.
///
/// Concurrency contract: `get`/`insert` take the lock only to touch the
/// map — callers compute responses *outside* the lock, so two concurrent
/// misses of the same key may both simulate and both insert. That is
/// safe (the simulation is deterministic, so both insert the same body)
/// and keeps `hits() + misses()` equal to the number of lookups.
#[derive(Debug, Default)]
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses; 0 disables caching
    /// entirely (every lookup misses, nothing is stored).
    pub fn with_capacity(capacity: usize) -> Self {
        ResponseCache {
            capacity,
            ..ResponseCache::default()
        }
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&self, key: &str) -> Option<CachedResponse> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let inner = self.lock();
        match inner.map.get(key) {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cached.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `response` under `key`, evicting the oldest entries if the
    /// cache is full. Re-inserting an existing key refreshes the value
    /// without growing the queue.
    pub fn insert(&self, key: &str, response: CachedResponse) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(key.to_string(), response).is_none() {
            inner.order.push_back(key.to_string());
        }
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if inner.map.remove(&oldest).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked mid-insert can only have left a fully
        // consistent map behind (insert/evict touch one entry at a time),
        // so a poisoned lock is still usable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> CachedResponse {
        CachedResponse {
            body: format!("body-{n}").into_bytes(),
            content_type: "application/json",
            etag: format!("\"{n:016x}\""),
            events: n as u64,
        }
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = ResponseCache::with_capacity(2);
        assert!(cache.get("a").is_none());
        cache.insert("a", body(1));
        cache.insert("b", body(2));
        assert_eq!(cache.get("a").unwrap().body, b"body-1");
        cache.insert("c", body(3));
        // "a" was the oldest insertion; capacity 2 keeps b and c.
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_queue_entries() {
        let cache = ResponseCache::with_capacity(2);
        cache.insert("a", body(1));
        cache.insert("a", body(9));
        cache.insert("b", body(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().body, b"body-9");
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::with_capacity(0);
        cache.insert("a", body(1));
        assert!(cache.get("a").is_none());
        assert_eq!(cache.misses(), 1);
        assert!(cache.is_empty());
    }
}
