//! `calciom-serve` — a stateless scenario-execution HTTP service over
//! the sharded CALCioM backend.
//!
//! The simulator's plain-text codecs (`calciom-scenario v1`,
//! `calciom-trace v1`, policy specs) *are* the wire format: POST a
//! scenario document, get back a report, a replayable trace, or a
//! timeline. The service keeps no per-client state — every response is
//! a pure function of the request, which the deterministic simulation
//! makes literally true down to the byte. That purity is load-bearing:
//!
//! * concurrent identical requests return **byte-identical bodies**;
//! * responses carry a **strong ETag** hashed from the canonical
//!   scenario text + policy spec (`If-None-Match` revalidation costs no
//!   simulation at all);
//! * a bounded [`ResponseCache`] can memoize
//!   bodies without any invalidation protocol.
//!
//! | Endpoint | Method | Body → Response |
//! |---|---|---|
//! | `/healthz` | GET | — → `ok` |
//! | `/v1/policies` | GET | — → policy registry JSON |
//! | `/v1/run` | POST | scenario text → `SessionReport` JSON |
//! | `/v1/trace` | POST | scenario text → replayable trace text |
//! | `/v1/timeline` | POST | scenario text → Gantt/bandwidth JSON |
//! | `/v1/batch` | POST | concatenated scenarios → sharded reports JSON |
//!
//! `POST` endpoints accept `?policy=<spec>` (percent-encoded policy
//! spec, e.g. `rr%2810s%29`), and `/v1/batch` accepts `?shards=<n>`.
//! Typed simulator errors map to structured JSON error bodies — parse
//! failures are `400`, unbuildable-but-parsable scenarios `422`,
//! runtime simulation failures `500`; the server never panics on a
//! request.
//!
//! Connections are persistent: HTTP/1.1 keep-alive with pipelining, an
//! idle timeout between requests, a slow-loris (header) timeout inside
//! them, and a requests-per-connection cap. Machine-scale `/v1/batch`
//! responses stream `Transfer-Encoding: chunked` output as shard
//! results complete (`?stream=1/0` overrides). Two front ends serve the
//! same surface: an epoll reactor ([`reactor`], Linux, the default) and
//! a portable blocking thread pool (`CALCIOM_REACTOR=threads`).
//!
//! Everything is built on `std` only (TCP listener, bounded
//! worker-thread pool, hand-rolled HTTP/1.1 subset, raw `epoll` FFI) —
//! the same vendoring philosophy as the rest of the workspace, because
//! the crate registry is unreachable at build time.

pub mod cache;
pub mod client;
pub mod config;
pub mod conn;
pub mod http;
pub mod json;
pub mod log;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod service;

pub use cache::{CachedResponse, ResponseCache};
pub use client::{Conn, HttpReply};
pub use config::{ReactorMode, ServeConfig, ServeConfigError};
pub use http::{HttpError, ParsedRequest, Request, RequestParser, Response};
pub use log::{BufferLog, CacheOutcome, RequestLog, RequestRecord, StderrLog};
pub use server::{start, ServerHandle, ShutdownSignal};
pub use service::{CollectSink, ResponsePart, ResponseSink, Service};
