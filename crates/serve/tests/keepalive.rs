//! Persistent-connection integration tests, run against **both** front
//! ends (epoll reactor and the portable threads fallback): pipelining
//! order and byte-identity, the requests-per-connection cap, idle and
//! slow-loris timeouts, keep-alive reuse visible in the request log,
//! streamed `/v1/batch` bodies, and graceful shutdown with persistent
//! connections open.

use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Scenario};
use serve::client::{self, Conn};
use serve::{start, BufferLog, ReactorMode, RequestLog, RequestRecord, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Both front ends must pass every test identically.
fn modes() -> Vec<ReactorMode> {
    if cfg!(target_os = "linux") {
        vec![ReactorMode::Epoll, ReactorMode::Threads]
    } else {
        vec![ReactorMode::Threads]
    }
}

fn config(mode: ReactorMode) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        reactor: Some(mode),
        ..ServeConfig::default()
    }
}

/// Forwards records into a shared buffer so tests can inspect the log
/// of a running server.
struct SharedLog(Arc<BufferLog>);

impl RequestLog for SharedLog {
    fn record(&self, record: &RequestRecord) {
        self.0.record(record);
    }
}

fn boot(config: ServeConfig) -> (ServerHandle, Arc<BufferLog>) {
    let log = Arc::new(BufferLog::new());
    let handle = start(config, Box::new(SharedLog(Arc::clone(&log)))).expect("server boots");
    (handle, log)
}

fn scenario_text() -> String {
    Scenario::builder(PfsConfig::grid5000_rennes())
        .app(AppConfig::new(
            AppId(0),
            "A",
            336,
            AccessPattern::contiguous(8.0e6),
        ))
        .app(
            AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(4.0e6))
                .starting_at_secs(1.0),
        )
        .build()
        .unwrap()
        .to_text()
}

#[test]
fn pipelined_responses_are_in_order_and_byte_identical_to_sequential() {
    for mode in modes() {
        let (handle, _) = boot(config(mode));
        let addr = handle.addr();
        let scenario = scenario_text();

        // The exchanges, as (method, target, body). A mix of cheap and
        // simulated endpoints so responses complete at different speeds —
        // ordering must hold anyway.
        let exchanges: Vec<(&str, String, Vec<u8>)> = vec![
            ("POST", "/v1/run".into(), scenario.clone().into_bytes()),
            ("GET", "/v1/policies".into(), Vec::new()),
            (
                "POST",
                "/v1/run?policy=srpf".into(),
                scenario.clone().into_bytes(),
            ),
            ("GET", "/healthz".into(), Vec::new()),
            ("POST", "/v1/timeline".into(), scenario.clone().into_bytes()),
        ];

        // Sequential ground truth: one-shot connections.
        let sequential: Vec<_> = exchanges
            .iter()
            .map(|(method, target, body)| {
                client::request(addr, method, target, &[], body).expect("sequential exchange")
            })
            .collect();

        // Pipeline all five onto one connection before reading anything.
        let mut conn = Conn::connect(addr).unwrap();
        for (method, target, body) in &exchanges {
            conn.send(method, target, &[], body)
                .expect("pipelined send");
        }
        for (i, expected) in sequential.iter().enumerate() {
            let reply = conn.recv().expect("pipelined recv");
            assert_eq!(reply.status, expected.status, "{mode:?} response {i}");
            assert_eq!(
                reply.body, expected.body,
                "{mode:?} response {i} must be byte-identical to its sequential twin"
            );
            assert!(!reply.closes(), "{mode:?} keep-alive holds: response {i}");
        }
        handle.shutdown();
    }
}

#[test]
fn request_cap_answers_exactly_cap_requests_then_closes() {
    for mode in modes() {
        let (handle, _) = boot(ServeConfig {
            max_requests_per_conn: 3,
            ..config(mode)
        });
        let mut conn = Conn::connect(handle.addr()).unwrap();
        // Burst five pipelined requests past the cap of three.
        for _ in 0..5 {
            conn.send("GET", "/healthz", &[], &[]).unwrap();
        }
        for i in 0..3 {
            let reply = conn.recv().expect("capped responses still arrive");
            assert_eq!(reply.status, 200);
            if i < 2 {
                assert!(!reply.closes(), "{mode:?}: response {i} keeps alive");
            } else {
                assert!(
                    reply.closes(),
                    "{mode:?}: the cap-th response must say Connection: close"
                );
            }
        }
        // Requests four and five were never answered: the connection is
        // closed, not serving past the cap.
        assert!(
            conn.recv().is_err(),
            "{mode:?}: no responses beyond the cap"
        );
        handle.shutdown();
    }
}

#[test]
fn keep_alive_reuse_shows_one_conn_id_in_the_request_log() {
    for mode in modes() {
        let (handle, log) = boot(config(mode));
        let addr = handle.addr();

        let mut conn = Conn::connect(addr).unwrap();
        for _ in 0..3 {
            assert_eq!(
                conn.request("GET", "/v1/policies", &[], &[])
                    .unwrap()
                    .status,
                200
            );
        }
        let other = client::get(addr, "/v1/policies").unwrap();
        assert_eq!(other.status, 200);

        // The server records a request *after* the response bytes go
        // out, so the client can race ahead of the log — poll briefly
        // for the last record instead of asserting instantly.
        let deadline = Instant::now() + Duration::from_secs(5);
        let ids: Vec<Option<u64>> = loop {
            let ids: Vec<Option<u64>> = log
                .records()
                .iter()
                .filter(|r| r.path == "/v1/policies")
                .map(|r| r.conn)
                .collect();
            if ids.len() >= 4 || Instant::now() >= deadline {
                break ids;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(ids.len(), 4, "{mode:?}: four logged requests");
        assert!(
            ids[0].is_some(),
            "{mode:?}: socket requests carry a conn id"
        );
        assert_eq!(ids[0], ids[1], "{mode:?}: reused connection, same id");
        assert_eq!(ids[1], ids[2], "{mode:?}: reused connection, same id");
        assert_ne!(ids[3], ids[0], "{mode:?}: fresh connection, fresh id");
        handle.shutdown();
    }
}

#[test]
fn slow_loris_gets_a_408_without_occupying_a_simulation_worker() {
    for mode in modes() {
        // One worker: if the dribbling connection occupied it, the
        // companion request could not complete.
        let (handle, _) = boot(ServeConfig {
            workers: 1,
            header_timeout_ms: 600,
            idle_timeout_ms: 400,
            ..config(mode)
        });
        let addr = handle.addr();

        // The attacker: half a request head, then silence.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        loris.write_all(b"GET /heal").unwrap();

        if mode == ReactorMode::Epoll {
            // The reactor parks the dribbler without a worker: a real
            // request on the single worker completes while the loris
            // still dribbles.
            let started = Instant::now();
            let reply = client::post(addr, "/v1/run", scenario_text().as_bytes()).unwrap();
            assert_eq!(reply.status, 200, "{}", reply.text());
            assert!(
                started.elapsed() < Duration::from_secs(20),
                "companion request must not wait behind the slow loris"
            );
        }

        // The dribbler itself gets a structured 408 and a close.
        let mut raw = Vec::new();
        loris.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 408 "),
            "{mode:?}: expected 408, got: {text}"
        );
        assert!(text.contains("connection: close"), "{mode:?}: {text}");
        handle.shutdown();
    }
}

#[test]
fn idle_keep_alive_connections_are_closed_after_the_idle_timeout() {
    for mode in modes() {
        let (handle, _) = boot(ServeConfig {
            idle_timeout_ms: 300,
            header_timeout_ms: 600,
            ..config(mode)
        });
        let mut conn = Conn::connect(handle.addr()).unwrap();
        assert_eq!(
            conn.request("GET", "/healthz", &[], &[]).unwrap().status,
            200
        );
        // Sit idle past the timeout: the server closes (EOF), without
        // sending anything — an idle close is not an error response.
        let err = conn.recv().expect_err("server closes the idle connection");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{mode:?}");
        handle.shutdown();
    }
}

#[test]
fn streamed_batch_is_chunked_and_byte_identical_to_materialized() {
    for mode in modes() {
        let (handle, _) = boot(config(mode));
        let mut conn = Conn::connect(handle.addr()).unwrap();
        let docs = format!("{}{}", scenario_text(), scenario_text());

        let materialized = conn
            .request("POST", "/v1/batch?shards=2&stream=0", &[], docs.as_bytes())
            .unwrap();
        assert_eq!(materialized.status, 200, "{}", materialized.text());
        assert!(!materialized.chunked());

        // stream=1 skips the response cache only on a cold key, so vary
        // shards… no: same scenario, but the cached entry would be
        // served materialized. Use a distinct scenario set instead.
        let fresh_docs = format!("{docs}{}", scenario_text());
        let materialized = conn
            .request(
                "POST",
                "/v1/batch?shards=2&stream=0",
                &[],
                fresh_docs.as_bytes(),
            )
            .unwrap();
        // A different server, same config, so the streamed run is cold.
        let (cold, _) = boot(config(mode));
        let mut cold_conn = Conn::connect(cold.addr()).unwrap();
        let streamed = cold_conn
            .request(
                "POST",
                "/v1/batch?shards=2&stream=1",
                &[],
                fresh_docs.as_bytes(),
            )
            .unwrap();
        assert_eq!(streamed.status, 200);
        assert!(
            streamed.chunked(),
            "{mode:?}: a cold stream=1 batch must use chunked framing"
        );
        assert_eq!(
            streamed.body, materialized.body,
            "{mode:?}: de-chunked stream must equal the materialized body"
        );
        // The connection survives the stream: keep-alive framing held.
        assert_eq!(
            cold_conn
                .request("GET", "/healthz", &[], &[])
                .unwrap()
                .status,
            200,
            "{mode:?}: connection usable after a streamed response"
        );
        cold.shutdown();
        handle.shutdown();
    }
}

#[test]
fn graceful_shutdown_completes_in_flight_and_closes_idle_connections() {
    for mode in modes() {
        let (handle, _) = boot(config(mode));
        let addr = handle.addr();

        // An idle keep-alive connection…
        let mut idle = Conn::connect(addr).unwrap();
        assert_eq!(
            idle.request("GET", "/healthz", &[], &[]).unwrap().status,
            200
        );

        // …and a connection with a slow request in flight (a 20-document
        // batch on one shard takes long enough to still be running when
        // the signal lands).
        let docs: String = (0..20).map(|_| scenario_text()).collect();
        let mut busy = Conn::connect(addr).unwrap();
        busy.send("POST", "/v1/batch?shards=1&stream=0", &[], docs.as_bytes())
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let started = Instant::now();
        let signal = handle.signal();
        signal.trigger();

        // The in-flight batch completes…
        let reply = busy
            .recv()
            .expect("in-flight request completes on shutdown");
        assert_eq!(reply.status, 200, "{mode:?}: {}", reply.text());
        // …then its connection closes, as does the idle one, promptly.
        assert!(
            busy.recv().is_err(),
            "{mode:?}: busy conn closed after reply"
        );
        assert!(idle.recv().is_err(), "{mode:?}: idle conn closed promptly");

        handle.join();
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "{mode:?}: shutdown must not hang on persistent connections"
        );
    }
}
