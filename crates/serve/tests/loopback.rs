//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, full request/response exchanges.
//!
//! The headline property under test is statelessness-as-determinism:
//! the same scenario POSTed from many concurrent clients must come back
//! **byte-identical**, and a `/v1/trace` response must decode and
//! replay bit-for-bit into the `/v1/run` report.

use calciom::{AccessPattern, AppConfig, AppId, PfsConfig, Scenario, Trace};
use serve::client;
use serve::json::report_json;
use serve::{start, BufferLog, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn boot(config: ServeConfig) -> ServerHandle {
    start(config, Box::new(BufferLog::new())).expect("server boots on an ephemeral port")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        ..ServeConfig::default()
    }
}

fn scenario_text() -> String {
    Scenario::builder(PfsConfig::grid5000_rennes())
        .app(AppConfig::new(
            AppId(0),
            "A",
            336,
            AccessPattern::contiguous(8.0e6),
        ))
        .app(
            AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(4.0e6))
                .starting_at_secs(1.0),
        )
        .build()
        .unwrap()
        .to_text()
}

#[test]
fn concurrent_identical_posts_return_byte_identical_bodies() {
    let handle = boot(test_config());
    let addr = handle.addr();
    let body = scenario_text();

    // Six concurrent clients, same scenario. Whatever interleaving of
    // cache hits/misses happens inside, every body must be identical.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                client::post(addr, "/v1/run", body.as_bytes()).expect("exchange completes")
            })
        })
        .collect();
    let replies: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    for reply in &replies {
        assert_eq!(reply.status, 200, "{}", reply.text());
        assert_eq!(reply.header("content-type"), Some("application/json"));
    }
    let first = &replies[0];
    for reply in &replies[1..] {
        assert_eq!(reply.body, first.body, "bodies must be byte-identical");
        assert_eq!(
            reply.header("etag"),
            first.header("etag"),
            "same input, same strong ETag"
        );
    }
    handle.shutdown();
}

#[test]
fn trace_decodes_and_replays_bit_for_bit_to_the_run_report() {
    let handle = boot(test_config());
    let addr = handle.addr();

    let run = client::post(addr, "/v1/run", scenario_text().as_bytes()).unwrap();
    assert_eq!(run.status, 200, "{}", run.text());

    let trace = client::post(addr, "/v1/trace", scenario_text().as_bytes()).unwrap();
    assert_eq!(trace.status, 200, "{}", trace.text());
    assert_eq!(
        trace.header("content-type"),
        Some("text/plain; charset=utf-8")
    );

    // Decode the wire trace client-side and replay it: the replayed
    // report serialized the same way must equal the /v1/run body.
    let decoded = Trace::from_text(&trace.text()).expect("wire trace parses");
    let replayed = report_json(&decoded.replay_report());
    assert_eq!(
        run.text(),
        replayed,
        "replayed trace must reproduce the run report bit-for-bit"
    );
    handle.shutdown();
}

#[test]
fn second_identical_post_is_a_cache_hit() {
    let handle = boot(test_config());
    let addr = handle.addr();

    let first = client::post(addr, "/v1/run", scenario_text().as_bytes()).unwrap();
    let second = client::post(addr, "/v1/run", scenario_text().as_bytes()).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body);
    assert_eq!(handle.service().cache().hits(), 1);
    handle.shutdown();
}

#[test]
fn malformed_scenario_is_a_structured_400() {
    let handle = boot(test_config());
    let addr = handle.addr();

    let reply = client::post(addr, "/v1/run", b"this is not a scenario").unwrap();
    assert_eq!(reply.status, 400);
    assert_eq!(reply.header("content-type"), Some("application/json"));
    let text = reply.text();
    assert!(
        text.contains("\"kind\":\"scenario-parse\""),
        "error kind names the typed error: {text}"
    );
    assert!(
        text.contains("\"message\":"),
        "error carries the parser's message: {text}"
    );
    handle.shutdown();
}

#[test]
fn oversized_body_is_rejected_before_reading_the_stream() {
    let config = ServeConfig {
        max_body: 1024,
        ..test_config()
    };
    let handle = boot(config);
    let addr = handle.addr();

    // Declare a body far over the limit but never send it. If the
    // server tried to read the declared bytes first it would block on
    // this socket until its IO timeout; a prompt 413 proves the limit
    // is enforced on the Content-Length header alone.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /v1/run HTTP/1.1\r\nhost: t\r\ncontent-length: 1048576\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head = String::from_utf8_lossy(&raw);
    assert!(
        head.starts_with("HTTP/1.1 413 "),
        "expected 413, got: {head}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "413 must not wait for body bytes that never arrive"
    );
    handle.shutdown();
}

#[test]
fn batch_fans_out_over_shards() {
    let handle = boot(test_config());
    let addr = handle.addr();

    let docs = format!("{}{}", scenario_text(), scenario_text());
    let reply = client::post(addr, "/v1/batch?shards=2", docs.as_bytes()).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    let text = reply.text();
    assert!(text.contains("\"shards\":2"), "{text}");
    assert_eq!(
        text.matches("\"report\":").count(),
        2,
        "one report per scenario document: {text}"
    );
    handle.shutdown();
}

#[test]
fn policies_endpoint_lists_the_registry() {
    let handle = boot(test_config());
    let reply = client::get(handle.addr(), "/v1/policies").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("srpf"), "{}", reply.text());
    handle.shutdown();
}

#[test]
fn policy_query_param_overrides_the_scenario() {
    let handle = boot(test_config());
    let addr = handle.addr();

    let base = client::post(addr, "/v1/run", scenario_text().as_bytes()).unwrap();
    let srpf = client::post(addr, "/v1/run?policy=srpf", scenario_text().as_bytes()).unwrap();
    assert_eq!(base.status, 200, "{}", base.text());
    assert_eq!(srpf.status, 200, "{}", srpf.text());
    assert!(
        srpf.text().contains("\"policy\":\"srpf\""),
        "{}",
        srpf.text()
    );
    assert_ne!(
        base.body, srpf.body,
        "a policy override must change the report"
    );

    // Percent-encoded specs decode: rr(10s) as rr%2810s%29.
    let rr = client::post(
        addr,
        "/v1/run?policy=rr%2810s%29",
        scenario_text().as_bytes(),
    )
    .unwrap();
    assert_eq!(rr.status, 200, "{}", rr.text());
    assert!(
        rr.text().contains("\"policy\":\"rr(10s)\""),
        "{}",
        rr.text()
    );
    handle.shutdown();
}

#[test]
fn unknown_policy_is_a_structured_422() {
    let handle = boot(test_config());
    let reply = client::post(
        handle.addr(),
        "/v1/run?policy=nonsense",
        scenario_text().as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 422, "{}", reply.text());
    assert!(
        reply.text().contains("\"kind\":\"policy\""),
        "{}",
        reply.text()
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let handle = boot(test_config());
    let addr = handle.addr();
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    handle.shutdown();
    // The listener is gone: new connections are refused (or reset).
    assert!(client::get(addr, "/healthz").is_err());
}
