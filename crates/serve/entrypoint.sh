#!/bin/sh
# Container entrypoint for calciom-serve.
#
# The server takes its graceful-shutdown signal on standard input (a
# line reading `shutdown`), not from OS signals — std has no signal
# handling. This wrapper bridges the container runtime's SIGTERM/SIGINT
# onto that channel: the server reads a FIFO as stdin, the trap writes
# `shutdown` into it, and `docker stop` drains in-flight requests
# instead of killing them mid-response.
set -eu

ctl="${CALCIOM_CTL_FIFO:-/tmp/calciom-serve.ctl}"
rm -f "$ctl"
mkfifo "$ctl"

/usr/local/bin/calciom-serve <"$ctl" &
server=$!

# Hold a writer open so the server's stdin never sees EOF.
exec 3>"$ctl"

request_shutdown() {
    echo shutdown >&3
}
trap request_shutdown TERM INT

# A trapped signal interrupts `wait` before the server exits; loop until
# the process is really gone so the drain completes before we return.
status=0
while kill -0 "$server" 2>/dev/null; do
    wait "$server" && status=0 || status=$?
done
exit "$status"
