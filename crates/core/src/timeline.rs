//! Gantt and instantaneous-bandwidth views of a session.
//!
//! The [`TimelineAggregator`] is a [`SimObserver`] that folds the event
//! stream into a [`Timeline`]: per-application Gantt intervals (waiting /
//! interrupted / communicating / writing) and a per-application
//! instantaneous-bandwidth step function sampled from
//! [`SimEvent::TransferProgress`]. It can observe a live
//! [`Session::execute_with`](crate::Session::execute_with) run or be fed
//! after the fact from a recorded trace via
//! [`Trace::replay_into`](crate::Trace::replay_into) — both produce the
//! same timeline, because both consume the same stream.

use crate::observe::{SimEvent, SimObserver};
use pfs::AppId;
use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What an application was doing over a Gantt interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Activity {
    /// Blocked before its first grant of the phase (arbiter queue or
    /// bounded delay).
    Waiting,
    /// Preempted mid-phase by the interruption strategy.
    Interrupted,
    /// A collective-buffering communication step in flight.
    Comm,
    /// A write transfer in flight.
    Writing,
}

impl Activity {
    /// Stable label used in rendered timelines.
    pub fn label(&self) -> &'static str {
        match self {
            Activity::Waiting => "waiting",
            Activity::Interrupted => "interrupted",
            Activity::Comm => "comm",
            Activity::Writing => "writing",
        }
    }
}

/// One bar of the Gantt chart: `app` did `activity` from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GanttInterval {
    /// The application.
    pub app: AppId,
    /// What it was doing.
    pub activity: Activity,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl GanttInterval {
    /// Length of the interval in seconds.
    pub fn seconds(&self) -> f64 {
        self.end.saturating_since(self.start).as_secs()
    }
}

/// One sample of an application's instantaneous write bandwidth: the rate
/// holds from [`BandwidthPoint::time`] until the next sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// Sample time.
    pub time: SimTime,
    /// Aggregate write rate across all servers, in bytes/s.
    pub rate: f64,
}

/// The derived timeline of one session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Gantt intervals, in closing order.
    pub intervals: Vec<GanttInterval>,
    /// Per-application bandwidth step functions (consecutive duplicate
    /// rates are merged).
    pub bandwidth: BTreeMap<AppId, Vec<BandwidthPoint>>,
    /// Time at which the session ended.
    pub makespan: SimTime,
}

impl Timeline {
    /// The Gantt intervals of one application, in closing order.
    pub fn app_intervals(&self, app: AppId) -> impl Iterator<Item = &GanttInterval> {
        self.intervals.iter().filter(move |i| i.app == app)
    }

    /// Total seconds `app` spent in `activity` (0 when it never did).
    pub fn activity_seconds(&self, app: AppId, activity: Activity) -> f64 {
        // fold, not sum: an empty f64 `sum()` is -0.0, which would leak
        // a "-0.00s" into rendered reports.
        self.app_intervals(app)
            .filter(|i| i.activity == activity)
            .fold(0.0, |acc, i| acc + i.seconds())
    }

    /// Instantaneous write bandwidth of `app` at time `t` (step function:
    /// the most recent sample at or before `t`; 0 before the first
    /// sample).
    pub fn bandwidth_at(&self, app: AppId, t: SimTime) -> f64 {
        let Some(points) = self.bandwidth.get(&app) else {
            return 0.0;
        };
        match points.partition_point(|p| p.time <= t) {
            0 => 0.0,
            n => points[n - 1].rate,
        }
    }

    /// Applications appearing in the timeline, in id order.
    pub fn apps(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self.intervals.iter().map(|i| i.app).collect();
        apps.extend(self.bandwidth.keys().copied());
        apps.sort_unstable();
        apps.dedup();
        apps
    }

    /// Renders a compact plain-text view: per-application activity totals
    /// followed by the Gantt bars (capped per application to keep output
    /// bounded for long strided runs).
    pub fn render_text(&self) -> String {
        const MAX_BARS: usize = 12;
        let mut out = String::new();
        let _ = writeln!(out, "timeline (makespan {:.3}s)", self.makespan.as_secs());
        for app in self.apps() {
            let totals: Vec<String> = [
                Activity::Waiting,
                Activity::Interrupted,
                Activity::Comm,
                Activity::Writing,
            ]
            .iter()
            .map(|&a| format!("{} {:.3}s", a.label(), self.activity_seconds(app, a)))
            .collect();
            let _ = writeln!(out, "{app}: {}", totals.join(", "));
            let bars: Vec<&GanttInterval> = self.app_intervals(app).collect();
            for bar in bars.iter().take(MAX_BARS) {
                let _ = writeln!(
                    out,
                    "  [{:>9.3}s – {:>9.3}s] {}",
                    bar.start.as_secs(),
                    bar.end.as_secs(),
                    bar.activity.label()
                );
            }
            if bars.len() > MAX_BARS {
                let _ = writeln!(out, "  … {} more intervals", bars.len() - MAX_BARS);
            }
            let samples = self.bandwidth.get(&app).map(Vec::len).unwrap_or(0);
            let _ = writeln!(out, "  bandwidth samples: {samples}");
        }
        out
    }
}

/// Observer deriving a [`Timeline`] from the event stream.
#[derive(Debug, Clone, Default)]
pub struct TimelineAggregator {
    open: BTreeMap<AppId, (Activity, SimTime)>,
    timeline: Timeline,
}

impl TimelineAggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes aggregation and returns the timeline. Intervals still open
    /// (a session aborted mid-run) are closed at the last seen time.
    pub fn finish(mut self) -> Timeline {
        let at = self.timeline.makespan;
        let open = std::mem::take(&mut self.open);
        for (app, (activity, start)) in open {
            self.close(app, activity, start, at);
        }
        self.timeline
    }

    fn open(&mut self, app: AppId, activity: Activity, at: SimTime) {
        if let Some((prev, start)) = self.open.insert(app, (activity, at)) {
            // Defensive: a new bar implicitly closes the previous one.
            self.close(app, prev, start, at);
        }
    }

    fn close_current(&mut self, app: AppId, at: SimTime) {
        if let Some((activity, start)) = self.open.remove(&app) {
            self.close(app, activity, start, at);
        }
    }

    fn close(&mut self, app: AppId, activity: Activity, start: SimTime, end: SimTime) {
        if end > start {
            self.timeline.intervals.push(GanttInterval {
                app,
                activity,
                start,
                end,
            });
        }
    }

    fn sample(&mut self, app: AppId, at: SimTime, rate: f64) {
        let points = self.timeline.bandwidth.entry(app).or_default();
        match points.last() {
            // Same plateau: nothing new to record.
            Some(last) if last.rate == rate => return,
            // Same instant, new rate: the later sample wins.
            Some(last) if last.time == at => {
                points.pop();
            }
            _ => {}
        }
        // Re-check after a pop: if the rate now matches the previous
        // plateau, that plateau simply continues.
        if points.last().map(|p| p.rate == rate).unwrap_or(false) {
            return;
        }
        points.push(BandwidthPoint { time: at, rate });
    }
}

impl SimObserver for TimelineAggregator {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        if at > self.timeline.makespan {
            self.timeline.makespan = at;
        }
        match *event {
            SimEvent::AccessRequested { app } => self.open(app, Activity::Waiting, at),
            SimEvent::Interrupted { app } => self.open(app, Activity::Interrupted, at),
            SimEvent::AccessGranted { app, .. } | SimEvent::Resumed { app } => {
                self.close_current(app, at)
            }
            SimEvent::CommStarted { app, .. } => self.open(app, Activity::Comm, at),
            SimEvent::CommCompleted { app } => self.close_current(app, at),
            SimEvent::TransferStarted { app, .. } => self.open(app, Activity::Writing, at),
            SimEvent::TransferCompleted { app, .. } => {
                self.close_current(app, at);
                self.sample(app, at, 0.0);
            }
            SimEvent::TransferProgress { app, rate, .. } => self.sample(app, at, rate),
            SimEvent::SessionEnded { makespan, .. } => {
                self.timeline.makespan = makespan;
            }
            SimEvent::PhaseStarted { .. }
            | SimEvent::PhaseFinished { .. }
            | SimEvent::DelayBounded { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::session::Session;
    use crate::strategy::Strategy;
    use crate::trace::TraceRecorder;
    use mpiio::{AccessPattern, AppConfig};
    use pfs::PfsConfig;

    const MB: f64 = 1.0e6;

    fn scenario(strategy: Strategy) -> Scenario {
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "A",
                336,
                AccessPattern::strided(2.0 * MB, 8),
            ))
            .app(
                AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(8.0 * MB))
                    .starting_at_secs(2.0),
            )
            .strategy(strategy)
            .build()
            .unwrap()
    }

    fn timeline(strategy: Strategy) -> Timeline {
        let scenario = scenario(strategy);
        let mut agg = TimelineAggregator::new();
        Session::new(&scenario)
            .unwrap()
            .execute_with(&mut agg)
            .unwrap();
        agg.finish()
    }

    #[test]
    fn fcfs_timeline_shows_b_waiting_then_writing() {
        let tl = timeline(Strategy::FcfsSerialize);
        let b = AppId(1);
        assert!(tl.activity_seconds(b, Activity::Waiting) > 1.0, "B queued");
        assert!(tl.activity_seconds(b, Activity::Writing) > 0.0);
        // A was never preempted under FCFS.
        assert_eq!(tl.activity_seconds(AppId(0), Activity::Interrupted), 0.0);
        // Bars are well-formed and bounded by the makespan.
        for bar in &tl.intervals {
            assert!(bar.start < bar.end);
            assert!(bar.end <= tl.makespan);
        }
    }

    #[test]
    fn interrupt_timeline_preempts_the_big_writer() {
        let tl = timeline(Strategy::Interrupt);
        let a = AppId(0);
        assert!(
            tl.activity_seconds(a, Activity::Interrupted) > 0.0,
            "A must show an interrupted bar"
        );
        // While A is interrupted its bandwidth is zero and B's is positive.
        let bar = tl
            .app_intervals(a)
            .find(|i| i.activity == Activity::Interrupted)
            .copied()
            .unwrap();
        let mid = SimTime::from_ticks((bar.start.ticks() + bar.end.ticks()) / 2);
        assert_eq!(tl.bandwidth_at(a, mid), 0.0);
        assert!(tl.bandwidth_at(AppId(1), mid) > 0.0);
    }

    #[test]
    fn bandwidth_step_function_is_queryable() {
        let tl = timeline(Strategy::Interfere);
        let a = AppId(0);
        assert_eq!(
            tl.bandwidth_at(a, SimTime::ZERO),
            0.0,
            "before first sample"
        );
        let points = &tl.bandwidth[&a];
        assert!(!points.is_empty());
        // Consecutive samples never repeat a rate (plateaus are merged).
        assert!(points.windows(2).all(|w| w[0].rate != w[1].rate));
        // The last sample of a finished app is the zero plateau.
        assert_eq!(points.last().unwrap().rate, 0.0);
        assert_eq!(tl.bandwidth_at(a, tl.makespan), 0.0);
    }

    #[test]
    fn replaying_a_trace_builds_the_same_timeline() {
        let scenario = scenario(Strategy::Interrupt);
        let mut recorder = TraceRecorder::for_scenario(&scenario);
        let mut live = TimelineAggregator::new();
        // Observe live and record simultaneously via two runs (the
        // simulation is deterministic, so the streams are identical).
        Session::new(&scenario)
            .unwrap()
            .execute_with(&mut live)
            .unwrap();
        Session::new(&scenario)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        let mut replayed = TimelineAggregator::new();
        recorder.into_trace().replay_into(&mut replayed);
        assert_eq!(replayed.finish(), live.finish());
    }

    #[test]
    fn render_text_is_compact_and_labelled() {
        let tl = timeline(Strategy::FcfsSerialize);
        let text = tl.render_text();
        assert!(text.contains("app0"));
        assert!(text.contains("app1"));
        assert!(text.contains("waiting"));
        assert!(text.contains("writing"));
        assert!(text.lines().count() < 60, "rendering stays bounded");
    }

    #[test]
    fn apps_and_defaults_behave() {
        let tl = Timeline::default();
        assert!(tl.apps().is_empty());
        assert_eq!(tl.bandwidth_at(AppId(0), SimTime::ZERO), 0.0);
        assert!(tl.render_text().contains("timeline"));
    }
}
